//! Findings, the committed allowlist, and human-readable rendering.

/// Rule identifiers (stable strings — they key allowlist entries).
pub mod rules {
    // ---- lock family ----
    /// A lock acquired while a same-or-lower-ranked lock is held.
    pub const ORDER: &str = "lock-order-inversion";
    /// A cycle in the observed acquisition graph (unranked locks).
    pub const CYCLE: &str = "lock-order-cycle";
    /// A potentially blocking operation under a live guard.
    pub const BLOCKING: &str = "blocking-under-guard";
    /// A poison-propagating `.lock().unwrap()` on a request path.
    pub const POISON: &str = "poison-unwrap";

    // ---- durability family ----
    /// A commit-path append with no reachable sync before the function
    /// lets an ack/frontier/cursor write escape.
    pub const APPEND_NO_SYNC: &str = "append-without-sync";
    /// An ack/frontier/cursor write that escapes between an append and
    /// the sync that makes it durable.
    pub const ACK_BEFORE_SYNC: &str = "ack-before-sync";
    /// An fsync-adjacent mutation site with no `crashpoint::hit` probe.
    pub const MISSING_CRASHPOINT: &str = "missing-crashpoint";
    /// A `CrashPoint` variant not exercised by production code or by the
    /// restart-test matrix.
    pub const CRASHPOINT_COVERAGE: &str = "crashpoint-coverage";

    // ---- protocol family ----
    /// A protocol enum variant with no handler arm at its dispatch site.
    pub const UNHANDLED_VARIANT: &str = "unhandled-variant";
    /// A wire-enum variant encoded but never decoded.
    pub const ENCODE_NO_DECODE: &str = "encode-without-decode";
    /// A wire-enum variant decoded but never encoded.
    pub const DECODE_NO_ENCODE: &str = "decode-without-encode";

    // ---- trace family ----
    /// A trace stage never recorded on any notification path.
    pub const MISSING_STAGE: &str = "missing-stage";
    /// A trace stage recorded twice on one path (same block/arm).
    pub const DUPLICATE_STAGE: &str = "duplicate-stage";
}

/// The rule family a rule identifier belongs to (`lock`, `durability`,
/// `protocol`, or `trace`).
pub fn family_of(rule: &str) -> &'static str {
    match rule {
        rules::ORDER | rules::CYCLE | rules::BLOCKING | rules::POISON => "lock",
        rules::APPEND_NO_SYNC
        | rules::ACK_BEFORE_SYNC
        | rules::MISSING_CRASHPOINT
        | rules::CRASHPOINT_COVERAGE => "durability",
        rules::UNHANDLED_VARIANT | rules::ENCODE_NO_DECODE | rules::DECODE_NO_ENCODE => "protocol",
        rules::MISSING_STAGE | rules::DUPLICATE_STAGE => "trace",
        _ => "unknown",
    }
}

/// All rule families, in reporting order.
pub const FAMILIES: &[&str] = &["lock", "durability", "protocol", "trace"];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The lock involved: a registry name like `conn.pending`, or a
    /// `file.receiver` key for unranked locks.
    pub lock: String,
    /// Rule-specific detail (the other lock, the blocking call, …).
    pub detail: String,
}

impl Finding {
    /// Render as a compiler-style warning line.
    pub fn render(&self) -> String {
        format!(
            "warning[{}]: {}\n  --> {}:{}\n",
            self.rule,
            self.message(),
            self.file,
            self.line
        )
    }

    /// Render as one JSON object (no external deps — hand-escaped).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"family\":{},\"file\":{},\"line\":{},\"subject\":{},\"detail\":{},\"message\":{}}}",
            json_str(self.rule),
            json_str(family_of(self.rule)),
            json_str(&self.file),
            self.line,
            json_str(&self.lock),
            json_str(&self.detail),
            json_str(&self.message()),
        )
    }

    fn message(&self) -> String {
        match self.rule {
            rules::ORDER => format!(
                "acquiring '{}' while holding '{}' violates the declared hierarchy",
                self.detail, self.lock
            ),
            rules::CYCLE => format!("acquisition cycle: {}", self.detail),
            rules::BLOCKING => format!(
                "potentially blocking call `{}` while holding '{}'",
                self.detail, self.lock
            ),
            rules::POISON => format!(
                "`{}` propagates poisoning on a request path; use lock_or_recover() \
                 (or an OrderedMutex, whose lock() recovers)",
                self.detail
            ),
            rules::APPEND_NO_SYNC => format!(
                "append `{}` in `{}` is never followed by a sync before the \
                 function returns durability evidence",
                self.detail, self.lock
            ),
            rules::ACK_BEFORE_SYNC => format!(
                "`{}` escapes before the sync covering the preceding append in `{}`",
                self.detail, self.lock
            ),
            rules::MISSING_CRASHPOINT => format!(
                "fsync-adjacent mutation `{}` has no crashpoint::hit() probe",
                self.lock
            ),
            rules::CRASHPOINT_COVERAGE => format!(
                "CrashPoint::{} is not exercised by {}",
                self.lock, self.detail
            ),
            rules::UNHANDLED_VARIANT => format!(
                "variant `{}` has no handler arm in {}",
                self.lock, self.detail
            ),
            rules::ENCODE_NO_DECODE => {
                format!("variant `{}` is encoded but never decoded", self.lock)
            }
            rules::DECODE_NO_ENCODE => {
                format!("variant `{}` is decoded but never encoded", self.lock)
            }
            rules::MISSING_STAGE => format!(
                "trace stage `{}` is never recorded on any notification path",
                self.lock
            ),
            rules::DUPLICATE_STAGE => format!(
                "trace stage `{}` recorded twice on one path ({})",
                self.lock, self.detail
            ),
            _ => self.detail.clone(),
        }
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the full findings report as a JSON document for CI artifacts.
///
/// `denied` are findings that fail the run; `allowed` were suppressed by
/// the committed allowlist; `stale` are allowlist entries that matched
/// nothing this run.
pub fn render_json_report(
    denied: &[&Finding],
    allowed: &[&Finding],
    stale: &[&AllowEntry],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"denied_count\": {},\n  \"allowed_count\": {},\n  \"stale_allowlist_count\": {},\n",
        denied.len(),
        allowed.len(),
        stale.len()
    ));
    for (key, list) in [("denied", denied), ("allowed", allowed)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, f) in list.iter().enumerate() {
            let sep = if i + 1 == list.len() { "" } else { "," };
            out.push_str(&format!("    {}{}\n", f.render_json(), sep));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"stale_allowlist\": [\n");
    for (i, e) in stale.iter().enumerate() {
        let sep = if i + 1 == stale.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"line\":{},\"rule\":{},\"path\":{},\"needle\":{}}}{}\n",
            e.line,
            json_str(&e.rule),
            json_str(&e.path),
            json_str(&e.needle),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One allowlist entry: `rule:path-suffix:needle`.
///
/// A finding is allowlisted when the rule matches exactly, the file path
/// ends with (or contains) `path-suffix`, and — if `needle` is nonempty
/// — the lock name or detail contains `needle`. Lines starting with `#`
/// and blank lines are comments.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    /// Source line in the allowlist file (for stale-entry reporting).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist file contents.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ':');
            let rule = parts.next().unwrap_or_default().trim().to_string();
            let path = parts.next().unwrap_or_default().trim().to_string();
            let needle = parts.next().unwrap_or_default().trim().to_string();
            entries.push(AllowEntry {
                rule,
                path,
                needle,
                line: idx as u32 + 1,
            });
        }
        Allowlist { entries }
    }

    /// The index of the first entry covering `finding`, if any.
    pub fn matches(&self, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == finding.rule
                && (e.path.is_empty() || finding.file.contains(&e.path))
                && (e.needle.is_empty()
                    || finding.lock.contains(&e.needle)
                    || finding.detail.contains(&e.needle))
        })
    }
}
