//! The declared lock registry, parsed from the source of truth.
//!
//! The linter does not hard-code a copy of the rank table: it parses
//! `crates/common/src/sync.rs` — the same constants the runtime audit
//! uses — so the static and dynamic layers cannot drift. A self-test
//! additionally asserts the parse matches `displaydb_common::sync::
//! ranks::ALL` compiled into the linter.

use std::collections::HashMap;

/// One declared lock (or multi-instance lock class).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankEntry {
    /// The `ranks::` constant identifier, e.g. `CONN_PENDING`.
    pub const_ident: String,
    /// The registry name, e.g. `"conn.pending"`.
    pub name: String,
    /// Numeric rank; lower ranks are acquired first.
    pub rank: u16,
    /// Whether same-rank nesting is allowed.
    pub multi: bool,
}

/// The parsed registry, indexed by constant identifier.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    pub entries: Vec<RankEntry>,
    by_const: HashMap<String, usize>,
}

impl Registry {
    /// Look up a `ranks::` constant by identifier.
    pub fn by_const(&self, ident: &str) -> Option<&RankEntry> {
        self.by_const.get(ident).map(|&i| &self.entries[i])
    }

    /// Parse the registry from the text of `common/src/sync.rs`.
    ///
    /// Recognizes lines of the form
    /// `pub const NAME: LockRank = LockRank::new(100, "a.b");`
    /// (and `new_multi`). Test-only ranks (names starting with `test.`)
    /// are ignored.
    pub fn parse(sync_source: &str) -> Registry {
        let mut entries = Vec::new();
        for raw in sync_source.lines() {
            let line = raw.trim();
            let Some(rest) = line
                .strip_prefix("pub const ")
                .or_else(|| line.strip_prefix("const "))
            else {
                continue;
            };
            let Some((ident, rest)) = rest.split_once(':') else {
                continue;
            };
            let multi = if rest.contains("LockRank::new_multi(") {
                true
            } else if rest.contains("LockRank::new(") {
                false
            } else {
                continue;
            };
            let Some(args) = rest.split_once('(').map(|(_, a)| a) else {
                continue;
            };
            let Some((num, rest)) = args.split_once(',') else {
                continue;
            };
            let Ok(rank) = num.trim().parse::<u16>() else {
                continue;
            };
            let name: String = rest.split('"').nth(1).unwrap_or_default().to_string();
            if name.is_empty() || name.starts_with("test.") {
                continue;
            }
            entries.push(RankEntry {
                const_ident: ident.trim().to_string(),
                name,
                rank,
                multi,
            });
        }
        let by_const = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.const_ident.clone(), i))
            .collect();
        Registry { entries, by_const }
    }
}
