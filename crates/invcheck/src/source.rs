//! Lexed source files and the token-level syntax helpers shared by
//! every rule family.
//!
//! The helpers here are deliberately *syntactic*: they find function
//! bodies, enum declarations, `impl Trait for Type` blocks, and
//! `mod tests` regions in the token stream produced by [`crate::lexer`].
//! None of them resolve names or types — each rule family documents the
//! approximations it builds on top (DESIGN.md § 15).

use crate::lexer::{lex, Tok, Token};
use std::collections::HashMap;

/// A lexed source file.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// The token stream (comments and literal contents dropped).
    pub tokens: Vec<Token>,
    /// Whether this file is test code (an integration-test tree). Rule
    /// families that lint production behaviour skip test files; the
    /// crash-point coverage rule consults them as evidence.
    pub is_test: bool,
}

impl SourceFile {
    /// Lex `text` as the contents of `path`, classifying test files by
    /// path (`tests/` at the root or a `tests/` directory in a crate).
    pub fn new(path: impl Into<String>, text: &str) -> Self {
        let path = path.into();
        let is_test = path.starts_with("tests/") || path.contains("/tests/");
        Self {
            path,
            tokens: lex(text),
            is_test,
        }
    }
}

/// Map every opening bracket token index to its closer.
pub fn match_brackets(toks: &[Token]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Punct(c @ ('(' | '{' | '[')) => stack.push((c, i)),
            Tok::Punct(c @ (')' | '}' | ']')) => {
                let open = match c {
                    ')' => '(',
                    '}' => '{',
                    _ => '[',
                };
                // Tolerate imbalance: pop until the matching opener.
                while let Some((o, oi)) = stack.pop() {
                    if o == open {
                        map.insert(oi, i);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// Token ranges covered by `mod tests { … }` (unit tests inside a
/// production file).
pub fn test_regions(toks: &[Token], close: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("mod")
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|m| m == "tests" || m == "test")
            && matches_punct(toks, i + 2, '{')
        {
            if let Some(&end) = close.get(&(i + 2)) {
                regions.push((i, end));
            }
        }
    }
    regions
}

/// Whether token `i` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(s, e)| i >= s && i <= e)
}

/// One `fn` item with a body.
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`.
    pub body_start: usize,
    /// Token index of the body's `}`.
    pub body_end: usize,
}

/// Every `fn` item with a body (nested functions and methods included;
/// bodyless trait declarations skipped).
pub fn functions(toks: &[Token], close: &HashMap<usize, usize>) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        let mut k = i + 2;
        // Skip a generic parameter list. `->` inside `Fn(..) -> T`
        // bounds must not close the angle depth.
        if matches_punct(toks, k, '<') {
            let mut depth = 1i32;
            k += 1;
            while k < toks.len() && depth > 0 {
                match &toks[k].tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') if k > 0 && !toks[k - 1].is_punct('-') => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // The parameter list.
        if !matches_punct(toks, k, '(') {
            i += 1;
            continue;
        }
        k = close.get(&k).map_or(toks.len(), |&c| c + 1);
        // Scan to the body `{` (or `;` for a bodyless declaration),
        // skipping grouped tokens in the return type / where clause.
        let mut body = None;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('(' | '[') => k = close.get(&k).map_or(toks.len(), |&c| c + 1),
                Tok::Punct('{') => {
                    body = Some(k);
                    break;
                }
                Tok::Punct(';') => break,
                _ => k += 1,
            }
        }
        if let Some(start) = body {
            let end = close.get(&start).copied().unwrap_or(toks.len() - 1);
            out.push(FnSpan {
                name: name.to_string(),
                line,
                body_start: start,
                body_end: end,
            });
        }
        i += 1;
    }
    out
}

/// A declared enum: its declaration line and `(variant, line)` pairs.
pub struct EnumDecl {
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Top-level variants in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// Parse the declaration of `enum_name` out of the token stream, if the
/// file declares it. Variant payloads (tuple/struct fields), explicit
/// discriminants, and attributes are skipped.
pub fn enum_decl(
    toks: &[Token],
    close: &HashMap<usize, usize>,
    enum_name: &str,
) -> Option<EnumDecl> {
    let mut i = 0usize;
    let body = loop {
        if i + 1 >= toks.len() {
            return None;
        }
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(enum_name) {
            // Find the body `{`, skipping any generic list.
            let mut k = i + 2;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            if k < toks.len() {
                break (i, k, close.get(&k).copied()?);
            }
            return None;
        }
        i += 1;
    };
    let (decl, open, end) = body;
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < end {
        match &toks[k].tok {
            // Attribute on a variant: `#[...]`.
            Tok::Punct('#') => {
                if matches_punct(toks, k + 1, '[') {
                    k = close.get(&(k + 1)).map_or(end, |&c| c + 1);
                } else {
                    k += 1;
                }
            }
            Tok::Ident(name) => {
                variants.push((name.clone(), toks[k].line));
                k += 1;
                // Skip a payload group and/or discriminant up to the
                // variant-separating comma.
                while k < end && !toks[k].is_punct(',') {
                    match &toks[k].tok {
                        Tok::Punct('(' | '{' | '[') => k = close.get(&k).map_or(end, |&c| c + 1),
                        _ => k += 1,
                    }
                }
                k += 1; // past the comma
            }
            _ => k += 1,
        }
    }
    Some(EnumDecl {
        line: toks[decl].line,
        variants,
    })
}

/// Token span of the body of `impl <trait_name> for <type_name> { … }`.
pub fn impl_block(
    toks: &[Token],
    close: &HashMap<usize, usize>,
    trait_name: &str,
    type_name: &str,
) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Collect the last identifier before `for` (the trait, possibly
        // path-qualified) and the last identifier before `{` (the type).
        let mut k = i + 1;
        let mut last = None;
        let mut trait_ok = false;
        let mut matched = None;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Ident(id) if id == "for" => {
                    trait_ok = last == Some(trait_name);
                    last = None;
                }
                Tok::Ident(id) => last = Some(id.as_str()),
                Tok::Punct('{') => {
                    if trait_ok && last == Some(type_name) {
                        matched = Some((k, close.get(&k).copied().unwrap_or(toks.len() - 1)));
                    }
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(span) = matched {
            return Some(span);
        }
        i = k.max(i + 1);
    }
    None
}

/// Variant names referenced as `EnumName::Variant` within `[start, end]`.
pub fn variant_refs(toks: &[Token], range: (usize, usize), enum_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let (start, end) = range;
    let mut i = start;
    while i + 3 <= end {
        if toks[i].is_ident(enum_name)
            && matches_punct(toks, i + 1, ':')
            && matches_punct(toks, i + 2, ':')
        {
            if let Some(v) = toks.get(i + 3).and_then(Token::ident) {
                out.push((v.to_string(), toks[i].line));
                i += 4;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether token `i` is an identifier that heads a call (`name(…)`),
/// excluding `fn name(` declarations.
pub fn is_call(toks: &[Token], i: usize) -> bool {
    toks[i].ident().is_some()
        && matches_punct(toks, i + 1, '(')
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// Whether token `i` is the given punctuation.
pub fn matches_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}
