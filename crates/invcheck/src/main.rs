//! `invcheck` CLI.
//!
//! Usage: `cargo run -p invcheck -- --workspace [--deny-warnings]
//! [--rules lock,durability,protocol,trace] [--json PATH] [--edges]
//! [--root PATH] [--allowlist PATH]`
//!
//! Scans `crates/*/src/**/*.rs` (production) plus `crates/*/tests/**`
//! and the workspace `tests/` tree (test evidence) under the workspace
//! root, parses the lock registry from `crates/common/src/sync.rs` and
//! the `CrashPoint`/`Stage` registries from their declaring files, and
//! runs all four rule families. Allowlisted findings (from
//! `invcheck.allow` at the root; `lockcheck.allow` is read as a
//! fallback for compatibility) are reported as allowed. Stale allowlist
//! entries are notes normally but **fail the run** under
//! `--deny-warnings`, so the allowlist can only shrink as code improves.
//! `--json PATH` writes the full findings report for CI artifacts.

use invcheck::report::{render_json_report, FAMILIES};
use invcheck::{Allowlist, Registry, ScanOptions, SourceFile, Workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut families: Vec<String> = FAMILIES.iter().map(|s| s.to_string()).collect();
    let mut deny = false;
    let mut workspace = false;
    let mut dump_edges = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny = true,
            "--edges" => dump_edges = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => return usage("--allowlist requires a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json requires a path"),
            },
            "--rules" => match args.next() {
                Some(list) => {
                    families = list.split(',').map(|s| s.trim().to_string()).collect();
                    for f in &families {
                        if !FAMILIES.contains(&f.as_str()) {
                            return usage(&format!(
                                "unknown rule family `{f}` (expected one of {})",
                                FAMILIES.join(", ")
                            ));
                        }
                    }
                }
                None => return usage("--rules requires a comma-separated list"),
            },
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace");
    }

    let sync_path = root.join("crates/common/src/sync.rs");
    let sync_source = match std::fs::read_to_string(&sync_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invcheck: cannot read {}: {e}", sync_path.display());
            return ExitCode::from(2);
        }
    };
    let registry = Registry::parse(&sync_source);
    if registry.entries.is_empty() {
        eprintln!(
            "invcheck: no LockRank constants found in {}",
            sync_path.display()
        );
        return ExitCode::from(2);
    }

    // `invcheck.allow` is the canonical allowlist; `lockcheck.allow` is
    // honoured as a fallback so older checkouts keep working.
    let (allowlist_path, allowlist) = match allowlist_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => (p, Allowlist::parse(&text)),
            Err(e) => {
                eprintln!("invcheck: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => {
            let primary = root.join("invcheck.allow");
            match std::fs::read_to_string(&primary) {
                Ok(text) => (primary, Allowlist::parse(&text)),
                Err(_) => {
                    let legacy = root.join("lockcheck.allow");
                    match std::fs::read_to_string(&legacy) {
                        Ok(text) => {
                            eprintln!(
                                "note: using legacy allowlist {} (rename it to invcheck.allow)",
                                legacy.display()
                            );
                            (legacy, Allowlist::parse(&text))
                        }
                        Err(_) => (primary, Allowlist::default()),
                    }
                }
            }
        }
    };

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("invcheck: cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        // The linter's own sources (and the old shim's) carry rule
        // needles and seeded fixtures; scanning them is pure noise.
        let name = dir.file_name().map(|n| n.to_string_lossy().to_string());
        if matches!(name.as_deref(), Some("invcheck" | "lockcheck")) {
            continue;
        }
        collect_rs(&dir.join("src"), &root, &mut files);
        collect_rs(&dir.join("tests"), &root, &mut files);
    }
    // The workspace-level integration tests are the restart-test matrix
    // the crash-point coverage rule consults.
    collect_rs(&root.join("tests"), &root, &mut files);

    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, text)| SourceFile::new(p.clone(), text.as_str()))
        .collect();
    let ws = Workspace::new(&sync_source, sources, ScanOptions::default());
    let family_refs: Vec<&str> = families.iter().map(|s| s.as_str()).collect();
    let analysis = invcheck::run(&ws, &family_refs);

    if dump_edges {
        for (a, b) in &analysis.edges {
            println!("edge: {a} -> {b}");
        }
    }

    let mut used = vec![false; allowlist.entries.len()];
    let mut denied: Vec<&invcheck::Finding> = Vec::new();
    let mut allowed: Vec<&invcheck::Finding> = Vec::new();
    for f in &analysis.findings {
        match allowlist.matches(f) {
            Some(idx) => {
                used[idx] = true;
                allowed.push(f);
            }
            None => {
                denied.push(f);
                print!("{}", f.render());
            }
        }
    }
    let stale: Vec<_> = allowlist
        .entries
        .iter()
        .enumerate()
        .filter(|(idx, _)| !used[*idx])
        .map(|(_, e)| e)
        .collect();
    for entry in &stale {
        eprintln!(
            "{}: stale allowlist entry at {}:{} ({}:{}:{}) matches no finding",
            if deny { "error" } else { "note" },
            allowlist_path.display(),
            entry.line,
            entry.rule,
            entry.path,
            entry.needle
        );
    }

    if let Some(p) = &json_path {
        let doc = render_json_report(&denied, &allowed, &stale);
        if let Err(e) = std::fs::write(p, doc) {
            eprintln!("invcheck: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "invcheck: {} file(s), {} lock(s) in registry, families [{}], {} finding(s) ({} allowlisted)",
        files.len(),
        registry.entries.len(),
        families.join(","),
        denied.len() + allowed.len(),
        allowed.len()
    );
    if deny && (!denied.is_empty() || !stale.is_empty()) {
        eprintln!(
            "invcheck: {} unallowlisted finding(s), {} stale allowlist entr(ies) with --deny-warnings",
            denied.len(),
            stale.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Recursively collect `.rs` files under `dir` as repo-relative paths,
/// skipping any `fixtures/` directory.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = rd.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, root, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&p) {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, text));
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("invcheck: {err}");
    }
    eprintln!(
        "usage: invcheck --workspace [--deny-warnings] [--rules LIST] [--json PATH] [--edges] \
         [--root PATH] [--allowlist PATH]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
