//! A comment- and string-aware token scanner for Rust sources.
//!
//! The linter runs in an offline workspace with no parser crates
//! available, so it lexes by hand. The scanner's one job is to make the
//! downstream pattern matching sound against the things that fool naive
//! text search: line and (nested) block comments, string literals with
//! escapes, raw strings (`r#"…"#` with any hash count), byte strings,
//! char literals, and lifetimes. Everything inside those is dropped;
//! what remains is a stream of identifiers and single-character
//! punctuation, each tagged with its source line.

/// One surviving token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok, Tok::Punct(p) if p == c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Lex `src`, dropping comments and all literal contents.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, i, &mut line),
            b'\'' => i = skip_quote(b, i, &mut line),
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let next = b.get(i).copied();
                match (word, next) {
                    // Raw (and raw byte) strings: r"…", r#"…"#, br#"…"#.
                    ("r" | "br", Some(b'"' | b'#')) => i = skip_raw_string(b, i, &mut line),
                    // Byte strings have normal escape rules.
                    ("b", Some(b'"')) => i = skip_string(b, i, &mut line),
                    // Byte char literal b'x'.
                    ("b", Some(b'\'')) => i = skip_quote(b, i, &mut line),
                    _ => out.push(Token {
                        tok: Tok::Ident(word.to_string()),
                        line,
                    }),
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal: consume digits, underscores, and any
                // radix/suffix letters. The dot of `1.5` is left to the
                // punct arm, which is harmless downstream (patterns all
                // require an identifier after `.`).
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            _ => {
                out.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"…"` literal starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string starting at the first `#` or `"` after the `r`/`br`
/// prefix; returns the index past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Disambiguate a `'` into a char literal (skipped) or a lifetime
/// (consumed, no closing quote); returns the index past it.
fn skip_quote(b: &[u8], i: usize, line: &mut u32) -> usize {
    let next = b.get(i + 1).copied();
    match next {
        // 'x' (char) vs 'x (lifetime): a closing quote two ahead means
        // a char literal.
        Some(c) if (c.is_ascii_alphanumeric() || c == b'_') && b.get(i + 2) != Some(&b'\'') => {
            // Lifetime: consume the identifier.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            j
        }
        Some(b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => return j + 1,
                    b'\n' => {
                        *line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            j
        }
        _ => {
            // Plain char literal like 'x' or '('.
            let mut j = i + 1;
            while j < b.len() && b[j] != b'\'' {
                if b[j] == b'\n' {
                    *line += 1;
                }
                j += 1;
            }
            j + 1
        }
    }
}
