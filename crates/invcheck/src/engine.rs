//! The rule engine: a workspace model shared by every rule family and
//! the [`Rule`] trait each family implements.
//!
//! The engine parses its registries *from the source of truth* — the
//! lock ranks from `common/src/sync.rs`, the `CrashPoint` and `Stage`
//! enums from their declaring files — so there is no hand-maintained
//! table to drift. `tests/invcheck_selftest.rs` asserts the parsed
//! registries match the compiled enums.

use crate::lockrules::{self, Analysis, ScanOptions};
use crate::registry::Registry;
use crate::report::Finding;
use crate::source::{enum_decl, match_brackets, SourceFile};
use crate::{durability, protocol, tracecov};

/// An enum registry parsed out of its declaring file.
pub struct EnumRegistry {
    /// Path of the declaring file.
    pub file: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// `(variant, declaration line)` pairs.
    pub variants: Vec<(String, u32)>,
}

/// Everything a rule family can see: the lexed files plus the parsed
/// registries. Registries whose declaring file is absent from the scan
/// set are `None`, and the rules that need them no-op — fixture
/// workspaces opt in by including a (synthetic) declaring file.
pub struct Workspace {
    /// All lexed files, production and test.
    pub files: Vec<SourceFile>,
    /// The lock-rank registry parsed from `common/src/sync.rs`.
    pub registry: Registry,
    /// The `CrashPoint` enum parsed from `common/src/crashpoint.rs`.
    pub crash_points: Option<EnumRegistry>,
    /// The `Stage` enum parsed from `common/src/trace.rs`.
    pub stages: Option<EnumRegistry>,
    /// Lock-family scanner options.
    pub lock_opts: ScanOptions,
}

/// Path suffix of the file declaring `CrashPoint`.
pub const CRASHPOINT_DECL: &str = "common/src/crashpoint.rs";
/// Path suffix of the file declaring `Stage`.
pub const STAGE_DECL: &str = "common/src/trace.rs";

impl Workspace {
    /// Build a workspace model from the contents of
    /// `common/src/sync.rs` and the lexed file set.
    pub fn new(sync_source: &str, files: Vec<SourceFile>, lock_opts: ScanOptions) -> Self {
        let registry = Registry::parse(sync_source);
        let crash_points = find_enum(&files, CRASHPOINT_DECL, "CrashPoint");
        let stages = find_enum(&files, STAGE_DECL, "Stage");
        Self {
            files,
            registry,
            crash_points,
            stages,
            lock_opts,
        }
    }
}

fn find_enum(files: &[SourceFile], path_suffix: &str, name: &str) -> Option<EnumRegistry> {
    let file = files.iter().find(|f| f.path.ends_with(path_suffix))?;
    let close = match_brackets(&file.tokens);
    let decl = enum_decl(&file.tokens, &close, name)?;
    Some(EnumRegistry {
        file: file.path.clone(),
        line: decl.line,
        variants: decl.variants,
    })
}

/// One rule family. Families are enabled by name on the CLI
/// (`--rules lock,durability,…`); all are enabled by default.
pub trait Rule {
    /// The family name (`lock`, `durability`, `protocol`, `trace`).
    fn family(&self) -> &'static str;
    /// Run the family over the workspace, appending findings (and, for
    /// the lock family, acquisition edges) to `out`.
    fn check(&self, ws: &Workspace, out: &mut Analysis);
}

struct LockRules;

impl Rule for LockRules {
    fn family(&self) -> &'static str {
        "lock"
    }

    fn check(&self, ws: &Workspace, out: &mut Analysis) {
        let a = lockrules::analyze(&ws.files, &ws.registry, &ws.lock_opts);
        out.findings.extend(a.findings);
        out.edges.extend(a.edges);
    }
}

/// Every rule family, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(LockRules),
        Box::new(durability::DurabilityRules),
        Box::new(protocol::ProtocolRules),
        Box::new(tracecov::TraceRules),
    ]
}

/// Run the named rule families over the workspace. Findings are sorted
/// and deduplicated.
pub fn run(ws: &Workspace, families: &[&str]) -> Analysis {
    let mut analysis = Analysis::default();
    for rule in all_rules() {
        if families.contains(&rule.family()) {
            rule.check(ws, &mut analysis);
        }
    }
    analysis.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.lock, &a.detail)
            .cmp(&(&b.file, b.line, b.rule, &b.lock, &b.detail))
    });
    analysis.findings.dedup_by(|a, b| {
        (a.file == b.file)
            && a.line == b.line
            && a.rule == b.rule
            && a.lock == b.lock
            && a.detail == b.detail
    });
    analysis
}

/// Convenience: push a finding.
pub(crate) fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    file: &str,
    line: u32,
    subject: impl Into<String>,
    detail: impl Into<String>,
) {
    out.push(Finding {
        rule,
        file: file.to_string(),
        line,
        lock: subject.into(),
        detail: detail.into(),
    });
}
