//! Guard-holding-span analysis over the token stream.
//!
//! The scanner is intra-procedural and deliberately conservative. For
//! each file it:
//!
//! 1. derives a field→rank binding map from `OrderedMutex::new(ranks::X,
//!    …)` / `OrderedRwLock::new(ranks::X, …)` constructor sites (so the
//!    map can never drift from the code — there is nothing to maintain
//!    by hand);
//! 2. walks the tokens tracking *guard-holding spans*, modelling Rust
//!    temporary lifetimes: a `let`-bound guard lives to the end of its
//!    block (or an explicit `drop(g)`), a temporary dies at its
//!    statement's `;`, and a guard created in an `if let`/`while let`/
//!    `match`/`for` scrutinee lives through the whole construct — the
//!    scrutinee-extension rule is the source of every real
//!    guard-across-send bug this linter was built to catch;
//! 3. applies the rules inside live spans: hierarchy order (ranked
//!    acquisitions must strictly ascend; multi-instance ranks may nest
//!    at the same rank), blocking calls under a guard, and
//!    `.lock().unwrap()` poisoning on request paths;
//! 4. contributes held→acquired edges to a workspace-wide acquisition
//!    graph; cross-file/cross-crate cycles among locks the registry
//!    cannot rank are reported from the graph's strongly-connected
//!    components.
//!
//! `mod tests` regions are skipped: test-only lock usage is covered by
//! the runtime audit (`--features lock-audit`), not the linter.

use crate::lexer::Token;
use crate::registry::Registry;
use crate::report::{rules, Finding};
use crate::source::{match_brackets, matches_punct, test_regions, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Method names that acquire a guard when called with no arguments.
const ACQUIRE: &[&str] = &["lock", "lock_or_recover", "try_lock", "read", "write"];

/// Method names treated as potentially blocking under a guard.
const BLOCKING_METHODS: &[&str] = &["send", "recv", "recv_timeout", "call", "join", "deliver"];

/// Free functions treated as potentially blocking under a guard.
const BLOCKING_FREE: &[&str] = &["sleep", "write_frame", "read_frame"];

/// Scanner configuration.
#[derive(Clone, Debug)]
pub struct ScanOptions {
    /// Path fragments where the poison-unwrap rule applies (request
    /// paths: a panicking holder must not wedge later requests).
    pub poison_paths: Vec<String>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        Self {
            poison_paths: vec![
                "crates/server/".into(),
                "crates/dlm/".into(),
                "crates/lockmgr/".into(),
            ],
        }
    }
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted and deduplicated.
    pub findings: Vec<Finding>,
    /// Observed held→acquired edges, keyed by registry name (ranked
    /// locks) or `file-stem.receiver` (unranked).
    pub edges: BTreeSet<(String, String)>,
}

/// Analyze `files` against `registry`.
pub fn analyze(files: &[SourceFile], registry: &Registry, opts: &ScanOptions) -> Analysis {
    let mut analysis = Analysis::default();
    for file in files {
        // Test-only lock usage is covered by the runtime audit
        // (`--features lock-audit`), not the linter.
        if file.is_test {
            continue;
        }
        analyze_file(file, registry, opts, &mut analysis);
    }
    cycle_findings(&analysis.edges, &mut analysis.findings);
    analysis.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.lock, &a.detail)
            .cmp(&(&b.file, b.line, b.rule, &b.lock, &b.detail))
    });
    analysis.findings.dedup_by(|a, b| {
        (a.file == b.file)
            && a.line == b.line
            && a.rule == b.rule
            && a.lock == b.lock
            && a.detail == b.detail
    });
    analysis
}

/// How long a freshly acquired guard lives.
enum StmtKind {
    /// `let g = x.lock();` — to the end of the enclosing block.
    LetBinding { name: Option<String> },
    /// Part of a larger statement — to the statement's `;`.
    Temporary,
    /// `if let`/`while let`/`match`/`for` scrutinee — through the whole
    /// construct including `else` chains (Rust extends scrutinee
    /// temporaries to the end of the expression).
    Scrutinee,
}

struct Guard {
    key: String,
    rank: Option<(u16, bool)>,
    /// Token index past which the guard is no longer held.
    end: usize,
    let_name: Option<String>,
}

fn analyze_file(file: &SourceFile, registry: &Registry, opts: &ScanOptions, out: &mut Analysis) {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);
    let (bindings, ambiguous) = rank_bindings(toks, &tests, registry);
    let stem = file
        .path
        .rsplit('/')
        .next()
        .unwrap_or(&file.path)
        .trim_end_matches(".rs");
    let poison_applies = opts.poison_paths.iter().any(|p| file.path.contains(p));

    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(&(_, end)) = tests.iter().find(|&&(s, _)| s == i) {
            i = end + 1;
            continue;
        }
        guards.retain(|g| g.end > i);

        // Explicit early release: drop(g).
        if toks[i].is_ident("drop")
            && matches_punct(toks, i + 1, '(')
            && toks.get(i + 2).and_then(Token::ident).is_some()
            && matches_punct(toks, i + 3, ')')
        {
            let name = toks[i + 2].ident().unwrap().to_string();
            guards.retain(|g| g.let_name.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }

        // Guard acquisition: `recv.lock()` / `.read()` / `.write()` …
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|m| ACQUIRE.contains(&m))
            && matches_punct(toks, i + 2, '(')
            && matches_punct(toks, i + 3, ')')
        {
            let line = toks[i].line;
            let recv = if i > 0 { toks[i - 1].ident() } else { None };
            let entry = recv
                .filter(|r| !ambiguous.contains(*r))
                .and_then(|r| bindings.get(r))
                .and_then(|c| registry.by_const(c));
            let key = match entry {
                Some(e) => e.name.clone(),
                None => format!("{stem}.{}", recv.unwrap_or("<expr>")),
            };
            let rank = entry.map(|e| (e.rank, e.multi));

            if let Some((nr, nm)) = rank {
                for g in &guards {
                    if let Some((gr, gm)) = g.rank {
                        let ordered = nr > gr || (nr == gr && nm && gm);
                        if !ordered {
                            out.findings.push(Finding {
                                rule: rules::ORDER,
                                file: file.path.clone(),
                                line,
                                lock: g.key.clone(),
                                detail: key.clone(),
                            });
                        }
                    }
                }
            }
            for g in &guards {
                if g.key != key {
                    out.edges.insert((g.key.clone(), key.clone()));
                }
            }

            // Poison rule: `.lock().unwrap()` / `.expect(` on request
            // paths turns one panicked holder into a wedged server.
            if poison_applies
                && matches_punct(toks, i + 4, '.')
                && toks
                    .get(i + 5)
                    .and_then(Token::ident)
                    .is_some_and(|m| m == "unwrap" || m == "expect")
            {
                let method = toks[i + 1].ident().unwrap_or("lock");
                let post = toks[i + 5].ident().unwrap_or("unwrap");
                out.findings.push(Finding {
                    rule: rules::POISON,
                    file: file.path.clone(),
                    line,
                    lock: key.clone(),
                    detail: format!("{}.{method}().{post}()", recv.unwrap_or("<expr>")),
                });
            }

            let after = i + 4;
            let (end, let_name) = match classify(toks, i) {
                StmtKind::LetBinding { name } => (block_end(toks, &close, after), name),
                StmtKind::Temporary => (statement_end(toks, &close, after), None),
                StmtKind::Scrutinee => (scrutinee_end(toks, &close, after), None),
            };
            guards.push(Guard {
                key,
                rank,
                end,
                let_name,
            });
            i = after;
            continue;
        }

        // Blocking calls under a live guard.
        let blocking = if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|m| BLOCKING_METHODS.contains(&m))
            && matches_punct(toks, i + 2, '(')
        {
            let recv = if i > 0 { toks[i - 1].ident() } else { None };
            Some((
                toks[i].line,
                format!(
                    "{}.{}",
                    recv.unwrap_or("<expr>"),
                    toks[i + 1].ident().unwrap()
                ),
            ))
        } else if toks[i]
            .ident()
            .is_some_and(|m| BLOCKING_FREE.contains(&m))
            && matches_punct(toks, i + 1, '(')
            // `.send(` handled above; a free call is not preceded by `.`.
            && (i == 0 || !toks[i - 1].is_punct('.'))
        {
            Some((toks[i].line, toks[i].ident().unwrap().to_string()))
        } else {
            None
        };
        if let Some((line, callee)) = blocking {
            for g in &guards {
                out.findings.push(Finding {
                    rule: rules::BLOCKING,
                    file: file.path.clone(),
                    line,
                    lock: g.key.clone(),
                    detail: callee.clone(),
                });
            }
        }

        i += 1;
    }
}

/// Derive the field→rank-constant map from constructor sites:
/// `field: …OrderedMutex::new(ranks::CONST, …)` or
/// `let field = OrderedMutex::new(ranks::CONST, …)`.
fn rank_bindings(
    toks: &[Token],
    tests: &[(usize, usize)],
    registry: &Registry,
) -> (HashMap<String, String>, HashSet<String>) {
    let mut bindings: HashMap<String, String> = HashMap::new();
    let mut ambiguous: HashSet<String> = HashSet::new();
    for i in 0..toks.len() {
        if tests.iter().any(|&(s, e)| i >= s && i <= e) {
            continue;
        }
        let is_ctor = toks[i]
            .ident()
            .is_some_and(|m| m == "OrderedMutex" || m == "OrderedRwLock");
        if !(is_ctor
            && matches_punct(toks, i + 1, ':')
            && matches_punct(toks, i + 2, ':')
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && matches_punct(toks, i + 4, '(')
            && toks.get(i + 5).is_some_and(|t| t.is_ident("ranks"))
            && matches_punct(toks, i + 6, ':')
            && matches_punct(toks, i + 7, ':'))
        {
            continue;
        }
        let Some(const_ident) = toks.get(i + 8).and_then(Token::ident) else {
            continue;
        };
        if registry.by_const(const_ident).is_none() {
            continue;
        }
        let Some(field) = find_binder(toks, i) else {
            continue;
        };
        match bindings.get(&field) {
            Some(existing) if existing != const_ident => {
                ambiguous.insert(field);
            }
            _ => {
                bindings.insert(field, const_ident.to_string());
            }
        }
    }
    (bindings, ambiguous)
}

/// Walk backward from a constructor call to the field or variable it
/// initializes, skipping wrapper calls like `Arc::new(…)`.
fn find_binder(toks: &[Token], ctor: usize) -> Option<String> {
    let mut k = ctor;
    while k > 0 {
        k -= 1;
        match &toks[k].tok {
            crate::lexer::Tok::Punct('(') => continue, // wrapper call opener
            crate::lexer::Tok::Ident(_) => continue,   // wrapper path segment
            crate::lexer::Tok::Punct(':') => {
                if k > 0 && toks[k - 1].is_punct(':') {
                    k -= 1; // `::` path separator
                    continue;
                }
                // Struct-literal field separator: `field: …`.
                return toks
                    .get(k.wrapping_sub(1))
                    .and_then(Token::ident)
                    .map(String::from);
            }
            crate::lexer::Tok::Punct('=') => {
                // `let name = …` / `name = …`: take the identifier
                // before `=`, skipping `mut`.
                let mut j = k;
                while j > 0 {
                    j -= 1;
                    match toks[j].ident() {
                        Some("mut") => continue,
                        Some(name) => return Some(name.to_string()),
                        None => return None,
                    }
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// Classify the statement containing the acquisition at `dot`.
fn classify(toks: &[Token], dot: usize) -> StmtKind {
    // Find the statement boundary going backward: `;`, `{`, or `}` at
    // balance zero, or stepping out of an enclosing group.
    let mut depth = 0i32;
    let mut k = dot;
    let start = loop {
        if k == 0 {
            break 0;
        }
        k -= 1;
        match &toks[k].tok {
            crate::lexer::Tok::Punct(')' | ']') => depth += 1,
            crate::lexer::Tok::Punct('}') => {
                if depth == 0 {
                    break k + 1;
                }
                depth += 1;
            }
            crate::lexer::Tok::Punct('(' | '[') => {
                if depth == 0 {
                    break k + 1; // acquisition is an argument
                }
                depth -= 1;
            }
            crate::lexer::Tok::Punct('{') => {
                if depth == 0 {
                    break k + 1;
                }
                depth -= 1;
            }
            crate::lexer::Tok::Punct(';') if depth == 0 => break k + 1,
            _ => {}
        }
    };
    let mut s = start;
    // `else if let …` chains: skip the `else`.
    if toks.get(s).is_some_and(|t| t.is_ident("else")) {
        s += 1;
    }
    let first = toks.get(s).and_then(Token::ident);
    let second = toks.get(s + 1).and_then(Token::ident);
    match (first, second) {
        (Some("let"), _) => {
            // A chain continuing past the acquisition (other than
            // `.unwrap()`/`.expect(…)`) means the guard itself is a
            // temporary: `let v = m.lock().remove(&k);`.
            if chain_continues(toks, dot) {
                StmtKind::Temporary
            } else {
                let name = match toks.get(s + 1).and_then(Token::ident) {
                    Some("mut") => toks.get(s + 2).and_then(Token::ident),
                    other => other,
                };
                StmtKind::LetBinding {
                    name: name.map(String::from),
                }
            }
        }
        (Some("if" | "while"), Some("let")) => StmtKind::Scrutinee,
        (Some("match" | "for"), _) => StmtKind::Scrutinee,
        _ => StmtKind::Temporary,
    }
}

/// Whether the method chain continues past the acquisition's `()`,
/// ignoring `.unwrap()` / `.expect(…)`.
fn chain_continues(toks: &[Token], dot: usize) -> bool {
    let mut k = dot + 4; // past `.lock ( )`
    loop {
        if !matches_punct(toks, k, '.') {
            return false;
        }
        match toks.get(k + 1).and_then(Token::ident) {
            Some("unwrap") | Some("expect") => {
                // Skip `.unwrap(…)` and look again.
                if matches_punct(toks, k + 2, '(') {
                    if matches_punct(toks, k + 3, ')') {
                        k += 4;
                        continue;
                    }
                    return true; // `.expect("…")` lexes its args away → `()` — but be safe
                }
                return true;
            }
            _ => return true,
        }
    }
}

/// End of the enclosing block, scanning forward from `from` and skipping
/// nested groups.
fn block_end(toks: &[Token], close: &HashMap<usize, usize>, from: usize) -> usize {
    let mut k = from;
    while k < toks.len() {
        match &toks[k].tok {
            crate::lexer::Tok::Punct('(' | '{' | '[') => {
                k = close.get(&k).map_or(toks.len(), |&c| c + 1);
            }
            crate::lexer::Tok::Punct('}' | ')' | ']') => return k,
            _ => k += 1,
        }
    }
    toks.len()
}

/// End of the current statement (`;` at depth zero), scanning forward.
///
/// A `{` at depth zero also ends the span: a plain `if cond { … }` /
/// `while cond { … }` drops its condition temporaries before entering
/// the block (unlike `if let`, which is classified as a scrutinee).
/// Braces nested inside `(…)`/`[…]` (closure bodies in arguments,
/// struct literals in calls) are skipped with their enclosing group.
fn statement_end(toks: &[Token], close: &HashMap<usize, usize>, from: usize) -> usize {
    let mut k = from;
    while k < toks.len() {
        match &toks[k].tok {
            crate::lexer::Tok::Punct('(' | '[') => {
                k = close.get(&k).map_or(toks.len(), |&c| c + 1);
            }
            crate::lexer::Tok::Punct(';') => return k,
            crate::lexer::Tok::Punct('{' | '}' | ')' | ']') => return k,
            _ => k += 1,
        }
    }
    toks.len()
}

/// End of an `if let`/`match`/`for` construct: the close of the block
/// that follows, extended through `else` chains.
fn scrutinee_end(toks: &[Token], close: &HashMap<usize, usize>, from: usize) -> usize {
    let mut k = from;
    // Find the construct's opening `{` at depth zero.
    let mut open = None;
    while k < toks.len() {
        match &toks[k].tok {
            crate::lexer::Tok::Punct('(' | '[') => {
                k = close.get(&k).map_or(toks.len(), |&c| c + 1);
            }
            crate::lexer::Tok::Punct('{') => {
                open = Some(k);
                break;
            }
            crate::lexer::Tok::Punct('}' | ')' | ']' | ';') => return k,
            _ => k += 1,
        }
    }
    let Some(open) = open else { return toks.len() };
    let mut end = close.get(&open).copied().unwrap_or(toks.len());
    // `else { … }` / `else if … { … }` chains keep scrutinee
    // temporaries alive.
    loop {
        let next = end + 1;
        if !toks.get(next).is_some_and(|t| t.is_ident("else")) {
            return end;
        }
        let mut k = next + 1;
        let mut open = None;
        while k < toks.len() {
            match &toks[k].tok {
                crate::lexer::Tok::Punct('(' | '[') => {
                    k = close.get(&k).map_or(toks.len(), |&c| c + 1);
                }
                crate::lexer::Tok::Punct('{') => {
                    open = Some(k);
                    break;
                }
                crate::lexer::Tok::Punct('}' | ')' | ']' | ';') => return end,
                _ => k += 1,
            }
        }
        match open {
            Some(o) => end = close.get(&o).copied().unwrap_or(toks.len()),
            None => return end,
        }
    }
}

/// Report strongly-connected components of the acquisition graph as
/// cycles. Ranked inversions are reported directly at their call sites;
/// this catches orderings among locks the registry cannot rank.
fn cycle_findings(edges: &BTreeSet<(String, String)>, findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
        adj.entry(b.as_str()).or_default();
    }
    // Tarjan's SCC.
    struct State<'a> {
        adj: &'a BTreeMap<&'a str, Vec<&'a str>>,
        index: HashMap<&'a str, usize>,
        low: HashMap<&'a str, usize>,
        stack: Vec<&'a str>,
        on_stack: HashSet<&'a str>,
        next: usize,
        sccs: Vec<Vec<&'a str>>,
    }
    fn strongconnect<'a>(v: &'a str, st: &mut State<'a>) {
        st.index.insert(v, st.next);
        st.low.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        for &w in st.adj.get(v).into_iter().flatten() {
            if !st.index.contains_key(w) {
                strongconnect(w, st);
                let lw = st.low[w];
                let lv = st.low.get_mut(v).unwrap();
                *lv = (*lv).min(lw);
            } else if st.on_stack.contains(w) {
                let iw = st.index[w];
                let lv = st.low.get_mut(v).unwrap();
                *lv = (*lv).min(iw);
            }
        }
        if st.low[v] == st.index[v] {
            let mut scc = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(w);
                scc.push(w);
                if w == v {
                    break;
                }
            }
            st.sccs.push(scc);
        }
    }
    let mut st = State {
        adj: &adj,
        index: HashMap::new(),
        low: HashMap::new(),
        stack: Vec::new(),
        on_stack: HashSet::new(),
        next: 0,
        sccs: Vec::new(),
    };
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for v in nodes {
        if !st.index.contains_key(v) {
            strongconnect(v, &mut st);
        }
    }
    for scc in st.sccs {
        if scc.len() > 1 {
            let mut names: Vec<&str> = scc;
            names.sort_unstable();
            findings.push(Finding {
                rule: rules::CYCLE,
                file: "<acquisition-graph>".into(),
                line: 0,
                lock: names[0].to_string(),
                detail: names.join(" <-> "),
            });
        }
    }
}
