//! Trace-stage coverage rules (family `trace`).
//!
//! PR 5's observability work defined a 7-stage taxonomy for the
//! notification path (`common::trace::Stage`); the OBS experiment and
//! the latency breakdown both assume each stage is recorded exactly once
//! per path. Two rules keep the instrumentation honest:
//!
//! * `missing-stage` — a stage with *zero* record sites anywhere in
//!   production code can never appear in a span; the breakdown would
//!   silently attribute its latency to the neighbouring stage.
//! * `duplicate-stage` — the same stage recorded twice in one
//!   block/match-arm double-counts the stage on that path. Recording the
//!   same stage on *different* branches (e.g. the Delta and Batch arms)
//!   is expected and not flagged.
//!
//! A record site is a `Stage::Variant` reference with a `record` /
//! `record_stage` identifier within the preceding few tokens — close
//! enough to bind the reference to an instrumentation call while
//! excluding report/benchmark code that merely names stages.

use crate::engine::{push, Rule, Workspace, STAGE_DECL};
use crate::lockrules::Analysis;
use crate::report::{rules, Finding};
use crate::source::{in_regions, match_brackets, matches_punct, test_regions, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// How many tokens before `Stage` may separate it from the recording
/// call. `trace::record(id, path::to::Stage::X)` needs ~12.
const LOOKBACK: usize = 14;

pub struct TraceRules;

impl Rule for TraceRules {
    fn family(&self) -> &'static str {
        "trace"
    }

    fn check(&self, ws: &Workspace, out: &mut Analysis) {
        let Some(stages) = &ws.stages else {
            return; // no Stage declaration in the scan set
        };
        let known: BTreeSet<&str> = stages.variants.iter().map(|(v, _)| v.as_str()).collect();
        let mut recorded: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if file.is_test || file.path.ends_with(STAGE_DECL) || file.path == stages.file {
                continue;
            }
            scan_file(file, &known, &mut recorded, &mut out.findings);
        }
        for (variant, line) in &stages.variants {
            if !recorded.contains(variant) {
                push(
                    &mut out.findings,
                    rules::MISSING_STAGE,
                    &stages.file,
                    *line,
                    variant.clone(),
                    "",
                );
            }
        }
    }
}

fn scan_file(
    file: &SourceFile,
    known: &BTreeSet<&str>,
    recorded: &mut BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);

    // Walk once, tracking the innermost open brace and a per-block arm
    // counter (incremented on each `=>` seen at that block's level) so
    // two brace-less match arms recording the same stage land in
    // distinct (block, arm) slots while two records in one arm collide.
    let mut stack: Vec<(usize, u32)> = Vec::new();
    let mut seen: BTreeMap<(usize, u32, String), u32> = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            crate::lexer::Tok::Punct('{') => stack.push((i, 0)),
            crate::lexer::Tok::Punct('}') => {
                stack.pop();
            }
            crate::lexer::Tok::Punct('=') if matches_punct(toks, i + 1, '>') => {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                i += 2;
                continue;
            }
            crate::lexer::Tok::Ident(id)
                if id == "Stage"
                    && matches_punct(toks, i + 1, ':')
                    && matches_punct(toks, i + 2, ':')
                    && !in_regions(&tests, i) =>
            {
                if let Some(variant) = toks.get(i + 3).and_then(crate::lexer::Token::ident) {
                    if known.contains(variant) && is_record_site(toks, i) {
                        recorded.insert(variant.to_string());
                        let (block, arm) = stack.last().copied().unwrap_or((0, 0));
                        let key = (block, arm, variant.to_string());
                        if let Some(first_line) = seen.get(&key) {
                            push(
                                out,
                                rules::DUPLICATE_STAGE,
                                &file.path,
                                toks[i].line,
                                variant,
                                format!("first recorded at line {first_line}"),
                            );
                        } else {
                            seen.insert(key, toks[i].line);
                        }
                    }
                }
                i += 4;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Whether a `record` / `record_stage` identifier appears within
/// [`LOOKBACK`] tokens before index `i`.
fn is_record_site(toks: &[crate::lexer::Token], i: usize) -> bool {
    let from = i.saturating_sub(LOOKBACK);
    toks[from..i].iter().any(|t| {
        t.ident()
            .is_some_and(|id| id == "record" || id == "record_stage")
    })
}
