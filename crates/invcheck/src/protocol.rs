//! Protocol-exhaustiveness rules (family `protocol`).
//!
//! The display-lock protocol only works if every wire variant is both
//! round-trippable and handled: a variant the server encodes but the DLC
//! silently drops is a lost notification (the paper's consistency story
//! collapses), and an encode arm without a decode arm is a wire error
//! waiting for the first deployment skew. Two rules:
//!
//! * `unhandled-variant` — for each dispatch pair in [`DISPATCH`], every
//!   variant of the enum must be referenced (`Enum::Variant`) in the
//!   production code of its handler file. A wildcard arm does not count:
//!   deliberately ignored variants are documented in the allowlist, so
//!   adding a variant forces a decision.
//! * `encode-without-decode` / `decode-without-encode` — for every enum
//!   declared in a file that also carries `impl Encode for E` and
//!   `impl Decode for E` blocks, the variant sets referenced in the two
//!   blocks must be equal. New wire enums are picked up automatically.

use crate::engine::{push, Rule, Workspace};
use crate::lockrules::Analysis;
use crate::report::{rules, Finding};
use crate::source::{enum_decl, impl_block, in_regions, match_brackets, test_regions, SourceFile};
use std::collections::BTreeSet;

/// Dispatch table: `(enum, declaring-file suffix, handler-file suffix,
/// handler description)`. The handler file is where the protocol's
/// receive loop matches on the enum.
pub const DISPATCH: &[(&str, &str, &str)] = &[
    // Client requests are dispatched by the server core.
    ("Request", "server/src/proto.rs", "server/src/core.rs"),
    // DLM requests are dispatched by the DLM agent loop.
    ("DlmRequest", "dlm/src/proto.rs", "dlm/src/agent.rs"),
    // DLM events are applied by the client's display-lock cache.
    ("DlmEvent", "dlm/src/proto.rs", "client/src/dlc.rs"),
    // DLC events are consumed by the display view layer.
    ("DlcEvent", "client/src/dlc.rs", "display/src/view.rs"),
];

pub struct ProtocolRules;

impl Rule for ProtocolRules {
    fn family(&self) -> &'static str {
        "protocol"
    }

    fn check(&self, ws: &Workspace, out: &mut Analysis) {
        for &(enum_name, decl_suffix, handler_suffix) in DISPATCH {
            check_dispatch(
                ws,
                enum_name,
                decl_suffix,
                handler_suffix,
                &mut out.findings,
            );
        }
        for file in &ws.files {
            if !file.is_test {
                check_codec_parity(file, &mut out.findings);
            }
        }
    }
}

/// Variant names referenced in the production code of `file` (test
/// regions excluded), as `Enum::V` or `Self::V`.
fn production_refs(
    file: &SourceFile,
    enum_name: &str,
    range: Option<(usize, usize)>,
) -> BTreeSet<String> {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);
    let range = range.unwrap_or((0, toks.len().saturating_sub(1)));
    let mut prod = BTreeSet::new();
    for name in [enum_name, "Self"] {
        let mut i = range.0;
        while i + 3 <= range.1 {
            if toks[i].is_ident(name)
                && crate::source::matches_punct(toks, i + 1, ':')
                && crate::source::matches_punct(toks, i + 2, ':')
            {
                if let Some(v) = toks.get(i + 3).and_then(crate::lexer::Token::ident) {
                    if !in_regions(&tests, i) {
                        prod.insert(v.to_string());
                    }
                    i += 4;
                    continue;
                }
            }
            i += 1;
        }
    }
    prod
}

fn check_dispatch(
    ws: &Workspace,
    enum_name: &str,
    decl_suffix: &str,
    handler_suffix: &str,
    out: &mut Vec<Finding>,
) {
    let Some(decl_file) = ws.files.iter().find(|f| f.path.ends_with(decl_suffix)) else {
        return; // enum not in the scan set (fixture workspaces)
    };
    let Some(handler_file) = ws.files.iter().find(|f| f.path.ends_with(handler_suffix)) else {
        return;
    };
    let close = match_brackets(&decl_file.tokens);
    let Some(decl) = enum_decl(&decl_file.tokens, &close, enum_name) else {
        return;
    };
    let handled = production_refs(handler_file, enum_name, None);
    for (variant, line) in &decl.variants {
        if !handled.contains(variant) {
            push(
                out,
                rules::UNHANDLED_VARIANT,
                &decl_file.path,
                *line,
                format!("{enum_name}::{variant}"),
                handler_file.path.clone(),
            );
        }
    }
}

/// All enum names declared in the token stream.
fn enum_names(toks: &[crate::lexer::Token]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("enum") {
            if let Some(name) = toks[i + 1].ident() {
                out.push(name.to_string());
            }
        }
    }
    out
}

fn check_codec_parity(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);
    for name in enum_names(toks) {
        let Some(enc) = impl_block(toks, &close, "Encode", &name) else {
            continue;
        };
        let Some(dec) = impl_block(toks, &close, "Decode", &name) else {
            continue;
        };
        if in_regions(&tests, enc.0) || in_regions(&tests, dec.0) {
            continue;
        }
        let Some(decl) = enum_decl(toks, &close, &name) else {
            continue;
        };
        let eset = production_refs(file, &name, Some(enc));
        let dset = production_refs(file, &name, Some(dec));
        for (variant, line) in &decl.variants {
            let encoded = eset.contains(variant);
            let decoded = dset.contains(variant);
            if encoded && !decoded {
                push(
                    out,
                    rules::ENCODE_NO_DECODE,
                    &file.path,
                    *line,
                    format!("{name}::{variant}"),
                    "",
                );
            }
            if decoded && !encoded {
                push(
                    out,
                    rules::DECODE_NO_ENCODE,
                    &file.path,
                    *line,
                    format!("{name}::{variant}"),
                    "",
                );
            }
            if !encoded && !decoded {
                // Wired into neither direction: the variant cannot cross
                // the wire at all. Report it on the encode side.
                push(
                    out,
                    rules::ENCODE_NO_DECODE,
                    &file.path,
                    *line,
                    format!("{name}::{variant}"),
                    "not referenced by either impl",
                );
            }
        }
    }
}
