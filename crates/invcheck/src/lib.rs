//! Workspace invariant linter.
//!
//! Grown out of the lock-safety linter (`lockcheck`, DESIGN.md §11)
//! into a pluggable rule engine over the same hand-rolled lexer and
//! token-stream scanner. Four rule families:
//!
//! * **lock** — the original hierarchy/blocking/poison rules, keyed by
//!   the rank registry parsed from `common/src/sync.rs`;
//! * **durability** — commit-path appends must be synced before any
//!   ack/frontier/cursor write escapes; fsync-adjacent mutations carry
//!   crash-point probes; every `CrashPoint` variant is exercised;
//! * **protocol** — every wire-enum variant has a handler arm and
//!   encode/decode arms stay in lockstep;
//! * **trace** — each `Stage` is recorded somewhere, and never twice on
//!   one path.
//!
//! All registries are parsed from their declaring source files (never
//! duplicated), and `tests/invcheck_selftest.rs` asserts the parses
//! match the compiled enums. See DESIGN.md §15 for the engine, the
//! allowlist policy, and the intra-procedural limitations.

pub mod durability;
pub mod engine;
pub mod lexer;
pub mod lockrules;
pub mod protocol;
pub mod registry;
pub mod report;
pub mod source;
pub mod tracecov;

/// Back-compat alias: the lock family was previously the whole linter,
/// exposed as `scan`.
pub use lockrules as scan;

pub use engine::{all_rules, run, EnumRegistry, Rule, Workspace};
pub use lockrules::{analyze, Analysis, ScanOptions};
pub use registry::Registry;
pub use report::{Allowlist, Finding};
pub use source::SourceFile;

/// Lex and analyze `(path, contents)` pairs with the **lock family
/// only**, against the registry parsed from `sync_source`. Kept for the
/// `lockcheck` shim and existing callers.
pub fn check_sources(
    sync_source: &str,
    files: &[(String, String)],
    opts: &ScanOptions,
) -> Analysis {
    check_workspace(sync_source, files, &["lock"], opts)
}

/// Lex `(path, contents)` pairs into a [`Workspace`] and run the named
/// rule families. The main entry point for the CLI and the self-tests.
pub fn check_workspace(
    sync_source: &str,
    files: &[(String, String)],
    families: &[&str],
    opts: &ScanOptions,
) -> Analysis {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, text)| SourceFile::new(p.clone(), text.as_str()))
        .collect();
    let ws = Workspace::new(sync_source, sources, opts.clone());
    run(&ws, families)
}
