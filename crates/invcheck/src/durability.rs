//! Durability-ordering rules (family `durability`).
//!
//! The paper's commit protocol acknowledges an update only after it is
//! durable; PR 7 added the spilled seglog and crash-point harness that
//! make the ordering testable. These rules make it *checkable*:
//!
//! * `append-without-sync` / `ack-before-sync` — within each function of
//!   a commit-path storage file, every append must be dominated by a
//!   sync before any durability evidence (a frontier/cursor write or
//!   `CursorAck`) escapes. The check is intra-procedural and
//!   call-name-based: a helper whose name contains `sync` counts as a
//!   sync site, which is exactly the naming convention the storage layer
//!   follows (`sync`, `sync_inner`, `sync_data`, `fsync_dir`, …).
//! * `missing-crashpoint` — every fsync-adjacent mutation function in
//!   the seglog must carry a `crashpoint::hit` probe so the restart-test
//!   matrix can cut power at it (ALICE-style explicit crash surface).
//! * `crashpoint-coverage` — every `CrashPoint` variant must appear in
//!   production code *and* be exercised by test code. A test that
//!   iterates `CrashPoint::ALL` covers all variants (the self-test
//!   proves `ALL` is exhaustive against the compiled enum).

use crate::engine::{push, Rule, Workspace};
use crate::lockrules::Analysis;
use crate::report::rules;
use crate::source::{functions, in_regions, is_call, match_brackets, test_regions, SourceFile};
use std::collections::BTreeSet;

/// Call names that append bytes to a log on the commit path.
const APPEND: &[&str] = &["append", "append_batch", "append_record", "write_all"];

/// Call names (and the `CursorAck` constructor) that let durability
/// evidence escape: once one of these runs, a peer may observe the
/// append as durable.
const ESCAPE: &[&str] = &["advance_frontier", "append_frontier", "record_frontier"];

/// Mutations that must carry a crash-point probe when the function also
/// syncs (fsync-adjacent mutation sites).
const MUTATION: &[&str] = &[
    "append",
    "append_batch",
    "append_record",
    "write_all",
    "set_len",
    "remove_file",
    "create",
];

/// Whether the ordering rules apply to this file: the storage layer's
/// log/commit files.
fn ordering_scope(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    name.contains("seglog") || name.contains("wal") || name == "log.rs" || name == "store.rs"
}

/// Whether the crash-point probe rule applies: the segmented log, whose
/// write path the restart-test matrix crashes into.
fn crashpoint_scope(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    name.contains("seglog")
}

enum Ev {
    Append(u32, String),
    Sync,
    Escape(u32, String),
}

pub struct DurabilityRules;

impl Rule for DurabilityRules {
    fn family(&self) -> &'static str {
        "durability"
    }

    fn check(&self, ws: &Workspace, out: &mut Analysis) {
        for file in &ws.files {
            if file.is_test {
                continue;
            }
            if ordering_scope(&file.path) {
                check_ordering(file, &mut out.findings);
            }
            if crashpoint_scope(&file.path) {
                check_probes(file, &mut out.findings);
            }
        }
        check_coverage(ws, &mut out.findings);
    }
}

fn check_ordering(file: &SourceFile, out: &mut Vec<crate::report::Finding>) {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);
    for f in functions(toks, &close) {
        if in_regions(&tests, f.body_start) {
            continue;
        }
        let mut events: Vec<Ev> = Vec::new();
        for i in f.body_start + 1..f.body_end {
            let line = toks[i].line;
            if is_call(toks, i) {
                let name = toks[i].ident().unwrap();
                if ESCAPE.contains(&name) {
                    events.push(Ev::Escape(line, name.to_string()));
                } else if APPEND.contains(&name) {
                    events.push(Ev::Append(line, name.to_string()));
                } else if name.contains("sync") {
                    events.push(Ev::Sync);
                }
            } else if toks[i].is_ident("CursorAck") {
                events.push(Ev::Escape(line, "CursorAck".to_string()));
            }
        }
        for (a, ev) in events.iter().enumerate() {
            let Ev::Append(append_line, append_name) = ev else {
                continue;
            };
            // The first escape after this append.
            let Some((e, (esc_line, esc_name))) =
                events.iter().enumerate().skip(a + 1).find_map(|(k, ev)| {
                    if let Ev::Escape(l, n) = ev {
                        Some((k, (*l, n.clone())))
                    } else {
                        None
                    }
                })
            else {
                continue; // nothing escapes in this function
            };
            let synced_before = events[a + 1..e].iter().any(|ev| matches!(ev, Ev::Sync));
            if synced_before {
                continue;
            }
            let synced_after = events[e + 1..].iter().any(|ev| matches!(ev, Ev::Sync));
            if synced_after {
                push(
                    out,
                    rules::ACK_BEFORE_SYNC,
                    &file.path,
                    esc_line,
                    f.name.clone(),
                    esc_name,
                );
            } else {
                push(
                    out,
                    rules::APPEND_NO_SYNC,
                    &file.path,
                    *append_line,
                    f.name.clone(),
                    append_name.clone(),
                );
            }
        }
    }
}

fn check_probes(file: &SourceFile, out: &mut Vec<crate::report::Finding>) {
    let toks = &file.tokens;
    let close = match_brackets(toks);
    let tests = test_regions(toks, &close);
    for f in functions(toks, &close) {
        if in_regions(&tests, f.body_start) {
            continue;
        }
        let body = f.body_start + 1..f.body_end;
        let mut mutation = None;
        let mut syncs = false;
        let mut probed = false;
        for i in body {
            if let Some(name) = toks[i].ident() {
                if name == "crashpoint" || name == "hit" || name == "CrashPoint" {
                    probed = true;
                } else if is_call(toks, i) {
                    if MUTATION.contains(&name) && mutation.is_none() {
                        mutation = Some((toks[i].line, name.to_string()));
                    }
                    if name.contains("sync") {
                        syncs = true;
                    }
                }
            }
        }
        if let Some((line, what)) = mutation {
            if syncs && !probed {
                push(
                    out,
                    rules::MISSING_CRASHPOINT,
                    &file.path,
                    line,
                    f.name.clone(),
                    what,
                );
            }
        }
    }
}

fn check_coverage(ws: &Workspace, out: &mut Vec<crate::report::Finding>) {
    let Some(cp) = &ws.crash_points else {
        return; // no CrashPoint declaration in the scan set
    };
    let mut prod: BTreeSet<String> = BTreeSet::new();
    let mut test: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        // The declaring file defines the harness (and its own unit
        // tests); neither counts as usage or matrix coverage.
        if file.path == cp.file {
            continue;
        }
        let toks = &file.tokens;
        let close = match_brackets(toks);
        let tests = test_regions(toks, &close);
        for i in 0..toks.len() {
            if !toks[i].is_ident("CrashPoint")
                || !crate::source::matches_punct(toks, i + 1, ':')
                || !crate::source::matches_punct(toks, i + 2, ':')
            {
                continue;
            }
            let Some(name) = toks.get(i + 3).and_then(crate::lexer::Token::ident) else {
                continue;
            };
            if file.is_test || in_regions(&tests, i) {
                test.insert(name.to_string());
            } else {
                prod.insert(name.to_string());
            }
        }
    }
    // A test iterating `CrashPoint::ALL` exercises every variant; the
    // self-test proves ALL matches the compiled enum.
    let all_in_tests = test.contains("ALL");
    for (variant, line) in &cp.variants {
        if !prod.contains(variant) {
            push(
                out,
                rules::CRASHPOINT_COVERAGE,
                &cp.file,
                *line,
                variant.clone(),
                "production code",
            );
        }
        if !test.contains(variant) && !all_in_tests {
            push(
                out,
                rules::CRASHPOINT_COVERAGE,
                &cp.file,
                *line,
                variant.clone(),
                "the restart-test matrix",
            );
        }
    }
}
