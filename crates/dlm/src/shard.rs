//! The partitioned DLM: N in-process shards by OID hash (DESIGN.md
//! § 16).
//!
//! The single-table [`DlmCore`] serializes every commit's interest
//! intersect behind one mutex — the single-box ceiling the paper's
//! DLM-placement study (§ "DLM deployments") measures. [`ShardedDlm`]
//! splits the table by a stable OID hash into independent shards, each
//! with its own interest table, holders map, outbox set, and update log
//! with an **independent seqno space**. Commits split their OID set by
//! shard and fan the intersects out in parallel; clients keep a cursor
//! *vector* (one entry per shard) and recovery replays shards in
//! parallel.
//!
//! A one-shard `ShardedDlm` is bit-compatible with the classic core: it
//! wraps a plain [`DlmCore`] on the legacy lock ranks, emits untagged
//! [`DlmEvent::CursorAck`]s, and spills its durable log to the same
//! directory layout as PR 7.

use crate::core::{DlmConfig, DlmCore, DlmStats, EventSink, ReplayOutcome};
use crate::log::{DurableRecovery, UpdateLog};
use crate::proto::{DlmEvent, UpdateInfo};
use displaydb_common::metrics::{Counter, SegLogStats};
use displaydb_common::{ClientId, DbResult, DurableLogConfig, Oid, TxnId};
use std::path::Path;
use std::sync::Arc;

/// Stable OID → shard assignment, shared by the server and (via the
/// handshake's shard count) the DLC. Pure function of `(oid, shards)`:
/// both sides compute the same routing without exchanging a table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1) as u32,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard `oid` routes to. Fibonacci hashing on the raw OID: the
    /// multiplier spreads sequential OIDs (the common allocation
    /// pattern) uniformly, so hot contiguous ranges don't pile onto one
    /// shard.
    pub fn shard_of(&self, oid: Oid) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        ((oid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % self.shards as u64) as u32
    }

    /// Partition `oids` into per-shard vectors (index = shard), order
    /// preserved within each shard.
    pub fn split(&self, oids: &[Oid]) -> Vec<Vec<Oid>> {
        let mut parts = vec![Vec::new(); self.shards as usize];
        for &oid in oids {
            parts[self.shard_of(oid) as usize].push(oid);
        }
        parts
    }
}

/// An [`EventSink`] decorator that stamps one shard's identity onto the
/// cursor-bearing control events, so a client receiving from N shards
/// over one session channel can tell the seqno spaces apart. Sits
/// *inside* the per-shard outbox (the coalescing queue never sees
/// tagged variants); everything that isn't a cursor control event
/// passes through untouched.
pub struct ShardTagSink {
    shard: u32,
    inner: Arc<dyn EventSink>,
}

impl ShardTagSink {
    /// Wrap `inner` so its cursor control events carry `shard`.
    pub fn new(shard: u32, inner: Arc<dyn EventSink>) -> Self {
        Self { shard, inner }
    }

    fn tag(&self, event: DlmEvent) -> DlmEvent {
        match event {
            DlmEvent::CursorAck { seqno } => DlmEvent::ShardCursorAck {
                shard: self.shard,
                seqno,
            },
            DlmEvent::ReplayNeeded { from } => DlmEvent::ShardReplayNeeded {
                shard: self.shard,
                from,
            },
            DlmEvent::Batch(events) => {
                DlmEvent::Batch(events.into_iter().map(|e| self.tag(e)).collect())
            }
            other => other,
        }
    }
}

impl EventSink for ShardTagSink {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        self.inner.deliver(self.tag(event))
    }

    fn deliver_logged(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        self.inner.deliver_logged(self.tag(event), seqno)
    }

    fn deliver_replayed(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        self.inner.deliver_replayed(self.tag(event), seqno)
    }

    fn replay_restore(&self) {
        self.inner.replay_restore();
    }

    fn mark_current_through(&self, seqno: u64) {
        self.inner.mark_current_through(seqno);
    }

    fn advance_frontier(&self, seqno: u64) {
        self.inner.advance_frontier(seqno);
    }

    fn close(&self) {
        self.inner.close();
    }
}

/// Shard-tagged fan-out counters: how many committed updates each shard
/// intersected. Static names keep [`displaydb_common::StatsSource`]'s
/// `'static` contract; shards past the table fold into the last row.
const SHARD_STAT_NAMES: &[&str] = &[
    "shard0_updates",
    "shard1_updates",
    "shard2_updates",
    "shard3_updates",
    "shard4_updates",
    "shard5_updates",
    "shard6_updates",
    "shard7_updates",
    "shard8_updates",
    "shard9_updates",
    "shard10_updates",
    "shard11_updates",
    "shard12_updates",
    "shard13_updates",
    "shard14_updates",
    "shard15_updates",
];

/// Per-shard routing counters for reports and the stats registry.
#[derive(Clone, Debug)]
pub struct ShardStats {
    updates: Arc<Vec<Counter>>,
}

impl ShardStats {
    fn new(shards: usize) -> Self {
        Self {
            updates: Arc::new((0..shards).map(|_| Counter::new()).collect()),
        }
    }

    fn routed(&self, shard: usize, n: u64) {
        self.updates[shard.min(self.updates.len() - 1)].add(n);
    }

    /// Updates routed to `shard` so far.
    pub fn updates_of(&self, shard: usize) -> u64 {
        self.updates.get(shard).map_or(0, Counter::get)
    }
}

impl displaydb_common::StatsSource for ShardStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.updates
            .iter()
            .enumerate()
            .map(|(i, c)| (SHARD_STAT_NAMES[i.min(SHARD_STAT_NAMES.len() - 1)], c.get()))
            .collect()
    }
}

/// The partitioned display-lock manager (DESIGN.md § 16). All the
/// [`DlmCore`] entry points the integrated server uses, routed through
/// a [`ShardMap`]; multi-OID operations split their set and commits fan
/// the per-shard intersects out in parallel.
pub struct ShardedDlm {
    map: ShardMap,
    cores: Vec<Arc<DlmCore>>,
    config: DlmConfig,
    stats: DlmStats,
    shard_stats: ShardStats,
}

impl std::fmt::Debug for ShardedDlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDlm")
            .field("shards", &self.map.shards())
            .field("config", &self.config)
            .finish()
    }
}

impl ShardedDlm {
    /// Build an in-memory DLM with `config.shards` partitions. One
    /// shard wraps a classic [`DlmCore`] on the legacy lock ranks;
    /// more get per-shard ranked tables and logs sharing one stats
    /// handle.
    pub fn new(config: DlmConfig) -> Self {
        let map = ShardMap::new(config.shards);
        let (cores, stats) = if map.shards() == 1 {
            let core = Arc::new(DlmCore::new(config));
            let stats = core.stats().clone();
            (vec![core], stats)
        } else {
            let stats = DlmStats::default();
            let cores = (0..map.shards())
                .map(|_| Arc::new(DlmCore::new_shard(config, stats.clone())))
                .collect();
            (cores, stats)
        };
        let shard_stats = ShardStats::new(map.shards());
        Self {
            map,
            cores,
            config,
            stats,
            shard_stats,
        }
    }

    /// Build a DLM whose per-shard update logs spill to stable storage
    /// (DESIGN.md § 14, per-shard directories `dir/shard-<i>` when
    /// sharded, `dir` itself at one shard — the PR 7 layout). Each
    /// shard gets its own durable incarnation (`fresh_incarnation + i`
    /// when freshly minted) because its seqno space is independent.
    /// Returns one recovery report per shard.
    pub fn new_durable(
        config: DlmConfig,
        dir: impl AsRef<Path>,
        durable: DurableLogConfig,
        seg_stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, Vec<DurableRecovery>)> {
        let map = ShardMap::new(config.shards);
        if map.shards() == 1 {
            let (core, rec) = DlmCore::new_durable(
                config,
                dir,
                durable,
                seg_stats,
                fresh_incarnation,
                min_last_txn,
            )?;
            let stats = core.stats().clone();
            let shard_stats = ShardStats::new(1);
            return Ok((
                Self {
                    map,
                    cores: vec![Arc::new(core)],
                    config,
                    stats,
                    shard_stats,
                },
                vec![rec],
            ));
        }
        let stats = DlmStats::default();
        let mut cores = Vec::with_capacity(map.shards());
        let mut recoveries = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let (core, rec) = DlmCore::new_shard_durable(
                config,
                stats.clone(),
                dir.as_ref().join(format!("shard-{s}")),
                durable,
                seg_stats.clone(),
                fresh_incarnation.wrapping_add(s as u64),
                min_last_txn,
            )?;
            cores.push(Arc::new(core));
            recoveries.push(rec);
        }
        let shard_stats = ShardStats::new(map.shards());
        Ok((
            Self {
                map,
                cores,
                config,
                stats,
                shard_stats,
            },
            recoveries,
        ))
    }

    /// The OID → shard routing function.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// One shard's core (tests, per-shard resume admission).
    pub fn core(&self, shard: usize) -> &Arc<DlmCore> {
        &self.cores[shard]
    }

    /// Active configuration.
    pub fn config(&self) -> DlmConfig {
        self.config
    }

    /// The shared statistics counters (one coherent view across shards).
    pub fn stats(&self) -> &DlmStats {
        &self.stats
    }

    /// Per-shard routing counters.
    pub fn shard_stats(&self) -> &ShardStats {
        &self.shard_stats
    }

    /// Shard 0's update log. With one shard this *is* the log, exactly
    /// as before; with more it is only the first partition — callers
    /// that care about a specific shard use [`Self::update_log_of`].
    pub fn update_log(&self) -> &UpdateLog {
        self.cores[0].update_log()
    }

    /// One shard's update log.
    pub fn update_log_of(&self, shard: usize) -> &UpdateLog {
        self.cores[shard].update_log()
    }

    /// Every shard's durable log incarnation, index = shard (0 = that
    /// shard has no durable log). The client echoes this vector back in
    /// its resume token so admission is provable per shard.
    pub fn log_incarnations(&self) -> Vec<u64> {
        self.cores
            .iter()
            .map(|c| c.update_log().incarnation().unwrap_or(0))
            .collect()
    }

    /// Register one sink for `client` on every shard (single-shard
    /// deployments and tests, where tagging is unnecessary).
    pub fn register_client(&self, client: ClientId, sink: Arc<dyn EventSink>) {
        for core in &self.cores {
            core.register_client(client, Arc::clone(&sink));
        }
    }

    /// Register per-shard sinks for `client` (index = shard). The
    /// server wraps each shard's sink in its own outbox so one slow
    /// shard's backlog cannot block the others, and tags it with
    /// [`ShardTagSink`] so cursor acks name their seqno space.
    pub fn register_client_sinks(&self, client: ClientId, sinks: Vec<Arc<dyn EventSink>>) {
        assert_eq!(sinks.len(), self.cores.len(), "one sink per shard");
        for (core, sink) in self.cores.iter().zip(sinks) {
            core.register_client(client, sink);
        }
    }

    /// Drop `client` from every shard (sinks closed outside the table
    /// locks, as for [`DlmCore::unregister_client`]).
    pub fn unregister_client(&self, client: ClientId) {
        for core in &self.cores {
            core.unregister_client(client);
        }
    }

    /// Acquire display locks, split by shard.
    pub fn lock(&self, client: ClientId, oids: &[Oid]) {
        for (s, part) in self.map.split(oids).iter().enumerate() {
            if !part.is_empty() {
                self.cores[s].lock(client, part);
            }
        }
    }

    /// Acquire projected display locks, split by shard.
    pub fn lock_projected(&self, client: ClientId, oids: &[Oid], attrs: &[u16], version: u32) {
        for (s, part) in self.map.split(oids).iter().enumerate() {
            if !part.is_empty() {
                self.cores[s].lock_projected(client, part, attrs, version);
            }
        }
    }

    /// Release display locks, split by shard.
    pub fn release(&self, client: ClientId, oids: &[Oid]) {
        for (s, part) in self.map.split(oids).iter().enumerate() {
            if !part.is_empty() {
                self.cores[s].release(client, part);
            }
        }
    }

    /// Current holder set for an object (routed to its shard).
    pub fn holders(&self, oid: Oid) -> Vec<ClientId> {
        self.cores[self.map.shard_of(oid) as usize].holders(oid)
    }

    /// Number of display-locked objects across all shards.
    pub fn locked_objects(&self) -> usize {
        self.cores.iter().map(|c| c.locked_objects()).sum()
    }

    /// Whether any client anywhere has a projected interest registered.
    pub fn has_projected_interest(&self) -> bool {
        self.cores.iter().any(|c| c.has_projected_interest())
    }

    /// Whether `client` holds a projected lock on `oid`.
    pub fn has_interest(&self, client: ClientId, oid: Oid) -> bool {
        self.cores[self.map.shard_of(oid) as usize].has_interest(client, oid)
    }

    /// Whether `client`'s projection on `oid` covers `changed`.
    pub fn interest_covers(&self, client: ClientId, oid: Oid, changed: &[u16]) -> bool {
        self.cores[self.map.shard_of(oid) as usize].interest_covers(client, oid, changed)
    }

    /// Partition `updates` by shard, order preserved within each shard.
    fn split_updates<'a>(&self, updates: &'a [UpdateInfo]) -> Vec<Vec<&'a UpdateInfo>> {
        let mut parts: Vec<Vec<&UpdateInfo>> = vec![Vec::new(); self.cores.len()];
        for u in updates {
            parts[self.map.shard_of(u.oid) as usize].push(u);
        }
        parts
    }

    /// [`DlmCore::notify_committed`] across shards; see
    /// [`Self::notify_committed_txn`].
    pub fn notify_committed(&self, origin: Option<ClientId>, updates: &[UpdateInfo]) {
        let _ = self.notify_committed_txn(origin, updates, 0);
    }

    /// Fan one committed batch out across the shards it touches: the
    /// OID set is split by shard and each involved shard runs its
    /// append + intersect + enqueue **in parallel** (this is the stage
    /// the R6 experiment shows scaling). An error from any shard's
    /// durable spill is reported (first one wins); the other shards
    /// still complete their fan-out.
    pub fn notify_committed_txn(
        &self,
        origin: Option<ClientId>,
        updates: &[UpdateInfo],
        txn: u64,
    ) -> DbResult<()> {
        let parts = self.split_updates(updates);
        let involved: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(s, _)| s)
            .collect();
        for &s in &involved {
            self.shard_stats.routed(s, parts[s].len() as u64);
        }
        match involved.len() {
            0 => Ok(()),
            1 => {
                let s = involved[0];
                let owned: Vec<UpdateInfo> = parts[s].iter().map(|u| (*u).clone()).collect();
                self.cores[s].notify_committed_txn(origin, &owned, txn)
            }
            _ => {
                let results: Vec<DbResult<()>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = involved
                        .iter()
                        .map(|&s| {
                            let core = &self.cores[s];
                            let part = &parts[s];
                            scope.spawn(move || {
                                let owned: Vec<UpdateInfo> =
                                    part.iter().map(|u| (*u).clone()).collect();
                                core.notify_committed_txn(origin, &owned, txn)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard fan-out thread panicked"))
                        .collect()
                });
                results.into_iter().find(|r| r.is_err()).unwrap_or(Ok(()))
            }
        }
    }

    /// Early-notify intent marks, split by shard.
    pub fn notify_intent(&self, origin: Option<ClientId>, oids: &[Oid], txn: TxnId) {
        for (s, part) in self.map.split(oids).iter().enumerate() {
            if !part.is_empty() {
                self.cores[s].notify_intent(origin, part, txn);
            }
        }
    }

    /// Early-notify resolutions, split by shard.
    pub fn notify_resolution(
        &self,
        origin: Option<ClientId>,
        oids: &[Oid],
        txn: TxnId,
        committed: bool,
    ) {
        for (s, part) in self.map.split(oids).iter().enumerate() {
            if !part.is_empty() {
                self.cores[s].notify_resolution(origin, part, txn, committed);
            }
        }
    }

    /// Replay shard 0 from `cursor` — the legacy single-cursor entry
    /// point ([`crate::proto::DlmRequest::ReplayFrom`] and pre-shard
    /// resume tokens land here).
    pub fn replay_for(&self, client: ClientId, cursor: u64) -> ReplayOutcome {
        self.cores[0].replay_for(client, cursor)
    }

    /// Replay one shard's log from that shard's `cursor`.
    pub fn replay_for_shard(&self, client: ClientId, shard: usize, cursor: u64) -> ReplayOutcome {
        self.cores[shard].replay_for(client, cursor)
    }

    /// Fan a recovery out shard-parallel: replay each `(shard, cursor)`
    /// pair concurrently. Shards whose cursor fell off their log answer
    /// with a `ResyncRequired` over the client's watched set *in that
    /// shard* — truncation is contained, caught-up shards still replay.
    /// Returns one outcome per requested pair, same order.
    pub fn replay_for_shards(
        &self,
        client: ClientId,
        cursors: &[(u32, u64)],
    ) -> Vec<ReplayOutcome> {
        if cursors.len() <= 1 {
            return cursors
                .iter()
                .filter(|(s, _)| (*s as usize) < self.cores.len())
                .map(|&(s, c)| self.cores[s as usize].replay_for(client, c))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = cursors
                .iter()
                .filter(|(s, _)| (*s as usize) < self.cores.len())
                .map(|&(s, c)| {
                    let core = &self.cores[s as usize];
                    scope.spawn(move || core.replay_for(client, c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard replay thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{unbounded, Receiver};
    use displaydb_common::DbError;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    fn sink() -> (Arc<dyn EventSink>, Receiver<DlmEvent>) {
        let (tx, rx) = unbounded();
        let f = move |e: DlmEvent| tx.send(e).map_err(|_| DbError::Disconnected);
        (Arc::new(f), rx)
    }

    fn sharded(n: usize) -> ShardedDlm {
        ShardedDlm::new(DlmConfig {
            shards: n,
            ..DlmConfig::default()
        })
    }

    #[test]
    fn shard_map_is_stable_and_total() {
        let map = ShardMap::new(8);
        for i in 0..1000 {
            let s = map.shard_of(o(i));
            assert!(s < 8);
            assert_eq!(s, map.shard_of(o(i)), "assignment must be stable");
        }
        // All shards get some OIDs (Fibonacci spread over a sequential
        // range).
        let mut seen = vec![false; 8];
        for i in 0..1000 {
            seen[map.shard_of(o(i)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard never used: {seen:?}");
        // One shard routes everything to 0.
        let single = ShardMap::new(1);
        assert!((0..100).all(|i| single.shard_of(o(i)) == 0));
    }

    #[test]
    fn split_preserves_order_within_shard() {
        let map = ShardMap::new(4);
        let oids: Vec<Oid> = (0..64).map(o).collect();
        let parts = map.split(&oids);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 64);
        for (s, part) in parts.iter().enumerate() {
            for w in part.windows(2) {
                assert!(w[0].raw() < w[1].raw(), "order broken in shard {s}");
            }
            for &oid in part {
                assert_eq!(map.shard_of(oid) as usize, s);
            }
        }
    }

    #[test]
    fn sharded_notifies_holders_across_shards() {
        let dlm = sharded(4);
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        let oids: Vec<Oid> = (0..32).map(o).collect();
        dlm.lock(c(1), &oids);
        assert_eq!(dlm.locked_objects(), 32);
        let updates: Vec<UpdateInfo> = oids.iter().map(|&oid| UpdateInfo::lazy(oid)).collect();
        dlm.notify_committed(None, &updates);
        assert_eq!(r1.try_iter().count(), 32);
        assert_eq!(dlm.stats().notifications.get(), 32);
        let routed: u64 = (0..4).map(|s| dlm.shard_stats().updates_of(s)).sum();
        assert_eq!(routed, 32);
    }

    #[test]
    fn originator_skipped_in_every_shard() {
        let dlm = sharded(4);
        let (s1, r1) = sink();
        let (s2, r2) = sink();
        dlm.register_client(c(1), s1);
        dlm.register_client(c(2), s2);
        let oids: Vec<Oid> = (0..16).map(o).collect();
        dlm.lock(c(1), &oids);
        dlm.lock(c(2), &oids);
        let updates: Vec<UpdateInfo> = oids.iter().map(|&oid| UpdateInfo::lazy(oid)).collect();
        dlm.notify_committed(Some(c(2)), &updates);
        assert_eq!(r1.try_iter().count(), 16);
        assert_eq!(r2.try_iter().count(), 0);
    }

    #[test]
    fn release_and_unregister_cover_all_shards() {
        let dlm = sharded(4);
        let (s1, _r1) = sink();
        dlm.register_client(c(1), s1);
        let oids: Vec<Oid> = (0..16).map(o).collect();
        dlm.lock(c(1), &oids);
        dlm.release(c(1), &oids[..8]);
        assert_eq!(dlm.locked_objects(), 8);
        dlm.unregister_client(c(1));
        assert_eq!(dlm.locked_objects(), 0);
    }

    #[test]
    fn per_shard_seqno_spaces_are_independent() {
        let dlm = sharded(4);
        let (s1, _r1) = sink();
        dlm.register_client(c(1), s1);
        let oids: Vec<Oid> = (0..64).map(o).collect();
        dlm.lock(c(1), &oids);
        for &oid in &oids {
            dlm.notify_committed(None, &[UpdateInfo::lazy(oid)]);
        }
        // Every shard assigned seqnos from its own space starting at 1:
        // head == number of updates routed there, not a global count.
        for s in 0..4 {
            let head = dlm.update_log_of(s).head();
            assert_eq!(head, dlm.shard_stats().updates_of(s));
            assert!(head > 0, "shard {s} never appended");
        }
        let total: u64 = (0..4).map(|s| dlm.update_log_of(s).head()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn tag_sink_rewrites_cursor_events_including_batches() {
        let (inner, rx) = sink();
        let tagged = ShardTagSink::new(3, inner);
        tagged.deliver(DlmEvent::CursorAck { seqno: 9 }).unwrap();
        tagged.deliver(DlmEvent::ReplayNeeded { from: 5 }).unwrap();
        tagged
            .deliver(DlmEvent::Batch(vec![
                DlmEvent::Updated(UpdateInfo::lazy(o(1))),
                DlmEvent::CursorAck { seqno: 11 },
            ]))
            .unwrap();
        assert_eq!(
            rx.try_recv().unwrap(),
            DlmEvent::ShardCursorAck { shard: 3, seqno: 9 }
        );
        assert_eq!(
            rx.try_recv().unwrap(),
            DlmEvent::ShardReplayNeeded { shard: 3, from: 5 }
        );
        match rx.try_recv().unwrap() {
            DlmEvent::Batch(events) => {
                assert_eq!(events.len(), 2);
                assert!(matches!(events[0], DlmEvent::Updated(_)));
                assert_eq!(
                    events[1],
                    DlmEvent::ShardCursorAck {
                        shard: 3,
                        seqno: 11
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shard_parallel_replay_mixes_replay_and_resync() {
        let dlm = sharded(4);
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        let oids: Vec<Oid> = (0..64).map(o).collect();
        dlm.lock(c(1), &oids);
        let updates: Vec<UpdateInfo> = oids.iter().map(|&oid| UpdateInfo::lazy(oid)).collect();
        dlm.notify_committed(None, &updates);
        let live = r1.try_iter().count();
        assert_eq!(live, 64);
        // Truncate shard 2's log; replay all four shards from 0.
        dlm.update_log_of(2).truncate_all();
        let cursors: Vec<(u32, u64)> = (0..4).map(|s| (s, 0)).collect();
        let outcomes = dlm.replay_for_shards(c(1), &cursors);
        assert_eq!(outcomes.len(), 4);
        let mut replayed = 0usize;
        let mut truncated = 0usize;
        for (s, outcome) in outcomes.iter().enumerate() {
            match outcome {
                ReplayOutcome::Replayed { events, .. } => {
                    assert_ne!(s, 2);
                    replayed += events;
                }
                ReplayOutcome::Truncated { .. } => {
                    assert_eq!(s, 2);
                    truncated += 1;
                }
                ReplayOutcome::UnknownClient => panic!("client known"),
            }
        }
        assert_eq!(truncated, 1, "exactly the truncated shard resyncs");
        let routed_to_2 = dlm.shard_stats().updates_of(2) as usize;
        assert_eq!(replayed, 64 - routed_to_2);
        // The client saw the replayed events plus exactly one resync
        // marker naming shard 2's watched objects.
        let mut resyncs = 0usize;
        let mut replays = 0usize;
        for e in r1.try_iter() {
            match e {
                DlmEvent::ResyncRequired { oids } => {
                    resyncs += 1;
                    assert_eq!(oids.len(), routed_to_2);
                }
                DlmEvent::Updated(_) => replays += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(resyncs, 1);
        assert_eq!(replays, replayed);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// One recorded delivery, normalized for multiset comparison.
    /// Control events (acks, markers) are excluded — only the
    /// notification payload stream must be equivalent.
    type Recorded = (u64, String);

    fn recording_sink(
        client: u64,
        log: Arc<std::sync::Mutex<Vec<Recorded>>>,
    ) -> Arc<dyn EventSink> {
        Arc::new(move |e: DlmEvent| {
            match &e {
                DlmEvent::Updated(_) | DlmEvent::Delta { .. } => {
                    log.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((client, format!("{e:?}")));
                }
                _ => {}
            }
            Ok(())
        })
    }

    #[derive(Debug, Clone)]
    enum Op {
        Lock {
            client: u64,
            oids: Vec<u64>,
        },
        LockProjected {
            client: u64,
            oids: Vec<u64>,
            attrs: Vec<u16>,
        },
        Release {
            client: u64,
            oids: Vec<u64>,
        },
        Commit {
            origin: u64,
            oids: Vec<u64>,
            changed: bool,
        },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let client = 0u64..5;
        let oids = proptest::collection::vec(0u64..24, 1..5);
        prop_oneof![
            (client.clone(), oids.clone()).prop_map(|(client, oids)| Op::Lock { client, oids }),
            (
                client.clone(),
                oids.clone(),
                proptest::collection::vec(0u16..4, 1..3)
            )
                .prop_map(|(client, oids, attrs)| Op::LockProjected {
                    client,
                    oids,
                    attrs
                }),
            (client.clone(), oids.clone()).prop_map(|(client, oids)| Op::Release { client, oids }),
            (client, oids, any::<bool>()).prop_map(|(origin, oids, changed)| Op::Commit {
                origin,
                oids,
                changed
            }),
        ]
    }

    /// Run `ops` against a DLM with `shards` partitions, returning the
    /// sorted multiset of recorded notification deliveries.
    fn run(shards: usize, ops: &[Op]) -> Vec<Recorded> {
        let dlm = ShardedDlm::new(DlmConfig {
            shards,
            ..DlmConfig::default()
        });
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        for client in 0..5u64 {
            dlm.register_client(
                ClientId::new(client),
                recording_sink(client, Arc::clone(&log)),
            );
        }
        for op in ops {
            match op {
                Op::Lock { client, oids } => {
                    let oids: Vec<Oid> = oids.iter().map(|&o| Oid::new(o)).collect();
                    dlm.lock(ClientId::new(*client), &oids);
                }
                Op::LockProjected {
                    client,
                    oids,
                    attrs,
                } => {
                    let oids: Vec<Oid> = oids.iter().map(|&o| Oid::new(o)).collect();
                    dlm.lock_projected(ClientId::new(*client), &oids, attrs, 1);
                }
                Op::Release { client, oids } => {
                    let oids: Vec<Oid> = oids.iter().map(|&o| Oid::new(o)).collect();
                    dlm.release(ClientId::new(*client), &oids);
                }
                Op::Commit {
                    origin,
                    oids,
                    changed,
                } => {
                    let updates: Vec<UpdateInfo> = oids
                        .iter()
                        .map(|&o| {
                            let info = UpdateInfo::lazy(Oid::new(o));
                            if *changed {
                                info.with_changes(vec![(1, vec![7]), (5, vec![9])])
                            } else {
                                info
                            }
                        })
                        .collect();
                    dlm.notify_committed_txn(Some(ClientId::new(*origin)), &updates, 0)
                        .unwrap();
                }
            }
        }
        let mut recorded = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        recorded.sort();
        recorded
    }

    proptest! {
        /// The sharded DLM is observationally equivalent to the
        /// single-shard DLM: same commit/interest schedule, same event
        /// multiset per client (projection suppression and deltas
        /// included), and within each shard seqnos stay monotone.
        #[test]
        fn prop_sharded_matches_single_shard(ops in proptest::collection::vec(arb_op(), 1..60)) {
            let single = run(1, &ops);
            for &shards in &[2usize, 4, 8] {
                let multi = run(shards, &ops);
                prop_assert_eq!(&multi, &single, "{} shards diverged", shards);
            }
        }

        /// Per-shard seqno order: every shard's log assigns contiguous
        /// ascending seqnos regardless of commit interleaving.
        #[test]
        fn prop_per_shard_seqnos_monotone(oids in proptest::collection::vec(0u64..64, 1..80)) {
            let dlm = ShardedDlm::new(DlmConfig { shards: 4, ..DlmConfig::default() });
            let mut appended: HashMap<usize, u64> = HashMap::new();
            for &o in &oids {
                let oid = Oid::new(o);
                let shard = dlm.map().shard_of(oid) as usize;
                dlm.notify_committed(None, &[UpdateInfo::lazy(oid)]);
                *appended.entry(shard).or_insert(0) += 1;
                prop_assert_eq!(dlm.update_log_of(shard).head(), appended[&shard]);
            }
        }
    }
}
