//! Wire messages between display-lock clients and the DLM.

use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// One committed update as reported to the DLM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateInfo {
    /// The updated (or deleted) object.
    pub oid: Oid,
    /// The new encoded object state for eager shipping; `None` when the
    /// protocol is not eager (holders re-read from the server) or the
    /// object was deleted.
    pub payload: Option<Vec<u8>>,
    /// Whether the object was deleted.
    pub deleted: bool,
}

impl UpdateInfo {
    /// An update without shipped state (post-commit / early protocols).
    pub fn lazy(oid: Oid) -> Self {
        Self {
            oid,
            payload: None,
            deleted: false,
        }
    }

    /// An update with shipped state (eager protocol).
    pub fn eager(oid: Oid, payload: Vec<u8>) -> Self {
        Self {
            oid,
            payload: Some(payload),
            deleted: false,
        }
    }

    /// A deletion.
    pub fn deletion(oid: Oid) -> Self {
        Self {
            oid,
            payload: None,
            deleted: true,
        }
    }
}

impl Encode for UpdateInfo {
    fn encode(&self, w: &mut WireWriter) {
        self.oid.encode(w);
        self.payload.encode(w);
        self.deleted.encode(w);
    }
}

impl Decode for UpdateInfo {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(Self {
            oid: Oid::decode(r)?,
            payload: Option::<Vec<u8>>::decode(r)?,
            deleted: bool::decode(r)?,
        })
    }
}

/// Client → DLM messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlmRequest {
    /// Identify the connection. Must be first.
    Hello {
        /// The client's server-assigned id.
        client: ClientId,
    },
    /// Acquire display locks. Per § 4.1, lock requests are **not
    /// acknowledged** — they are always granted.
    Lock {
        /// Objects to display-lock.
        oids: Vec<Oid>,
    },
    /// Release display locks.
    Release {
        /// Objects to release.
        oids: Vec<Oid>,
    },
    /// An updating client reports a commit so holders can be notified
    /// (post-commit notify protocol).
    UpdateCommitted {
        /// The committed updates.
        updates: Vec<UpdateInfo>,
    },
    /// An updating client reports that it acquired exclusive locks (early
    /// notify protocol: displays mark these objects "being updated").
    WriteIntent {
        /// Objects about to be updated.
        oids: Vec<Oid>,
        /// The updating transaction.
        txn: TxnId,
    },
    /// An updating client reports the outcome of an earlier intent.
    Resolution {
        /// Objects previously marked.
        oids: Vec<Oid>,
        /// The updating transaction.
        txn: TxnId,
        /// Whether the transaction committed.
        committed: bool,
    },
    /// Orderly disconnect; all display locks of the client are dropped.
    Bye,
}

/// DLM → client notifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlmEvent {
    /// An object this client display-locks was updated (post-commit).
    Updated(UpdateInfo),
    /// An object is about to be updated by `txn` (early notify).
    Marked {
        /// The object being updated.
        oid: Oid,
        /// The updating transaction.
        txn: TxnId,
    },
    /// An earlier [`DlmEvent::Marked`] resolved.
    Resolved {
        /// The object.
        oid: Oid,
        /// The updating transaction.
        txn: TxnId,
        /// Whether it committed (if so, an [`DlmEvent::Updated`] for the
        /// same object accompanies or precedes this event).
        committed: bool,
    },
    /// Handshake acknowledgement: the agent registered this client and
    /// will deliver notifications. Sent once, immediately after `Hello`;
    /// lets a (re)connecting client distinguish a live agent from a
    /// channel that merely accepted the connection.
    Ready,
    /// The client's outbox overflowed its high-water mark: the queued
    /// notifications were swept and replaced by this single marker. The
    /// DLC answers by re-reading `oids` (the PR 1 resync machinery),
    /// which restores latest-state-wins without replaying the backlog.
    ResyncRequired {
        /// Every OID that had a swept notification pending.
        oids: Vec<Oid>,
    },
    /// The client has been demoted to resync-only mode after repeated
    /// overflows (slow consumer). Displays render this as staleness;
    /// the mode clears once the outbox drains.
    Lagging,
}

const REQ_HELLO: u8 = 1;
const REQ_LOCK: u8 = 2;
const REQ_RELEASE: u8 = 3;
const REQ_UPDATE: u8 = 4;
const REQ_INTENT: u8 = 5;
const REQ_RESOLUTION: u8 = 6;
const REQ_BYE: u8 = 7;

impl Encode for DlmRequest {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DlmRequest::Hello { client } => {
                w.put_u8(REQ_HELLO);
                client.encode(w);
            }
            DlmRequest::Lock { oids } => {
                w.put_u8(REQ_LOCK);
                oids.encode(w);
            }
            DlmRequest::Release { oids } => {
                w.put_u8(REQ_RELEASE);
                oids.encode(w);
            }
            DlmRequest::UpdateCommitted { updates } => {
                w.put_u8(REQ_UPDATE);
                w.put_varint(updates.len() as u64);
                for u in updates {
                    u.encode(w);
                }
            }
            DlmRequest::WriteIntent { oids, txn } => {
                w.put_u8(REQ_INTENT);
                oids.encode(w);
                txn.encode(w);
            }
            DlmRequest::Resolution {
                oids,
                txn,
                committed,
            } => {
                w.put_u8(REQ_RESOLUTION);
                oids.encode(w);
                txn.encode(w);
                committed.encode(w);
            }
            DlmRequest::Bye => w.put_u8(REQ_BYE),
        }
    }
}

impl Decode for DlmRequest {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            REQ_HELLO => DlmRequest::Hello {
                client: ClientId::decode(r)?,
            },
            REQ_LOCK => DlmRequest::Lock {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_RELEASE => DlmRequest::Release {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_UPDATE => {
                let n = r.get_varint()? as usize;
                let mut updates = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    updates.push(UpdateInfo::decode(r)?);
                }
                DlmRequest::UpdateCommitted { updates }
            }
            REQ_INTENT => DlmRequest::WriteIntent {
                oids: Vec::<Oid>::decode(r)?,
                txn: TxnId::decode(r)?,
            },
            REQ_RESOLUTION => DlmRequest::Resolution {
                oids: Vec::<Oid>::decode(r)?,
                txn: TxnId::decode(r)?,
                committed: bool::decode(r)?,
            },
            REQ_BYE => DlmRequest::Bye,
            t => return Err(DbError::Protocol(format!("unknown dlm request tag {t}"))),
        })
    }
}

const EV_UPDATED: u8 = 1;
const EV_MARKED: u8 = 2;
const EV_RESOLVED: u8 = 3;
const EV_READY: u8 = 4;
const EV_RESYNC_REQUIRED: u8 = 5;
const EV_LAGGING: u8 = 6;

impl Encode for DlmEvent {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DlmEvent::Updated(u) => {
                w.put_u8(EV_UPDATED);
                u.encode(w);
            }
            DlmEvent::Marked { oid, txn } => {
                w.put_u8(EV_MARKED);
                oid.encode(w);
                txn.encode(w);
            }
            DlmEvent::Resolved {
                oid,
                txn,
                committed,
            } => {
                w.put_u8(EV_RESOLVED);
                oid.encode(w);
                txn.encode(w);
                committed.encode(w);
            }
            DlmEvent::Ready => w.put_u8(EV_READY),
            DlmEvent::ResyncRequired { oids } => {
                w.put_u8(EV_RESYNC_REQUIRED);
                oids.encode(w);
            }
            DlmEvent::Lagging => w.put_u8(EV_LAGGING),
        }
    }
}

impl Decode for DlmEvent {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            EV_UPDATED => DlmEvent::Updated(UpdateInfo::decode(r)?),
            EV_MARKED => DlmEvent::Marked {
                oid: Oid::decode(r)?,
                txn: TxnId::decode(r)?,
            },
            EV_RESOLVED => DlmEvent::Resolved {
                oid: Oid::decode(r)?,
                txn: TxnId::decode(r)?,
                committed: bool::decode(r)?,
            },
            EV_READY => DlmEvent::Ready,
            EV_RESYNC_REQUIRED => DlmEvent::ResyncRequired {
                oids: Vec::<Oid>::decode(r)?,
            },
            EV_LAGGING => DlmEvent::Lagging,
            t => return Err(DbError::Protocol(format!("unknown dlm event tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(r: DlmRequest) {
        let bytes = r.encode_to_bytes();
        assert_eq!(DlmRequest::decode_from_bytes(&bytes).unwrap(), r);
    }

    fn rt_ev(e: DlmEvent) {
        let bytes = e.encode_to_bytes();
        assert_eq!(DlmEvent::decode_from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn request_roundtrips() {
        rt_req(DlmRequest::Hello {
            client: ClientId::new(9),
        });
        rt_req(DlmRequest::Lock {
            oids: vec![Oid::new(1), Oid::new(2)],
        });
        rt_req(DlmRequest::Release { oids: vec![] });
        rt_req(DlmRequest::UpdateCommitted {
            updates: vec![
                UpdateInfo::lazy(Oid::new(1)),
                UpdateInfo::eager(Oid::new(2), vec![1, 2, 3]),
                UpdateInfo::deletion(Oid::new(3)),
            ],
        });
        rt_req(DlmRequest::WriteIntent {
            oids: vec![Oid::new(5)],
            txn: TxnId::new(11),
        });
        rt_req(DlmRequest::Resolution {
            oids: vec![Oid::new(5)],
            txn: TxnId::new(11),
            committed: false,
        });
        rt_req(DlmRequest::Bye);
    }

    #[test]
    fn event_roundtrips() {
        rt_ev(DlmEvent::Updated(UpdateInfo::eager(Oid::new(4), vec![9])));
        rt_ev(DlmEvent::Marked {
            oid: Oid::new(4),
            txn: TxnId::new(2),
        });
        rt_ev(DlmEvent::Resolved {
            oid: Oid::new(4),
            txn: TxnId::new(2),
            committed: true,
        });
        rt_ev(DlmEvent::Ready);
        rt_ev(DlmEvent::ResyncRequired {
            oids: vec![Oid::new(7), Oid::new(8)],
        });
        rt_ev(DlmEvent::ResyncRequired { oids: vec![] });
        rt_ev(DlmEvent::Lagging);
    }

    #[test]
    fn junk_rejected() {
        assert!(DlmRequest::decode_from_bytes(&[99]).is_err());
        assert!(DlmEvent::decode_from_bytes(&[99]).is_err());
        assert!(DlmRequest::decode_from_bytes(&[]).is_err());
    }
}
