//! Wire messages between display-lock clients and the DLM.

use displaydb_common::{ClientId, DbError, DbResult, Oid, TraceId, TxnId};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// Attribute-level change set: layout indices paired with the new
/// encoded [`Value`](displaydb_schema) bytes. The DLM never decodes the
/// values — it only intersects the indices with registered projections —
/// so this crate stays schema-agnostic.
pub type AttrChanges = Vec<(u16, Vec<u8>)>;

fn encode_changes(changes: &AttrChanges, w: &mut WireWriter) {
    w.put_varint(changes.len() as u64);
    for (attr, bytes) in changes {
        w.put_varint(*attr as u64);
        bytes.encode(w);
    }
}

fn decode_changes(r: &mut WireReader<'_>) -> DbResult<AttrChanges> {
    let n = r.get_varint()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let attr = r.get_varint()? as u16;
        out.push((attr, Vec::<u8>::decode(r)?));
    }
    Ok(out)
}

/// One committed update as reported to the DLM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateInfo {
    /// The updated (or deleted) object.
    pub oid: Oid,
    /// The new encoded object state for eager shipping; `None` when the
    /// protocol is not eager (holders re-read from the server) or the
    /// object was deleted.
    pub payload: Option<Vec<u8>>,
    /// Whether the object was deleted.
    pub deleted: bool,
    /// Attribute-level diff against the pre-commit image, when the
    /// reporter could compute one. `None` means "unknown — assume
    /// everything changed" (creations, recovered resyncs, old
    /// reporters); `Some` lets the DLM suppress or shrink notifications
    /// to holders with projected interest.
    pub changed: Option<AttrChanges>,
    /// End-to-end trace id of the commit this update belongs to
    /// (DESIGN.md § 12); `0` when the committing client was not
    /// tracing. Carried across the wire so receiver-side stages keep
    /// correlating.
    pub trace: TraceId,
}

impl UpdateInfo {
    /// An update without shipped state (post-commit / early protocols).
    pub fn lazy(oid: Oid) -> Self {
        Self {
            oid,
            payload: None,
            deleted: false,
            changed: None,
            trace: 0,
        }
    }

    /// An update with shipped state (eager protocol).
    pub fn eager(oid: Oid, payload: Vec<u8>) -> Self {
        Self {
            oid,
            payload: Some(payload),
            deleted: false,
            changed: None,
            trace: 0,
        }
    }

    /// A deletion.
    pub fn deletion(oid: Oid) -> Self {
        Self {
            oid,
            payload: None,
            deleted: true,
            changed: None,
            trace: 0,
        }
    }

    /// Attach an attribute-level diff (builder style).
    pub fn with_changes(mut self, changed: AttrChanges) -> Self {
        self.changed = Some(changed);
        self
    }

    /// Stamp the originating commit's trace id (builder style).
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }
}

impl Encode for UpdateInfo {
    fn encode(&self, w: &mut WireWriter) {
        self.oid.encode(w);
        self.payload.encode(w);
        self.deleted.encode(w);
        match &self.changed {
            None => w.put_u8(0),
            Some(changes) => {
                w.put_u8(1);
                encode_changes(changes, w);
            }
        }
        w.put_varint(self.trace);
    }
}

impl Decode for UpdateInfo {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(Self {
            oid: Oid::decode(r)?,
            payload: Option::<Vec<u8>>::decode(r)?,
            deleted: bool::decode(r)?,
            changed: match r.get_u8()? {
                0 => None,
                1 => Some(decode_changes(r)?),
                t => return Err(DbError::Protocol(format!("bad changed marker {t}"))),
            },
            trace: r.get_varint()?,
        })
    }
}

/// Client → DLM messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlmRequest {
    /// Identify the connection. Must be first.
    Hello {
        /// The client's server-assigned id.
        client: ClientId,
    },
    /// Acquire display locks. Per § 4.1, lock requests are **not
    /// acknowledged** — they are always granted.
    Lock {
        /// Objects to display-lock.
        oids: Vec<Oid>,
    },
    /// Acquire display locks with a registered attribute projection: the
    /// DLM records which layout indices this client's displays consume
    /// for each object, so commits touching only other attributes are
    /// suppressed and covered commits arrive as attribute deltas.
    LockProjected {
        /// Objects to display-lock.
        oids: Vec<Oid>,
        /// Projected attribute layout indices (sorted, deduped).
        attrs: Vec<u16>,
        /// The client's projection-registry version; echoed in every
        /// [`DlmEvent::Delta`] so the client can detect staleness.
        version: u32,
    },
    /// Release display locks.
    Release {
        /// Objects to release.
        oids: Vec<Oid>,
    },
    /// An updating client reports a commit so holders can be notified
    /// (post-commit notify protocol).
    UpdateCommitted {
        /// The committed updates.
        updates: Vec<UpdateInfo>,
    },
    /// An updating client reports that it acquired exclusive locks (early
    /// notify protocol: displays mark these objects "being updated").
    WriteIntent {
        /// Objects about to be updated.
        oids: Vec<Oid>,
        /// The updating transaction.
        txn: TxnId,
    },
    /// An updating client reports the outcome of an earlier intent.
    Resolution {
        /// Objects previously marked.
        oids: Vec<Oid>,
        /// The updating transaction.
        txn: TxnId,
        /// Whether the transaction committed.
        committed: bool,
    },
    /// Orderly disconnect; all display locks of the client are dropped.
    Bye,
    /// Catch up from the DLM's bounded update log (DESIGN.md § 13): the
    /// DLM streams every logged commit with seqno > `cursor`, filtered
    /// through this client's registered interests, then marks the client
    /// current with a [`DlmEvent::CursorAck`]. If the cursor has been
    /// truncated out of the log, the DLM answers with one
    /// [`DlmEvent::ResyncRequired`] instead — the only remaining path to
    /// a full resync. Sent after reconnect (locks must be re-registered
    /// first so interest filtering sees them), or in response to a
    /// [`DlmEvent::ReplayNeeded`] marker.
    ReplayFrom {
        /// The client's last-applied update-log seqno (0 = from the
        /// beginning of retained history).
        cursor: u64,
        /// The log incarnation the cursor was acked under (DESIGN.md
        /// § 14), echoed from [`DlmEvent::Ready`]. Cursors are only
        /// comparable within one incarnation: a mismatch forces the
        /// resync fallback. 0 means "don't care" — the pre-durable
        /// in-process semantics, where cursor and log always share a
        /// lifetime.
        incarnation: u64,
    },
}

/// DLM → client notifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlmEvent {
    /// An object this client display-locks was updated (post-commit).
    Updated(UpdateInfo),
    /// An object is about to be updated by `txn` (early notify).
    Marked {
        /// The object being updated.
        oid: Oid,
        /// The updating transaction.
        txn: TxnId,
    },
    /// An earlier [`DlmEvent::Marked`] resolved.
    Resolved {
        /// The object.
        oid: Oid,
        /// The updating transaction.
        txn: TxnId,
        /// Whether it committed (if so, an [`DlmEvent::Updated`] for the
        /// same object accompanies or precedes this event).
        committed: bool,
    },
    /// Handshake acknowledgement: the agent registered this client and
    /// will deliver notifications. Sent once, immediately after `Hello`;
    /// lets a (re)connecting client distinguish a live agent from a
    /// channel that merely accepted the connection.
    Ready {
        /// The DLM's update-log *session* incarnation (DESIGN.md § 14):
        /// the namespace any [`DlmEvent::CursorAck`] seqnos belong to.
        /// The durable incarnation when the log spills to storage, a
        /// per-process nonce otherwise — never 0. A resuming client
        /// echoes it in [`DlmRequest::ReplayFrom`]; a change means the
        /// seqno namespace did not survive and cursors from the old
        /// incarnation are void (the agent answers them with a resync,
        /// never a silent partial replay).
        incarnation: u64,
    },
    /// The client's outbox overflowed its high-water mark: the queued
    /// notifications were swept and replaced by this single marker. The
    /// DLC answers by re-reading `oids` (the PR 1 resync machinery),
    /// which restores latest-state-wins without replaying the backlog.
    ResyncRequired {
        /// Every OID that had a swept notification pending.
        oids: Vec<Oid>,
    },
    /// The client has been demoted to resync-only mode after repeated
    /// overflows (slow consumer). Displays render this as staleness;
    /// the mode clears once the outbox drains.
    Lagging,
    /// An object this client display-locks with a registered projection
    /// was updated: only the projected attributes that actually changed
    /// are shipped, as `(layout index, encoded value)` pairs. The client
    /// patches its cached copy in place; a `version` older than its
    /// current projection registration means the delta was computed
    /// against a stale attribute set and the object must be resynced.
    Delta {
        /// The updated object.
        oid: Oid,
        /// Projection-registry version the delta was computed against.
        version: u32,
        /// Changed projected attributes (never empty on the wire — an
        /// empty intersection suppresses the event entirely).
        changed: AttrChanges,
        /// Trace id of the originating commit (`0` = untraced). A
        /// coalesced merge keeps the newest commit's id — latest-wins,
        /// like the payload it describes.
        trace: TraceId,
    },
    /// Several pending events for this client drained from its outbox in
    /// one wire frame. Constructed only at outbox-drain time (never
    /// stored in queues) and flattened immediately on receipt; batches
    /// do not nest.
    Batch(Vec<DlmEvent>),
    /// Cursor advancement: every logged commit with seqno ≤ `seqno` has
    /// been delivered to (or legitimately filtered/coalesced away for)
    /// this client. Emitted by the outbox writer whenever the queue
    /// drains empty, and at the end of a served replay. The client
    /// persists `seqno` as its replay cursor. Monotone non-decreasing;
    /// a regression is tolerated (counted, ignored), never fatal.
    CursorAck {
        /// Highest fully-delivered update-log seqno.
        seqno: u64,
    },
    /// The client's outbox overflowed (or it was demoted as lagging) and
    /// the backlog was dropped in favour of the update log: the client
    /// must send [`DlmRequest::ReplayFrom`] with its cursor to catch up.
    /// Replaces the overflow-`ResyncRequired` sweep when the log is
    /// enabled.
    ReplayNeeded {
        /// The seqno the DLM had delivered through when it swept (the
        /// client's own cursor is authoritative; this is diagnostic).
        from: u64,
    },
    /// [`DlmEvent::CursorAck`] from one shard of a partitioned DLM
    /// (DESIGN.md § 16). Each shard's update log has its own seqno
    /// space, so the client keeps a cursor *vector*; this advances one
    /// entry. Emitted only when the DLM runs more than one shard —
    /// single-shard deployments keep the untagged `CursorAck`.
    ShardCursorAck {
        /// The shard whose seqno space `seqno` belongs to.
        shard: u32,
        /// Highest fully-delivered seqno in that shard's log.
        seqno: u64,
    },
    /// [`DlmEvent::ReplayNeeded`] from one shard of a partitioned DLM:
    /// only that shard's backlog was swept, and only that shard's cursor
    /// needs a `ReplayFrom` catch-up.
    ShardReplayNeeded {
        /// The shard whose backlog was dropped.
        shard: u32,
        /// That shard's delivered-through seqno at sweep time
        /// (diagnostic, as for `ReplayNeeded`).
        from: u64,
    },
}

impl DlmEvent {
    /// The trace id this event carries, if it is a per-update
    /// notification (`Updated`/`Delta`). Control events (`Ready`,
    /// `Lagging`, resync markers) and batches carry none — a batch's
    /// members each carry their own.
    pub fn trace(&self) -> TraceId {
        match self {
            DlmEvent::Updated(u) => u.trace,
            DlmEvent::Delta { trace, .. } => *trace,
            _ => 0,
        }
    }

    /// Record `stage` for every trace id this event carries (batch
    /// members included). One relaxed load per member when tracing is
    /// disabled.
    pub fn record_stage(&self, stage: displaydb_common::trace::Stage) {
        match self {
            DlmEvent::Batch(events) => {
                for e in events {
                    displaydb_common::trace::record(e.trace(), stage);
                }
            }
            e => displaydb_common::trace::record(e.trace(), stage),
        }
    }
}

const REQ_HELLO: u8 = 1;
const REQ_LOCK: u8 = 2;
const REQ_RELEASE: u8 = 3;
const REQ_UPDATE: u8 = 4;
const REQ_INTENT: u8 = 5;
const REQ_RESOLUTION: u8 = 6;
const REQ_BYE: u8 = 7;
const REQ_LOCK_PROJECTED: u8 = 8;
const REQ_REPLAY_FROM: u8 = 9;

impl Encode for DlmRequest {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DlmRequest::Hello { client } => {
                w.put_u8(REQ_HELLO);
                client.encode(w);
            }
            DlmRequest::Lock { oids } => {
                w.put_u8(REQ_LOCK);
                oids.encode(w);
            }
            DlmRequest::LockProjected {
                oids,
                attrs,
                version,
            } => {
                w.put_u8(REQ_LOCK_PROJECTED);
                oids.encode(w);
                w.put_varint(attrs.len() as u64);
                for a in attrs {
                    w.put_varint(*a as u64);
                }
                w.put_varint(*version as u64);
            }
            DlmRequest::Release { oids } => {
                w.put_u8(REQ_RELEASE);
                oids.encode(w);
            }
            DlmRequest::UpdateCommitted { updates } => {
                w.put_u8(REQ_UPDATE);
                w.put_varint(updates.len() as u64);
                for u in updates {
                    u.encode(w);
                }
            }
            DlmRequest::WriteIntent { oids, txn } => {
                w.put_u8(REQ_INTENT);
                oids.encode(w);
                txn.encode(w);
            }
            DlmRequest::Resolution {
                oids,
                txn,
                committed,
            } => {
                w.put_u8(REQ_RESOLUTION);
                oids.encode(w);
                txn.encode(w);
                committed.encode(w);
            }
            DlmRequest::Bye => w.put_u8(REQ_BYE),
            DlmRequest::ReplayFrom {
                cursor,
                incarnation,
            } => {
                w.put_u8(REQ_REPLAY_FROM);
                w.put_varint(*cursor);
                w.put_varint(*incarnation);
            }
        }
    }
}

impl Decode for DlmRequest {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            REQ_HELLO => DlmRequest::Hello {
                client: ClientId::decode(r)?,
            },
            REQ_LOCK => DlmRequest::Lock {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_LOCK_PROJECTED => {
                let oids = Vec::<Oid>::decode(r)?;
                let n = r.get_varint()? as usize;
                let mut attrs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    attrs.push(r.get_varint()? as u16);
                }
                let version = r.get_varint()? as u32;
                DlmRequest::LockProjected {
                    oids,
                    attrs,
                    version,
                }
            }
            REQ_RELEASE => DlmRequest::Release {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_UPDATE => {
                let n = r.get_varint()? as usize;
                let mut updates = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    updates.push(UpdateInfo::decode(r)?);
                }
                DlmRequest::UpdateCommitted { updates }
            }
            REQ_INTENT => DlmRequest::WriteIntent {
                oids: Vec::<Oid>::decode(r)?,
                txn: TxnId::decode(r)?,
            },
            REQ_RESOLUTION => DlmRequest::Resolution {
                oids: Vec::<Oid>::decode(r)?,
                txn: TxnId::decode(r)?,
                committed: bool::decode(r)?,
            },
            REQ_BYE => DlmRequest::Bye,
            REQ_REPLAY_FROM => DlmRequest::ReplayFrom {
                cursor: r.get_varint()?,
                incarnation: r.get_varint()?,
            },
            t => return Err(DbError::Protocol(format!("unknown dlm request tag {t}"))),
        })
    }
}

const EV_UPDATED: u8 = 1;
const EV_MARKED: u8 = 2;
const EV_RESOLVED: u8 = 3;
const EV_READY: u8 = 4;
const EV_RESYNC_REQUIRED: u8 = 5;
const EV_LAGGING: u8 = 6;
const EV_DELTA: u8 = 7;
const EV_BATCH: u8 = 8;
const EV_CURSOR_ACK: u8 = 9;
const EV_REPLAY_NEEDED: u8 = 10;
const EV_SHARD_CURSOR_ACK: u8 = 11;
const EV_SHARD_REPLAY_NEEDED: u8 = 12;

impl Encode for DlmEvent {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DlmEvent::Updated(u) => {
                w.put_u8(EV_UPDATED);
                u.encode(w);
            }
            DlmEvent::Marked { oid, txn } => {
                w.put_u8(EV_MARKED);
                oid.encode(w);
                txn.encode(w);
            }
            DlmEvent::Resolved {
                oid,
                txn,
                committed,
            } => {
                w.put_u8(EV_RESOLVED);
                oid.encode(w);
                txn.encode(w);
                committed.encode(w);
            }
            DlmEvent::Ready { incarnation } => {
                w.put_u8(EV_READY);
                w.put_varint(*incarnation);
            }
            DlmEvent::ResyncRequired { oids } => {
                w.put_u8(EV_RESYNC_REQUIRED);
                oids.encode(w);
            }
            DlmEvent::Lagging => w.put_u8(EV_LAGGING),
            DlmEvent::Delta {
                oid,
                version,
                changed,
                trace,
            } => {
                w.put_u8(EV_DELTA);
                oid.encode(w);
                w.put_varint(*version as u64);
                encode_changes(changed, w);
                w.put_varint(*trace);
            }
            DlmEvent::Batch(events) => {
                w.put_u8(EV_BATCH);
                w.put_varint(events.len() as u64);
                for e in events {
                    e.encode(w);
                }
            }
            DlmEvent::CursorAck { seqno } => {
                w.put_u8(EV_CURSOR_ACK);
                w.put_varint(*seqno);
            }
            DlmEvent::ReplayNeeded { from } => {
                w.put_u8(EV_REPLAY_NEEDED);
                w.put_varint(*from);
            }
            DlmEvent::ShardCursorAck { shard, seqno } => {
                w.put_u8(EV_SHARD_CURSOR_ACK);
                w.put_varint(*shard as u64);
                w.put_varint(*seqno);
            }
            DlmEvent::ShardReplayNeeded { shard, from } => {
                w.put_u8(EV_SHARD_REPLAY_NEEDED);
                w.put_varint(*shard as u64);
                w.put_varint(*from);
            }
        }
    }
}

impl Decode for DlmEvent {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            EV_UPDATED => DlmEvent::Updated(UpdateInfo::decode(r)?),
            EV_MARKED => DlmEvent::Marked {
                oid: Oid::decode(r)?,
                txn: TxnId::decode(r)?,
            },
            EV_RESOLVED => DlmEvent::Resolved {
                oid: Oid::decode(r)?,
                txn: TxnId::decode(r)?,
                committed: bool::decode(r)?,
            },
            EV_READY => DlmEvent::Ready {
                incarnation: r.get_varint()?,
            },
            EV_RESYNC_REQUIRED => DlmEvent::ResyncRequired {
                oids: Vec::<Oid>::decode(r)?,
            },
            EV_LAGGING => DlmEvent::Lagging,
            EV_DELTA => DlmEvent::Delta {
                oid: Oid::decode(r)?,
                version: r.get_varint()? as u32,
                changed: decode_changes(r)?,
                trace: r.get_varint()?,
            },
            EV_BATCH => {
                let n = r.get_varint()? as usize;
                let mut events = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let e = DlmEvent::decode(r)?;
                    if matches!(e, DlmEvent::Batch(_)) {
                        return Err(DbError::Protocol("nested dlm batch".into()));
                    }
                    events.push(e);
                }
                DlmEvent::Batch(events)
            }
            EV_CURSOR_ACK => DlmEvent::CursorAck {
                seqno: r.get_varint()?,
            },
            EV_REPLAY_NEEDED => DlmEvent::ReplayNeeded {
                from: r.get_varint()?,
            },
            EV_SHARD_CURSOR_ACK => DlmEvent::ShardCursorAck {
                shard: r.get_varint()? as u32,
                seqno: r.get_varint()?,
            },
            EV_SHARD_REPLAY_NEEDED => DlmEvent::ShardReplayNeeded {
                shard: r.get_varint()? as u32,
                from: r.get_varint()?,
            },
            t => return Err(DbError::Protocol(format!("unknown dlm event tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(r: DlmRequest) {
        let bytes = r.encode_to_bytes();
        assert_eq!(DlmRequest::decode_from_bytes(&bytes).unwrap(), r);
    }

    fn rt_ev(e: DlmEvent) {
        let bytes = e.encode_to_bytes();
        assert_eq!(DlmEvent::decode_from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn request_roundtrips() {
        rt_req(DlmRequest::Hello {
            client: ClientId::new(9),
        });
        rt_req(DlmRequest::Lock {
            oids: vec![Oid::new(1), Oid::new(2)],
        });
        rt_req(DlmRequest::Release { oids: vec![] });
        rt_req(DlmRequest::UpdateCommitted {
            updates: vec![
                UpdateInfo::lazy(Oid::new(1)),
                UpdateInfo::eager(Oid::new(2), vec![1, 2, 3]),
                UpdateInfo::deletion(Oid::new(3)),
            ],
        });
        rt_req(DlmRequest::WriteIntent {
            oids: vec![Oid::new(5)],
            txn: TxnId::new(11),
        });
        rt_req(DlmRequest::Resolution {
            oids: vec![Oid::new(5)],
            txn: TxnId::new(11),
            committed: false,
        });
        rt_req(DlmRequest::Bye);
        rt_req(DlmRequest::ReplayFrom {
            cursor: 0,
            incarnation: 0,
        });
        rt_req(DlmRequest::ReplayFrom {
            cursor: u64::MAX,
            incarnation: u64::MAX,
        });
    }

    #[test]
    fn event_roundtrips() {
        rt_ev(DlmEvent::Updated(UpdateInfo::eager(Oid::new(4), vec![9])));
        rt_ev(DlmEvent::Marked {
            oid: Oid::new(4),
            txn: TxnId::new(2),
        });
        rt_ev(DlmEvent::Resolved {
            oid: Oid::new(4),
            txn: TxnId::new(2),
            committed: true,
        });
        rt_ev(DlmEvent::Ready { incarnation: 0 });
        rt_ev(DlmEvent::Ready {
            incarnation: u64::MAX,
        });
        rt_ev(DlmEvent::ResyncRequired {
            oids: vec![Oid::new(7), Oid::new(8)],
        });
        rt_ev(DlmEvent::ResyncRequired { oids: vec![] });
        rt_ev(DlmEvent::Lagging);
        rt_ev(DlmEvent::CursorAck { seqno: 0 });
        rt_ev(DlmEvent::CursorAck { seqno: u64::MAX });
        rt_ev(DlmEvent::ReplayNeeded { from: 42 });
        rt_ev(DlmEvent::ShardCursorAck { shard: 0, seqno: 0 });
        rt_ev(DlmEvent::ShardCursorAck {
            shard: u32::MAX,
            seqno: u64::MAX,
        });
        rt_ev(DlmEvent::ShardReplayNeeded { shard: 3, from: 42 });
    }

    #[test]
    fn junk_rejected() {
        assert!(DlmRequest::decode_from_bytes(&[99]).is_err());
        assert!(DlmEvent::decode_from_bytes(&[99]).is_err());
        assert!(DlmRequest::decode_from_bytes(&[]).is_err());
    }

    #[test]
    fn projected_lock_roundtrips() {
        rt_req(DlmRequest::LockProjected {
            oids: vec![Oid::new(1), Oid::new(2)],
            attrs: vec![0, 3, 9],
            version: 7,
        });
        rt_req(DlmRequest::LockProjected {
            oids: vec![Oid::new(1)],
            attrs: vec![],
            version: 0,
        });
    }

    #[test]
    fn update_info_with_changes_roundtrips() {
        rt_req(DlmRequest::UpdateCommitted {
            updates: vec![
                UpdateInfo::eager(Oid::new(2), vec![1, 2, 3])
                    .with_changes(vec![(1, vec![9, 9]), (4, vec![])]),
                UpdateInfo::lazy(Oid::new(3)).with_changes(vec![]),
            ],
        });
    }

    #[test]
    fn delta_roundtrips() {
        rt_ev(DlmEvent::Delta {
            oid: Oid::new(11),
            version: 3,
            changed: vec![(1, vec![0xAA, 0xBB]), (7, vec![])],
            trace: 0,
        });
        rt_ev(DlmEvent::Delta {
            oid: Oid::new(11),
            version: 3,
            changed: vec![(1, vec![0xAA])],
            trace: u64::MAX, // full-width varint survives the wire
        });
    }

    #[test]
    fn trace_ids_survive_the_wire() {
        let updated = DlmEvent::Updated(UpdateInfo::lazy(Oid::new(1)).with_trace(77));
        let bytes = updated.encode_to_bytes();
        assert_eq!(DlmEvent::decode_from_bytes(&bytes).unwrap().trace(), 77);
        rt_req(DlmRequest::UpdateCommitted {
            updates: vec![UpdateInfo::eager(Oid::new(2), vec![1])
                .with_changes(vec![(1, vec![9])])
                .with_trace(12345)],
        });
        // Control events carry no trace.
        assert_eq!(DlmEvent::Ready { incarnation: 7 }.trace(), 0);
        assert_eq!(DlmEvent::Lagging.trace(), 0);
    }

    #[test]
    fn batch_roundtrips_and_rejects_nesting() {
        rt_ev(DlmEvent::Batch(vec![
            DlmEvent::Updated(UpdateInfo::eager(Oid::new(4), vec![9])),
            DlmEvent::Delta {
                oid: Oid::new(5),
                version: 1,
                changed: vec![(0, vec![1])],
                trace: 9,
            },
            DlmEvent::Lagging,
        ]));
        rt_ev(DlmEvent::Batch(vec![]));

        let nested = {
            let mut w = WireWriter::new();
            w.put_u8(8); // EV_BATCH
            w.put_varint(1);
            w.put_u8(8); // nested EV_BATCH
            w.put_varint(0);
            w.finish()
        };
        assert!(DlmEvent::decode_from_bytes(&nested).is_err());
    }
}
