//! The Display Lock Manager (DLM).
//!
//! Display locks (paper § 3.3) are non-restrictive shared locks: holding
//! one never blocks an update, but guarantees that the holder is notified
//! whenever the locked object changes. This crate implements the manager
//! side:
//!
//! * [`proto`] — wire messages between clients and the DLM,
//! * [`core`] — the transport-agnostic lock table and notification
//!   fan-out, with all three protocol variants:
//!   * **post-commit notify** — holders learn about updates after commit
//!     and re-read the objects (3 messages per refresh);
//!   * **early notify** — holders are additionally told when an exclusive
//!     lock is *acquired*, so displays can mark objects "being updated"
//!     and users avoid conflicting edits;
//!   * **eager shipping** — the § 4.3 extension: the new object state
//!     rides inside the notification, eliminating the read round-trip
//!     (1 message per refresh instead of 3);
//! * [`agent`] — the paper's deployment (§ 4.1): the DLM as a standalone
//!   service next to an unmodifiable database server, with clients
//!   connecting over any [`displaydb_wire::Channel`].
//!
//! The integrated deployment (DLM inside the server's lock manager) is
//! assembled in `displaydb-server` from the same [`core::DlmCore`].

pub mod agent;
pub mod core;
pub mod log;
pub mod outbox;
pub mod proto;
pub mod shard;

pub use crate::core::{DlmConfig, DlmCore, DlmStats, EventSink, NotifyProtocol, ReplayOutcome};
pub use crate::log::{DurableRecovery, LogEntry, ReplaySlice, UpdateLog};
pub use agent::{DlmAgent, DlmAgentConnection};
pub use outbox::{CoalescingQueue, OutboxSink, Pushed};
pub use proto::{AttrChanges, DlmEvent, DlmRequest, UpdateInfo};
pub use shard::{ShardMap, ShardStats, ShardTagSink, ShardedDlm};
