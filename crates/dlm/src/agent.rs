//! The DLM as a standalone agent service.
//!
//! This mirrors the paper's actual deployment (§ 4.1): the commercial
//! database server could not be modified, so the Display Lock Manager ran
//! as a separate application beside it. Clients open a dedicated
//! connection to the agent; display-lock requests are fire-and-forget
//! (never acknowledged), and notifications flow back over the same
//! connection.

use crate::core::{DlmCore, EventSink};
use crate::outbox::OutboxSink;
use crate::proto::{DlmEvent, DlmRequest, UpdateInfo};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_wire::{Channel, Decode, Encode, Listener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct ChannelSink {
    channel: Arc<dyn Channel>,
    /// Shared byte counter so experiments can measure wire traffic.
    bytes: displaydb_common::metrics::Counter,
}

impl EventSink for ChannelSink {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        let frame = event.encode_to_bytes();
        self.bytes.add(frame.len() as u64);
        event.record_stage(displaydb_common::trace::Stage::WireSend);
        self.channel.send(frame)
    }

    fn close(&self) {
        // Unblocks an outbox writer stuck in a stalled send.
        self.channel.close();
    }
}

/// A running DLM agent accepting connections on its own listener.
pub struct DlmAgent {
    core: Arc<DlmCore>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sessions: Arc<OrderedMutex<Vec<Arc<dyn Channel>>>>,
}

impl DlmAgent {
    /// Start the agent over `listener`.
    pub fn spawn(core: Arc<DlmCore>, listener: Box<dyn Listener>) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions: Arc<OrderedMutex<Vec<Arc<dyn Channel>>>> =
            Arc::new(OrderedMutex::new(ranks::DLM_AGENT_SESSIONS, Vec::new()));
        let accept_core = Arc::clone(&core);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_sessions = Arc::clone(&sessions);
        let accept_thread = std::thread::Builder::new()
            .name("dlm-accept".into())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept_timeout(Duration::from_millis(100)) {
                        Ok(channel) => {
                            let core = Arc::clone(&accept_core);
                            let channel: Arc<dyn Channel> = Arc::from(channel);
                            accept_sessions.lock().push(Arc::clone(&channel));
                            std::thread::Builder::new()
                                .name("dlm-session".into())
                                .spawn(move || session_loop(core, channel))
                                .expect("spawn dlm session");
                        }
                        Err(DbError::Timeout(_)) => continue,
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn dlm accept thread");
        Self {
            core,
            shutdown,
            accept_thread: Some(accept_thread),
            sessions,
        }
    }

    /// The shared DLM core (for inspecting stats in tests/benches).
    pub fn core(&self) -> &Arc<DlmCore> {
        &self.core
    }

    /// Stop the agent: no new connections, and every live session channel
    /// is closed (clients observe a dead DLM).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Take the list under the lock, close outside it: a close can
        // block on a wedged socket, and the accept loop must never find
        // the session list held across that stall.
        let channels = std::mem::take(&mut *self.sessions.lock_or_recover());
        for channel in channels {
            channel.close();
        }
    }
}

impl Drop for DlmAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn session_loop(core: Arc<DlmCore>, channel: Arc<dyn Channel>) {
    // First frame must identify the client.
    let client = match channel
        .recv()
        .ok()
        .and_then(|f| DlmRequest::decode_from_bytes(&f).ok())
    {
        Some(DlmRequest::Hello { client }) => client,
        _ => return,
    };
    // Ack the handshake *before* registering the sink, so `Ready` is
    // guaranteed to be the first frame the client reads — no notification
    // can be queued ahead of it. The ack names the update-log session
    // incarnation — the durable incarnation when the log spills, a
    // process-local nonce otherwise, never 0 — so a resuming client
    // knows whether its cursor's seqno namespace survived (DESIGN.md
    // § 14). An agent without a durable log gets a fresh nonce on every
    // restart, which is exactly right: its seqno space restarted too.
    let incarnation = core.update_log().session_incarnation();
    if channel
        .send(DlmEvent::Ready { incarnation }.encode_to_bytes())
        .is_err()
    {
        channel.close();
        return;
    }
    // The wire sink is wrapped in a bounded outbox (DESIGN.md § 9): the
    // fan-out loop only ever enqueues, and the outbox's writer thread
    // absorbs a slow or stalled client connection.
    // With a durable log behind the DLM, every cursor the outbox acks is
    // spilled as a frontier record so the client can resume past a
    // restart.
    let recorder: Option<Arc<dyn Fn(u64) + Send + Sync>> = if core.update_log().is_durable() {
        let rec_core = Arc::clone(&core);
        Some(Arc::new(move |cursor| {
            let _ = rec_core.update_log().record_frontier(client, cursor);
        }))
    } else {
        None
    };
    core.register_client(
        client,
        OutboxSink::wrap_with_recorder(
            Arc::new(ChannelSink {
                channel: Arc::clone(&channel),
                bytes: core.stats().overload.notify_bytes.clone(),
            }),
            core.config().overload,
            core.stats().overload.clone(),
            core.update_log().enabled(),
            recorder,
        ),
    );
    while let Ok(frame) = channel.recv() {
        let request = match DlmRequest::decode_from_bytes(&frame) {
            Ok(r) => r,
            Err(_) => break,
        };
        match request {
            DlmRequest::Hello { .. } => break, // protocol violation
            DlmRequest::Lock { oids } => core.lock(client, &oids),
            DlmRequest::LockProjected {
                oids,
                attrs,
                version,
            } => core.lock_projected(client, &oids, &attrs, version),
            DlmRequest::Release { oids } => core.release(client, &oids),
            DlmRequest::UpdateCommitted { updates } => {
                core.notify_committed(Some(client), &updates)
            }
            DlmRequest::WriteIntent { oids, txn } => core.notify_intent(Some(client), &oids, txn),
            DlmRequest::Resolution {
                oids,
                txn,
                committed,
            } => core.notify_resolution(Some(client), &oids, txn, committed),
            DlmRequest::ReplayFrom {
                cursor,
                incarnation,
            } => {
                // Fire-and-forget like every other agent request: the
                // outcome arrives as replayed events (or a
                // ResyncRequired fallback) on the notification stream.
                // A cursor acked under a different log incarnation is
                // meaningless here — force the truncated path so the
                // client resyncs. Strict equality against the *session*
                // incarnation: an absent durable incarnation is a
                // per-process nonce, never 0, so a client that lost (or
                // never had) the incarnation its cursor was acked under
                // can no longer slip a stale cursor past admission by
                // sending 0 — 0 matches nothing.
                if incarnation != core.update_log().session_incarnation() {
                    core.replay_for(client, u64::MAX);
                } else {
                    core.replay_for(client, cursor);
                }
            }
            DlmRequest::Bye => break,
        }
    }
    core.unregister_client(client);
    channel.close();
}

/// Client-side handle to an agent connection. Owned by the Display Lock
/// Client in `displaydb-client`.
pub struct DlmAgentConnection {
    channel: Arc<dyn Channel>,
    reader: Option<JoinHandle<()>>,
    /// Set by the reader thread when the agent side goes away, so that
    /// subsequent fire-and-forget sends fail fast instead of writing into
    /// the void.
    dead: Arc<AtomicBool>,
    death_watchers: Arc<OrderedMutex<Vec<crossbeam::channel::Sender<()>>>>,
    /// Session-incarnation id from the agent's handshake `Ready`
    /// (never 0: the agent mints a per-process nonce when it has no
    /// durable update log).
    agent_incarnation: u64,
}

impl DlmAgentConnection {
    /// How long `connect` waits for the agent's [`DlmEvent::Ready`] ack.
    pub const READY_TIMEOUT: Duration = Duration::from_secs(5);

    /// Connect over `channel`, identifying as `client`. Incoming events
    /// are passed to `on_event` from a dedicated reader thread.
    ///
    /// Blocks until the agent acknowledges the handshake with
    /// [`DlmEvent::Ready`] (or [`READY_TIMEOUT`] elapses) — transports
    /// may accept a connection without a live agent behind it, and a
    /// reconnecting supervisor must not declare victory against one.
    ///
    /// [`READY_TIMEOUT`]: DlmAgentConnection::READY_TIMEOUT
    pub fn connect(
        channel: Box<dyn Channel>,
        client: ClientId,
        on_event: impl Fn(DlmEvent) + Send + 'static,
    ) -> DbResult<Self> {
        let channel: Arc<dyn Channel> = Arc::from(channel);
        channel.send(DlmRequest::Hello { client }.encode_to_bytes())?;
        let ack = channel.recv_timeout(Self::READY_TIMEOUT)?;
        let agent_incarnation = match DlmEvent::decode_from_bytes(&ack)? {
            DlmEvent::Ready { incarnation } => incarnation,
            _ => {
                channel.close();
                return Err(DbError::Protocol("dlm agent did not ack handshake".into()));
            }
        };
        let dead = Arc::new(AtomicBool::new(false));
        let death_watchers: Arc<OrderedMutex<Vec<crossbeam::channel::Sender<()>>>> =
            Arc::new(OrderedMutex::new(ranks::AGENT_DEATH_WATCHERS, Vec::new()));
        let read_channel = Arc::clone(&channel);
        let read_dead = Arc::clone(&dead);
        let read_watchers = Arc::clone(&death_watchers);
        let reader = std::thread::Builder::new()
            .name("dlm-events".into())
            .spawn(move || {
                while let Ok(frame) = read_channel.recv() {
                    match DlmEvent::decode_from_bytes(&frame) {
                        // A stray Ready is connection plumbing, not a
                        // notification.
                        Ok(DlmEvent::Ready { .. }) => continue,
                        // Batches exist only on the wire: unwrap so
                        // consumers see a flat event stream.
                        Ok(DlmEvent::Batch(events)) => {
                            for event in events {
                                event.record_stage(displaydb_common::trace::Stage::WireRecv);
                                on_event(event);
                            }
                        }
                        Ok(event) => {
                            event.record_stage(displaydb_common::trace::Stage::WireRecv);
                            on_event(event);
                        }
                        Err(_) => break,
                    }
                }
                read_dead.store(true, Ordering::Release);
                // Take the watcher list before firing: the notifier
                // sends must not run under the list's lock.
                let watchers = std::mem::take(&mut *read_watchers.lock_or_recover());
                for tx in watchers {
                    let _ = tx.send(());
                }
            })
            .expect("spawn dlm event reader");
        Ok(Self {
            channel,
            reader: Some(reader),
            dead,
            death_watchers,
            agent_incarnation,
        })
    }

    /// The update-log session incarnation the agent announced in its
    /// handshake `Ready` — never 0 (a non-durable agent announces a
    /// per-process nonce, so a restarted agent is always detectable).
    /// Cursors are only worth persisting together with this value.
    pub fn agent_incarnation(&self) -> u64 {
        self.agent_incarnation
    }

    /// Whether the agent side of the connection has gone away.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Register a notifier fired (once) when the agent connection dies.
    /// Fires immediately if it is already dead, so registration cannot
    /// race with the reader's exit.
    pub fn on_death(&self, tx: crossbeam::channel::Sender<()>) {
        if self.is_dead() {
            let _ = tx.send(());
            return;
        }
        self.death_watchers.lock_or_recover().push(tx);
        if self.is_dead() {
            let watchers = std::mem::take(&mut *self.death_watchers.lock_or_recover());
            for tx in watchers {
                let _ = tx.send(());
            }
        }
    }

    fn send(&self, request: DlmRequest) -> DbResult<()> {
        if self.is_dead() {
            return Err(DbError::Disconnected);
        }
        self.channel.send(request.encode_to_bytes())
    }

    /// Request display locks (fire-and-forget; always granted).
    pub fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.send(DlmRequest::Lock { oids })
    }

    /// Request display locks with a registered attribute projection
    /// (fire-and-forget; always granted).
    pub fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
        self.send(DlmRequest::LockProjected {
            oids,
            attrs,
            version,
        })
    }

    /// Release display locks.
    pub fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.send(DlmRequest::Release { oids })
    }

    /// Report a committed update so holders get notified.
    pub fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()> {
        self.send(DlmRequest::UpdateCommitted { updates })
    }

    /// Report an update intention (early-notify protocol).
    pub fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()> {
        self.send(DlmRequest::WriteIntent { oids, txn })
    }

    /// Ask the agent to replay every logged update after `cursor` that
    /// intersects this client's registered interests (fire-and-forget;
    /// the suffix — or a `ResyncRequired` fallback if the cursor was
    /// truncated — arrives on the notification stream).
    /// `incarnation` is the log incarnation the cursor was acked under
    /// (pass the persisted value for a resume, or 0 for a cursor
    /// obtained on *this* connection — 0 is substituted with the
    /// handshake's [`Self::agent_incarnation`] before it hits the wire,
    /// because the agent admits replay only on an exact incarnation
    /// match and deliberately has no wildcard).
    pub fn replay_from(&self, cursor: u64, incarnation: u64) -> DbResult<()> {
        let incarnation = if incarnation == 0 {
            self.agent_incarnation
        } else {
            incarnation
        };
        self.send(DlmRequest::ReplayFrom {
            cursor,
            incarnation,
        })
    }

    /// Report how an earlier intention resolved.
    pub fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()> {
        self.send(DlmRequest::Resolution {
            oids,
            txn,
            committed,
        })
    }

    /// Orderly disconnect.
    pub fn bye(self) {
        let _ = self.send(DlmRequest::Bye);
    }
}

impl Drop for DlmAgentConnection {
    fn drop(&mut self) {
        self.channel.close();
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{DlmConfig, NotifyProtocol};
    use crossbeam::channel::unbounded;
    use displaydb_wire::LocalHub;
    use std::time::Duration;

    fn agent(config: DlmConfig) -> (DlmAgent, LocalHub) {
        let hub = LocalHub::new();
        let agent = DlmAgent::spawn(Arc::new(DlmCore::new(config)), Box::new(hub.clone()));
        (agent, hub)
    }

    fn connect(
        hub: &LocalHub,
        client: u64,
    ) -> (DlmAgentConnection, crossbeam::channel::Receiver<DlmEvent>) {
        let (tx, rx) = unbounded();
        let conn = DlmAgentConnection::connect(
            Box::new(hub.connect().unwrap()),
            ClientId::new(client),
            move |e| {
                let _ = tx.send(e);
            },
        )
        .unwrap();
        (conn, rx)
    }

    #[test]
    fn end_to_end_post_commit_notification() {
        let (_agent, hub) = agent(DlmConfig::default());
        let (viewer, viewer_rx) = connect(&hub, 1);
        let (updater, _updater_rx) = connect(&hub, 2);

        viewer.lock(vec![Oid::new(7)]).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // lock is fire-and-forget
        updater
            .report_commit(vec![UpdateInfo::lazy(Oid::new(7))])
            .unwrap();

        let event = viewer_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(event, DlmEvent::Updated(UpdateInfo::lazy(Oid::new(7))));
    }

    #[test]
    fn early_notify_end_to_end() {
        let (_agent, hub) = agent(DlmConfig {
            protocol: NotifyProtocol::EarlyNotify,
            ..DlmConfig::default()
        });
        let (viewer, viewer_rx) = connect(&hub, 1);
        let (updater, _rx2) = connect(&hub, 2);

        viewer.lock(vec![Oid::new(3)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let txn = TxnId::new(9);
        updater.report_intent(vec![Oid::new(3)], txn).unwrap();
        assert_eq!(
            viewer_rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            DlmEvent::Marked {
                oid: Oid::new(3),
                txn
            }
        );
        updater
            .report_resolution(vec![Oid::new(3)], txn, false)
            .unwrap();
        assert_eq!(
            viewer_rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            DlmEvent::Resolved {
                oid: Oid::new(3),
                txn,
                committed: false
            }
        );
    }

    #[test]
    fn release_stops_notifications() {
        let (agent, hub) = agent(DlmConfig::default());
        let (viewer, viewer_rx) = connect(&hub, 1);
        let (updater, _rx2) = connect(&hub, 2);

        viewer.lock(vec![Oid::new(5)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        viewer.release(vec![Oid::new(5)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        updater
            .report_commit(vec![UpdateInfo::lazy(Oid::new(5))])
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(viewer_rx.try_recv().is_err());
        assert_eq!(agent.core().stats().notifications.get(), 0);
    }

    #[test]
    fn disconnect_unregisters_client() {
        let (agent, hub) = agent(DlmConfig::default());
        {
            let (viewer, _rx) = connect(&hub, 1);
            viewer.lock(vec![Oid::new(1)]).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(agent.core().locked_objects(), 1);
            viewer.bye();
        }
        // Wait for the session loop to process the disconnect.
        for _ in 0..50 {
            if agent.core().locked_objects() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(agent.core().locked_objects(), 0);
    }

    #[test]
    fn ready_incarnation_is_never_zero() {
        // Even without a durable log the handshake announces a nonzero
        // session incarnation: 0 used to mean "no durable log" AND
        // "skip the replay-admission check", which let stale cursors
        // from a previous agent process replay silently.
        let (_agent, hub) = agent(DlmConfig::default());
        let (conn, _rx) = connect(&hub, 1);
        assert_ne!(conn.agent_incarnation(), 0);
    }

    #[test]
    fn live_replay_with_zero_incarnation_still_replays() {
        // A cursor obtained on this connection replays fine when the
        // caller passes the 0 placeholder — the connection substitutes
        // its handshake incarnation, which matches by construction.
        let (_agent, hub) = agent(DlmConfig::default());
        let (viewer, viewer_rx) = connect(&hub, 1);
        let (updater, _urx) = connect(&hub, 2);
        viewer.lock(vec![Oid::new(7)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        updater
            .report_commit(vec![UpdateInfo::lazy(Oid::new(7))])
            .unwrap();
        // Live delivery first (plus a cursor ack once the outbox
        // drains), then the replayed copy after the replay request.
        let live = viewer_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(live, DlmEvent::Updated(_)));
        viewer.replay_from(0, 0).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let e = viewer_rx
                .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
                .expect("replayed update never arrived");
            match e {
                DlmEvent::Updated(u) => {
                    assert_eq!(u.oid, Oid::new(7));
                    break;
                }
                DlmEvent::ResyncRequired { .. } => {
                    panic!("live replay under matching incarnation must not resync")
                }
                _ => continue,
            }
        }
    }

    #[test]
    fn stale_incarnation_after_agent_restart_forces_resync() {
        // A client that outlives a non-durable agent restart holds a
        // cursor from the dead seqno space. The restarted agent's
        // session incarnation differs, so replay admission must answer
        // with a resync — never a silent "nothing past your cursor".
        let (agent1, hub1) = agent(DlmConfig::default());
        let old_incarnation = {
            let (viewer, viewer_rx) = connect(&hub1, 1);
            let (updater, _urx) = connect(&hub1, 2);
            viewer.lock(vec![Oid::new(7)]).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            updater
                .report_commit(vec![UpdateInfo::lazy(Oid::new(7))])
                .unwrap();
            let e = viewer_rx.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(matches!(e, DlmEvent::Updated(_)));
            viewer.agent_incarnation()
        };
        drop(agent1);

        // "Restart": a fresh agent process with an empty in-memory log.
        let (_agent2, hub2) = agent(DlmConfig::default());
        let (viewer, viewer_rx) = connect(&hub2, 1);
        assert_ne!(viewer.agent_incarnation(), old_incarnation);
        viewer.lock(vec![Oid::new(7)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        viewer.replay_from(1, old_incarnation).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let e = viewer_rx
                .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
                .expect("resync marker never arrived");
            match e {
                DlmEvent::ResyncRequired { oids } => {
                    assert_eq!(oids, vec![Oid::new(7)]);
                    break;
                }
                DlmEvent::Updated(_) => panic!("stale cursor must not replay silently"),
                _ => continue,
            }
        }
    }

    #[test]
    fn many_clients_fan_out() {
        let (agent, hub) = agent(DlmConfig::default());
        let mut viewers = Vec::new();
        for i in 0..5 {
            let (conn, rx) = connect(&hub, i);
            conn.lock(vec![Oid::new(42)]).unwrap();
            viewers.push((conn, rx));
        }
        std::thread::sleep(Duration::from_millis(100));
        let (updater, _rx) = connect(&hub, 99);
        updater
            .report_commit(vec![UpdateInfo::lazy(Oid::new(42))])
            .unwrap();
        for (_, rx) in &viewers {
            let e = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(matches!(e, DlmEvent::Updated(_)));
        }
        assert_eq!(agent.core().stats().notifications.get(), 5);
    }
}
