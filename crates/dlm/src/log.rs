//! The bounded, replayable update log (DESIGN.md § 13).
//!
//! Every committed notification batch the DLM fans out is first appended
//! here with a monotonic sequence number. The log is a ring bounded both
//! by entry count and by estimated bytes; eviction is strictly from the
//! front, so the retained entries are always a contiguous suffix of
//! history. A client that reconnects (or whose outbox overflowed, or
//! that was demoted as lagging) catches up by replaying every entry past
//! its **cursor** — the last seqno it fully applied — filtered through
//! its registered interests. Only when the cursor has been evicted does
//! recovery degrade to the legacy full `ResyncRequired`.
//!
//! The log stores the *reported* updates, not the per-holder events:
//! replay re-runs the same interest intersection the live fan-out path
//! uses, against the client's **current** registrations. That is exactly
//! the right semantics for a reconnecting client — it re-registered its
//! display locks before replaying, so the filter reflects what it wants
//! to see now, and a client that never registered an OID can never have
//! its updates leaked to it by replay.

use crate::proto::UpdateInfo;
use displaydb_common::metrics::UpdateLogStats;
use displaydb_common::overload::UpdateLogConfig;
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::ClientId;
use std::collections::VecDeque;

/// One appended commit batch.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// Monotonic sequence number (1-based; 0 means "before history").
    pub seqno: u64,
    /// The client whose transaction performed the updates (replay honors
    /// the same originator-suppression rule as the live path).
    pub origin: Option<ClientId>,
    /// The reported updates, exactly as handed to `notify_committed`.
    pub updates: Vec<UpdateInfo>,
    /// Estimated retained bytes for the byte cap.
    pub bytes: usize,
}

fn estimate_bytes(updates: &[UpdateInfo]) -> usize {
    updates
        .iter()
        .map(|u| {
            24 + u.payload.as_ref().map_or(0, Vec::len)
                + u.changed
                    .as_ref()
                    .map_or(0, |c| c.iter().map(|(_, v)| v.len() + 4).sum())
        })
        .sum()
}

struct LogInner {
    /// Retained entries; seqnos are contiguous (`front.seqno ..= head`).
    entries: VecDeque<LogEntry>,
    /// Seqno the next appended entry will receive.
    next_seqno: u64,
    /// Sum of `bytes` across retained entries.
    bytes: usize,
}

/// What a replay request found in the log.
#[derive(Debug)]
pub enum ReplaySlice {
    /// The cursor is still retained: these entries (possibly none, when
    /// the client is already current) cover `(cursor, head]`.
    Events {
        /// Cloned suffix entries, ascending by seqno.
        entries: Vec<LogEntry>,
        /// The log head at snapshot time.
        head: u64,
    },
    /// The cursor has been evicted (or is from another log incarnation):
    /// the client must fall back to a full resync.
    Truncated {
        /// The log head at snapshot time.
        head: u64,
    },
}

/// The DLM's bounded replayable update log.
pub struct UpdateLog {
    inner: OrderedMutex<LogInner>,
    config: UpdateLogConfig,
    stats: UpdateLogStats,
}

impl std::fmt::Debug for UpdateLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateLog")
            .field("config", &self.config)
            .finish()
    }
}

impl UpdateLog {
    /// Create an empty log; `stats` is shared with the owning DLM.
    pub fn new(config: UpdateLogConfig, stats: UpdateLogStats) -> Self {
        Self {
            inner: OrderedMutex::new(
                ranks::DLM_UPDATE_LOG,
                LogInner {
                    entries: VecDeque::new(),
                    next_seqno: 1,
                    bytes: 0,
                },
            ),
            config,
            stats,
        }
    }

    /// Whether replay is available at all (a zero-sized log disables the
    /// mechanism and recovery uses the legacy resync paths).
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Append one committed batch and return its seqno. Returns `None`
    /// when the log is disabled or the batch is empty (nothing to
    /// replay); the seqno space does not advance in either case.
    pub fn append(&self, origin: Option<ClientId>, updates: &[UpdateInfo]) -> Option<u64> {
        if !self.enabled() || updates.is_empty() {
            return None;
        }
        let bytes = estimate_bytes(updates);
        let mut inner = self.inner.lock();
        let seqno = inner.next_seqno;
        inner.next_seqno += 1;
        inner.entries.push_back(LogEntry {
            seqno,
            origin,
            updates: updates.to_vec(),
            bytes,
        });
        inner.bytes += bytes;
        self.stats.appended.inc();
        // Evict from the front until both caps hold again. A single
        // oversized entry may be evicted immediately after insertion —
        // the seqno still advances, so its absence is a truncation the
        // replay path detects, never a silent gap.
        while inner.entries.len() > self.config.max_entries
            || (inner.bytes > self.config.max_bytes && !inner.entries.is_empty())
        {
            if let Some(evicted) = inner.entries.pop_front() {
                inner.bytes -= evicted.bytes;
                self.stats.evicted.inc();
            }
        }
        self.stats.log_entries.set(inner.entries.len() as u64);
        self.stats.log_bytes.set(inner.bytes as u64);
        Some(seqno)
    }

    /// The highest seqno ever appended (0 when nothing was logged yet).
    pub fn head(&self) -> u64 {
        self.inner.lock().next_seqno - 1
    }

    /// Whether a client at `cursor` can catch up by replay: every seqno
    /// in `(cursor, head]` is retained and the cursor is not from the
    /// future (a restarted DLM has a fresh seqno space — a stale cursor
    /// past the head must fall back to resync, not silently match).
    pub fn contains(&self, cursor: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let inner = self.inner.lock();
        let head = inner.next_seqno - 1;
        let first = inner.entries.front().map_or(inner.next_seqno, |e| e.seqno);
        cursor + 1 >= first && cursor <= head
    }

    /// Snapshot the suffix past `cursor` for replay.
    pub fn replay_from(&self, cursor: u64) -> ReplaySlice {
        let inner = self.inner.lock();
        let head = inner.next_seqno - 1;
        let first = inner.entries.front().map_or(inner.next_seqno, |e| e.seqno);
        if !self.enabled() || cursor + 1 < first || cursor > head {
            return ReplaySlice::Truncated { head };
        }
        let entries: Vec<LogEntry> = inner
            .entries
            .iter()
            .filter(|e| e.seqno > cursor)
            .cloned()
            .collect();
        ReplaySlice::Events { entries, head }
    }

    /// Evict every retained entry without disturbing the seqno space.
    /// Forces the next replay of any behind-head cursor onto the
    /// `ResyncRequired` fallback — the truncation fault injection used by
    /// the R4 experiment and the recovery tests.
    pub fn truncate_all(&self) {
        let mut inner = self.inner.lock();
        let evicted = inner.entries.len() as u64;
        inner.entries.clear();
        inner.bytes = 0;
        self.stats.evicted.add(evicted);
        self.stats.log_entries.set(0);
        self.stats.log_bytes.set(0);
    }

    /// Retained entry count (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log's stats handle.
    pub fn stats(&self) -> &UpdateLogStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::Oid;

    fn log(max_entries: usize, max_bytes: usize) -> UpdateLog {
        UpdateLog::new(
            UpdateLogConfig {
                max_entries,
                max_bytes,
            },
            UpdateLogStats::new(),
        )
    }

    fn upd(oid: u64) -> Vec<UpdateInfo> {
        vec![UpdateInfo::lazy(Oid::new(oid))]
    }

    #[test]
    fn seqnos_are_monotonic_and_contiguous() {
        let l = log(8, 1 << 20);
        assert_eq!(l.append(None, &upd(1)), Some(1));
        assert_eq!(l.append(None, &upd(2)), Some(2));
        assert_eq!(l.append(None, &upd(3)), Some(3));
        assert_eq!(l.head(), 3);
        match l.replay_from(1) {
            ReplaySlice::Events { entries, head } => {
                assert_eq!(head, 3);
                let seqs: Vec<u64> = entries.iter().map(|e| e.seqno).collect();
                assert_eq!(seqs, vec![2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn current_cursor_replays_empty() {
        let l = log(8, 1 << 20);
        l.append(None, &upd(1));
        match l.replay_from(1) {
            ReplaySlice::Events { entries, head } => {
                assert!(entries.is_empty());
                assert_eq!(head, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A fresh empty log is replayable from cursor 0.
        let fresh = log(8, 1 << 20);
        assert!(fresh.contains(0));
        assert!(matches!(
            fresh.replay_from(0),
            ReplaySlice::Events { head: 0, .. }
        ));
    }

    #[test]
    fn count_cap_evicts_from_front() {
        let l = log(3, 1 << 20);
        for i in 1..=5 {
            l.append(None, &upd(i));
        }
        assert_eq!(l.len(), 3);
        assert!(!l.contains(1), "seqnos 1-2 evicted");
        assert!(l.contains(2)); // (2, 5] retained
        match l.replay_from(0) {
            ReplaySlice::Truncated { head } => assert_eq!(head, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_cap_evicts_from_front() {
        let l = log(1024, 200);
        let fat = vec![UpdateInfo::eager(Oid::new(1), vec![0u8; 100])];
        l.append(None, &fat); // 24 + 100 = 124 bytes retained
        l.append(None, &fat); // 248 > 200 -> front evicted
        assert_eq!(l.len(), 1);
        assert!(l.stats().evicted.get() >= 1);
        assert!(l.stats().log_bytes.get() <= 200);
        assert!(l.contains(1), "newest entry retained");
        assert!(!l.contains(0), "oldest evicted by byte cap");
    }

    #[test]
    fn future_cursor_is_truncated() {
        // A cursor from a previous log incarnation (DLM restarted, fresh
        // seqno space) must not silently pass as current.
        let l = log(8, 1 << 20);
        l.append(None, &upd(1));
        assert!(!l.contains(9));
        assert!(matches!(l.replay_from(9), ReplaySlice::Truncated { .. }));
    }

    #[test]
    fn disabled_log_never_appends_or_replays() {
        let l = UpdateLog::new(UpdateLogConfig::disabled(), UpdateLogStats::new());
        assert!(!l.enabled());
        assert_eq!(l.append(None, &upd(1)), None);
        assert!(!l.contains(0));
        assert!(matches!(l.replay_from(0), ReplaySlice::Truncated { .. }));
    }

    #[test]
    fn empty_batch_does_not_advance_seqnos() {
        let l = log(8, 1 << 20);
        assert_eq!(l.append(None, &[]), None);
        assert_eq!(l.head(), 0);
    }

    #[test]
    fn truncate_all_forces_resync_but_keeps_seqno_space() {
        let l = log(8, 1 << 20);
        for i in 1..=4 {
            l.append(None, &upd(i));
        }
        l.truncate_all();
        assert!(l.is_empty());
        assert_eq!(l.head(), 4);
        assert!(!l.contains(2));
        assert!(l.contains(4), "the head itself stays current");
        assert_eq!(l.append(None, &upd(9)), Some(5), "seqnos keep counting");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use displaydb_common::Oid;
    use proptest::prelude::*;

    /// Random append/truncate sequences: the retained window is always a
    /// contiguous suffix, every replay either covers exactly `(cursor,
    /// head]` or reports truncation, and the byte/count caps hold.
    #[derive(Debug, Clone)]
    enum Op {
        Append { oid: u64, payload: usize },
        TruncateAll,
        Replay { cursor: u64 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // The vendored proptest has no weighted prop_oneof; bias toward
        // appends by repeating the arm.
        fn append() -> impl Strategy<Value = Op> {
            (0u64..16, 0usize..64).prop_map(|(oid, payload)| Op::Append { oid, payload })
        }
        fn replay() -> impl Strategy<Value = Op> {
            (0u64..64).prop_map(|cursor| Op::Replay { cursor })
        }
        prop_oneof![
            append(),
            append(),
            append(),
            append(),
            Just(Op::TruncateAll),
            replay(),
            replay(),
        ]
    }

    proptest! {
        #[test]
        fn prop_log_invariants(
            ops in proptest::collection::vec(arb_op(), 1..120),
            max_entries in 1usize..12,
            max_bytes in 64usize..512,
        ) {
            let l = UpdateLog::new(
                UpdateLogConfig { max_entries, max_bytes },
                displaydb_common::metrics::UpdateLogStats::new(),
            );
            let mut appended = 0u64;
            for op in ops {
                match op {
                    Op::Append { oid, payload } => {
                        let u = vec![UpdateInfo::eager(Oid::new(oid), vec![0u8; payload])];
                        let seq = l.append(None, &u);
                        appended += 1;
                        prop_assert_eq!(seq, Some(appended), "seqnos dense + monotonic");
                    }
                    Op::TruncateAll => l.truncate_all(),
                    Op::Replay { cursor } => {
                        match l.replay_from(cursor) {
                            ReplaySlice::Events { entries, head } => {
                                prop_assert_eq!(head, appended);
                                prop_assert!(cursor <= head);
                                // Exactly the suffix (cursor, head], contiguous.
                                let seqs: Vec<u64> =
                                    entries.iter().map(|e| e.seqno).collect();
                                let want: Vec<u64> = (cursor + 1..=head).collect();
                                prop_assert_eq!(seqs, want, "replay must be gapless");
                            }
                            ReplaySlice::Truncated { head } => {
                                prop_assert_eq!(head, appended);
                                prop_assert!(!l.contains(cursor));
                            }
                        }
                    }
                }
                // Caps hold after every step.
                prop_assert!(l.len() <= max_entries);
                prop_assert!(l.stats().log_bytes.get() <= max_bytes as u64
                    || l.len() <= 1, "only a single oversized entry may exceed the byte cap transiently");
                prop_assert_eq!(l.head(), appended);
            }
        }
    }
}
