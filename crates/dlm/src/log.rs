//! The bounded, replayable update log (DESIGN.md § 13).
//!
//! Every committed notification batch the DLM fans out is first appended
//! here with a monotonic sequence number. The log is a ring bounded both
//! by entry count and by estimated bytes; eviction is strictly from the
//! front, so the retained entries are always a contiguous suffix of
//! history. A client that reconnects (or whose outbox overflowed, or
//! that was demoted as lagging) catches up by replaying every entry past
//! its **cursor** — the last seqno it fully applied — filtered through
//! its registered interests. Only when the cursor has been evicted does
//! recovery degrade to the legacy full `ResyncRequired`.
//!
//! The log stores the *reported* updates, not the per-holder events:
//! replay re-runs the same interest intersection the live fan-out path
//! uses, against the client's **current** registrations. That is exactly
//! the right semantics for a reconnecting client — it re-registered its
//! display locks before replaying, so the filter reflects what it wants
//! to see now, and a client that never registered an OID can never have
//! its updates leaked to it by replay.
//!
//! # Durable spill (DESIGN.md § 14)
//!
//! [`UpdateLog::open_durable`] backs the ring with a
//! [`displaydb_storage::SegLog`]: every appended batch is framed into the
//! segment log **before** it becomes visible in the ring (durable before
//! deliverable, like the WAL), cursor-acknowledgement frontiers are
//! spilled as the outboxes emit them, and a restart recovers the ring
//! suffix, the frontiers, the seqno space, and a stable **incarnation
//! id** from the directory. Cursors are only comparable within one
//! incarnation; a client resuming against a recovered log replays from
//! its durable cursor instead of resyncing, unless the durable window was
//! truncated (torn tail, retention, or a WAL cross-check demotion).

use crate::proto::UpdateInfo;
use displaydb_common::metrics::{SegLogStats, UpdateLogStats};
use displaydb_common::overload::UpdateLogConfig;
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbResult, DurableLogConfig, Oid};
use displaydb_storage::seglog::SegLog;
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};
use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// One appended commit batch.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// Monotonic sequence number (1-based; 0 means "before history").
    pub seqno: u64,
    /// The client whose transaction performed the updates (replay honors
    /// the same originator-suppression rule as the live path).
    pub origin: Option<ClientId>,
    /// The reported updates, exactly as handed to `notify_committed`.
    pub updates: Vec<UpdateInfo>,
    /// Estimated retained bytes for the byte cap.
    pub bytes: usize,
}

fn estimate_bytes(updates: &[UpdateInfo]) -> usize {
    updates
        .iter()
        .map(|u| {
            24 + u.payload.as_ref().map_or(0, Vec::len)
                + u.changed
                    .as_ref()
                    .map_or(0, |c| c.iter().map(|(_, v)| v.len() + 4).sum())
        })
        .sum()
}

struct LogInner {
    /// Retained entries; seqnos are contiguous (`front.seqno ..= head`).
    entries: VecDeque<LogEntry>,
    /// Seqno the next appended entry will receive.
    next_seqno: u64,
    /// Sum of `bytes` across retained entries.
    bytes: usize,
    /// Last acked cursor per client (monotone max). Only maintained when
    /// the log is durable — the in-memory outboxes track their own.
    frontiers: HashMap<ClientId, u64>,
}

/// What a replay request found in the log.
#[derive(Debug)]
pub enum ReplaySlice {
    /// The cursor is still retained: these entries (possibly none, when
    /// the client is already current) cover `(cursor, head]`.
    Events {
        /// Cloned suffix entries, ascending by seqno.
        entries: Vec<LogEntry>,
        /// The log head at snapshot time.
        head: u64,
    },
    /// The cursor has been evicted (or is from another log incarnation):
    /// the client must fall back to a full resync.
    Truncated {
        /// The log head at snapshot time.
        head: u64,
    },
}

/// What [`UpdateLog::open_durable`] recovered from the directory, for
/// the server's startup report and resume-admission decisions.
#[derive(Clone, Debug, Default)]
pub struct DurableRecovery {
    /// The stable log incarnation id (recovered or freshly minted).
    pub incarnation: u64,
    /// Whether the incarnation survived from a previous run — the
    /// precondition for honoring any pre-restart cursor.
    pub incarnation_recovered: bool,
    /// Whether the durable window was surrendered (torn tail, seqno gap,
    /// or WAL cross-check demotion): resuming cursors must resync.
    pub window_truncated: bool,
    /// Batches restored into the ring (bounded by the ring caps).
    pub recovered_entries: usize,
    /// Clients whose acked cursor frontier was recovered.
    pub recovered_frontiers: usize,
    /// Highest committing transaction id stamped on any durable batch.
    pub last_txn: u64,
    /// The recovered log head (0 = nothing was ever appended).
    pub head: u64,
}

/// The DLM's bounded replayable update log.
pub struct UpdateLog {
    inner: OrderedMutex<LogInner>,
    config: UpdateLogConfig,
    stats: UpdateLogStats,
    /// Stable-storage spill; `None` for the classic in-memory-only log.
    durable: Option<SegLog>,
    /// Process-local nonce naming this log instance's seqno space when
    /// no durable incarnation exists. Never 0, never reused within a
    /// process — so a cursor minted against a dead in-memory log can
    /// never "match" a fresh one (see [`UpdateLog::session_incarnation`]).
    session_nonce: u64,
}

/// Mint a process-unique, nonzero session nonce. Seeded high so it can
/// never collide with the small timestamps tests use for durable
/// incarnations.
fn mint_session_nonce() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 =
        std::sync::atomic::AtomicU64::new(0x5EED_0000_0000_0001);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Durable batch payload: `(origin, updates)` via the wire encoding.
fn encode_batch(origin: Option<ClientId>, updates: &[UpdateInfo]) -> Vec<u8> {
    let mut w = WireWriter::new();
    match origin {
        None => w.put_u8(0),
        Some(c) => {
            w.put_u8(1);
            c.encode(&mut w);
        }
    }
    w.put_varint(updates.len() as u64);
    for u in updates {
        u.encode(&mut w);
    }
    w.finish().to_vec()
}

fn decode_batch(buf: &[u8]) -> DbResult<(Option<ClientId>, Vec<UpdateInfo>)> {
    let mut r = WireReader::new(buf);
    let origin = match r.get_u8()? {
        0 => None,
        _ => Some(ClientId::decode(&mut r)?),
    };
    let n = r.get_varint()? as usize;
    let mut updates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        updates.push(UpdateInfo::decode(&mut r)?);
    }
    Ok((origin, updates))
}

impl std::fmt::Debug for UpdateLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateLog")
            .field("config", &self.config)
            .finish()
    }
}

impl UpdateLog {
    /// Create an empty in-memory log; `stats` is shared with the owning
    /// DLM.
    pub fn new(config: UpdateLogConfig, stats: UpdateLogStats) -> Self {
        Self::new_ranked(ranks::DLM_UPDATE_LOG, config, stats)
    }

    /// [`UpdateLog::new`] with an explicit lock rank, so the sharded
    /// DLM's per-shard logs sit on the multi-instance `dlm.shard_log`
    /// rank instead of the singleton `dlm.update_log`.
    pub fn new_ranked(
        rank: displaydb_common::sync::LockRank,
        config: UpdateLogConfig,
        stats: UpdateLogStats,
    ) -> Self {
        Self {
            inner: OrderedMutex::new(
                rank,
                LogInner {
                    entries: VecDeque::new(),
                    next_seqno: 1,
                    bytes: 0,
                    frontiers: HashMap::new(),
                },
            ),
            config,
            stats,
            durable: None,
            session_nonce: mint_session_nonce(),
        }
    }

    /// Open a log spilled to stable storage under `dir`, recovering the
    /// ring suffix, cursor frontiers, seqno space, and incarnation from
    /// a previous run (DESIGN.md § 14).
    ///
    /// `min_last_txn` is the last transaction the main WAL committed
    /// (0 = no cross-check): a durable window whose newest batch trails
    /// it is surrendered, because the missing notification batches can
    /// never be replayed.
    #[allow(clippy::too_many_arguments)]
    pub fn open_durable(
        config: UpdateLogConfig,
        stats: UpdateLogStats,
        dir: impl AsRef<Path>,
        durable_config: DurableLogConfig,
        seg_stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, DurableRecovery)> {
        Self::open_durable_ranked(
            ranks::DLM_UPDATE_LOG,
            config,
            stats,
            dir,
            durable_config,
            seg_stats,
            fresh_incarnation,
            min_last_txn,
        )
    }

    /// [`UpdateLog::open_durable`] with an explicit lock rank (see
    /// [`UpdateLog::new_ranked`]).
    #[allow(clippy::too_many_arguments)]
    pub fn open_durable_ranked(
        rank: displaydb_common::sync::LockRank,
        config: UpdateLogConfig,
        stats: UpdateLogStats,
        dir: impl AsRef<Path>,
        durable_config: DurableLogConfig,
        seg_stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, DurableRecovery)> {
        let (seg, rec) = SegLog::open(
            dir,
            durable_config,
            seg_stats,
            fresh_incarnation,
            min_last_txn,
        )?;
        // Repopulate the ring from the durable suffix, newest first, up
        // to the ring's own caps: the in-memory window may be narrower
        // than the durable one, never wider.
        let mut entries: VecDeque<LogEntry> = VecDeque::new();
        let mut bytes = 0usize;
        for b in rec.batches.iter().rev() {
            let Ok((origin, updates)) = decode_batch(&b.payload) else {
                // Checksummed but undecodable (shape drift): stop
                // extending the window downward so it stays contiguous.
                break;
            };
            let eb = estimate_bytes(&updates);
            if entries.len() + 1 > config.max_entries
                || (bytes + eb > config.max_bytes && !entries.is_empty())
            {
                break;
            }
            bytes += eb;
            entries.push_front(LogEntry {
                seqno: b.seqno,
                origin,
                updates,
                bytes: eb,
            });
        }
        stats.log_entries.set(entries.len() as u64);
        stats.log_bytes.set(bytes as u64);
        let recovery = DurableRecovery {
            incarnation: rec.incarnation,
            incarnation_recovered: rec.incarnation_recovered,
            window_truncated: rec.window_truncated,
            recovered_entries: entries.len(),
            recovered_frontiers: rec.frontiers.len(),
            last_txn: rec.last_txn,
            head: rec.next_seqno - 1,
        };
        let log = Self {
            inner: OrderedMutex::new(
                rank,
                LogInner {
                    entries,
                    next_seqno: rec.next_seqno,
                    bytes,
                    frontiers: rec.frontiers,
                },
            ),
            config,
            stats,
            durable: Some(seg),
            session_nonce: mint_session_nonce(),
        };
        Ok((log, recovery))
    }

    /// Whether replay is available at all (a zero-sized log disables the
    /// mechanism and recovery uses the legacy resync paths).
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Append one committed batch and return its seqno. Returns
    /// `Ok(None)` when the log is disabled or the batch is empty
    /// (nothing to replay); the seqno space does not advance in either
    /// case. `txn` is the committing transaction (0 = unknown), stamped
    /// on the durable record for the restart WAL cross-check.
    ///
    /// When the log is durable, the batch reaches stable storage
    /// **before** it becomes visible in the ring; a spill failure leaves
    /// the seqno unassigned and nothing retained.
    pub fn append(
        &self,
        origin: Option<ClientId>,
        updates: &[UpdateInfo],
        txn: u64,
    ) -> DbResult<Option<u64>> {
        if !self.enabled() || updates.is_empty() {
            return Ok(None);
        }
        let bytes = estimate_bytes(updates);
        let mut inner = self.inner.lock();
        let seqno = inner.next_seqno;
        if let Some(seg) = &self.durable {
            // Holding the ring lock across the spill serializes durable
            // batch order with seqno assignment (rank 385 → 515, legal).
            seg.append_batch(seqno, txn, &encode_batch(origin, updates))?;
        }
        inner.next_seqno += 1;
        inner.entries.push_back(LogEntry {
            seqno,
            origin,
            updates: updates.to_vec(),
            bytes,
        });
        inner.bytes += bytes;
        self.stats.appended.inc();
        // Evict from the front until both caps hold again. A single
        // oversized entry may be evicted immediately after insertion —
        // the seqno still advances, so its absence is a truncation the
        // replay path detects, never a silent gap.
        while inner.entries.len() > self.config.max_entries
            || (inner.bytes > self.config.max_bytes && !inner.entries.is_empty())
        {
            if let Some(evicted) = inner.entries.pop_front() {
                inner.bytes -= evicted.bytes;
                self.stats.evicted.inc();
            }
        }
        self.stats.log_entries.set(inner.entries.len() as u64);
        self.stats.log_bytes.set(inner.bytes as u64);
        Ok(Some(seqno))
    }

    /// Record `client`'s acked cursor frontier (monotone max) and, when
    /// durable, spill it so a restart can tell which cursors are live.
    /// Called by the outbox writers at `CursorAck` synthesis time.
    pub fn record_frontier(&self, client: ClientId, cursor: u64) -> DbResult<()> {
        if !self.enabled() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        let e = inner.frontiers.entry(client).or_insert(0);
        if cursor <= *e {
            return Ok(()); // stale or repeated ack: nothing new to persist
        }
        *e = cursor;
        drop(inner);
        if let Some(seg) = &self.durable {
            seg.append_frontier(client, cursor)?;
        }
        Ok(())
    }

    /// The recorded acked frontier for `client`, if any.
    pub fn frontier_of(&self, client: ClientId) -> Option<u64> {
        self.inner.lock().frontiers.get(&client).copied()
    }

    /// Snapshot of every recorded client frontier.
    pub fn frontiers(&self) -> HashMap<ClientId, u64> {
        self.inner.lock().frontiers.clone()
    }

    /// The distinct OIDs updated by retained entries past `cursor`, or
    /// `None` when the cursor is not replayable from this log. Lets the
    /// server compute a cross-restart stale set from the durable window
    /// when its in-memory version map did not survive.
    pub fn changed_since(&self, cursor: u64) -> Option<Vec<Oid>> {
        if !self.enabled() || !self.is_durable() {
            return None;
        }
        let inner = self.inner.lock();
        let head = inner.next_seqno - 1;
        let first = inner.entries.front().map_or(inner.next_seqno, |e| e.seqno);
        if cursor + 1 < first || cursor > head {
            return None;
        }
        let mut oids: Vec<Oid> = Vec::new();
        for entry in inner.entries.iter().filter(|e| e.seqno > cursor) {
            for u in &entry.updates {
                if !oids.contains(&u.oid) {
                    oids.push(u.oid);
                }
            }
        }
        Some(oids)
    }

    /// The stable incarnation id (`None` for an in-memory-only log,
    /// whose seqno space dies with the process).
    pub fn incarnation(&self) -> Option<u64> {
        self.durable.as_ref().map(SegLog::incarnation)
    }

    /// The incarnation cursors against this log must be compared under:
    /// the durable incarnation when one exists, otherwise a nonzero
    /// process-local nonce unique to this log instance. Never 0 — a
    /// client presenting an incarnation from *any* other log (including
    /// "I had none") is an explicit mismatch, not a wildcard match
    /// (the old `unwrap_or(0)` admission hole).
    pub fn session_incarnation(&self) -> u64 {
        self.incarnation().unwrap_or(self.session_nonce)
    }

    /// Whether the log spills to stable storage.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Force buffered durable appends to stable storage (no-op for the
    /// in-memory log). Called on orderly shutdown.
    pub fn sync(&self) -> DbResult<()> {
        match &self.durable {
            Some(seg) => seg.sync(),
            None => Ok(()),
        }
    }

    /// The highest seqno ever appended (0 when nothing was logged yet).
    pub fn head(&self) -> u64 {
        self.inner.lock().next_seqno - 1
    }

    /// Whether a client at `cursor` can catch up by replay: every seqno
    /// in `(cursor, head]` is retained and the cursor is not from the
    /// future (a restarted DLM has a fresh seqno space — a stale cursor
    /// past the head must fall back to resync, not silently match).
    pub fn contains(&self, cursor: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let inner = self.inner.lock();
        let head = inner.next_seqno - 1;
        let first = inner.entries.front().map_or(inner.next_seqno, |e| e.seqno);
        // Saturating: the admission paths use `u64::MAX` as a
        // force-resync cursor, which must compare as "from the future",
        // not overflow.
        cursor.saturating_add(1) >= first && cursor <= head
    }

    /// Snapshot the suffix past `cursor` for replay.
    pub fn replay_from(&self, cursor: u64) -> ReplaySlice {
        let inner = self.inner.lock();
        let head = inner.next_seqno - 1;
        let first = inner.entries.front().map_or(inner.next_seqno, |e| e.seqno);
        if !self.enabled() || cursor.saturating_add(1) < first || cursor > head {
            return ReplaySlice::Truncated { head };
        }
        let entries: Vec<LogEntry> = inner
            .entries
            .iter()
            .filter(|e| e.seqno > cursor)
            .cloned()
            .collect();
        ReplaySlice::Events { entries, head }
    }

    /// Evict every retained entry without disturbing the seqno space.
    /// Forces the next replay of any behind-head cursor onto the
    /// `ResyncRequired` fallback — the truncation fault injection used by
    /// the R4 experiment and the recovery tests.
    pub fn truncate_all(&self) {
        let mut inner = self.inner.lock();
        let evicted = inner.entries.len() as u64;
        inner.entries.clear();
        inner.bytes = 0;
        self.stats.evicted.add(evicted);
        self.stats.log_entries.set(0);
        self.stats.log_bytes.set(0);
    }

    /// Retained entry count (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log's stats handle.
    pub fn stats(&self) -> &UpdateLogStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::Oid;

    fn log(max_entries: usize, max_bytes: usize) -> UpdateLog {
        UpdateLog::new(
            UpdateLogConfig {
                max_entries,
                max_bytes,
            },
            UpdateLogStats::new(),
        )
    }

    fn upd(oid: u64) -> Vec<UpdateInfo> {
        vec![UpdateInfo::lazy(Oid::new(oid))]
    }

    #[test]
    fn seqnos_are_monotonic_and_contiguous() {
        let l = log(8, 1 << 20);
        assert_eq!(l.append(None, &upd(1), 0).unwrap(), Some(1));
        assert_eq!(l.append(None, &upd(2), 0).unwrap(), Some(2));
        assert_eq!(l.append(None, &upd(3), 0).unwrap(), Some(3));
        assert_eq!(l.head(), 3);
        match l.replay_from(1) {
            ReplaySlice::Events { entries, head } => {
                assert_eq!(head, 3);
                let seqs: Vec<u64> = entries.iter().map(|e| e.seqno).collect();
                assert_eq!(seqs, vec![2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn current_cursor_replays_empty() {
        let l = log(8, 1 << 20);
        l.append(None, &upd(1), 0).unwrap();
        match l.replay_from(1) {
            ReplaySlice::Events { entries, head } => {
                assert!(entries.is_empty());
                assert_eq!(head, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A fresh empty log is replayable from cursor 0.
        let fresh = log(8, 1 << 20);
        assert!(fresh.contains(0));
        assert!(matches!(
            fresh.replay_from(0),
            ReplaySlice::Events { head: 0, .. }
        ));
    }

    #[test]
    fn count_cap_evicts_from_front() {
        let l = log(3, 1 << 20);
        for i in 1..=5 {
            l.append(None, &upd(i), 0).unwrap();
        }
        assert_eq!(l.len(), 3);
        assert!(!l.contains(1), "seqnos 1-2 evicted");
        assert!(l.contains(2)); // (2, 5] retained
        match l.replay_from(0) {
            ReplaySlice::Truncated { head } => assert_eq!(head, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_cap_evicts_from_front() {
        let l = log(1024, 200);
        let fat = vec![UpdateInfo::eager(Oid::new(1), vec![0u8; 100])];
        l.append(None, &fat, 0).unwrap(); // 24 + 100 = 124 bytes retained
        l.append(None, &fat, 0).unwrap(); // 248 > 200 -> front evicted
        assert_eq!(l.len(), 1);
        assert!(l.stats().evicted.get() >= 1);
        assert!(l.stats().log_bytes.get() <= 200);
        assert!(l.contains(1), "newest entry retained");
        assert!(!l.contains(0), "oldest evicted by byte cap");
    }

    #[test]
    fn future_cursor_is_truncated() {
        // A cursor from a previous log incarnation (DLM restarted, fresh
        // seqno space) must not silently pass as current.
        let l = log(8, 1 << 20);
        l.append(None, &upd(1), 0).unwrap();
        assert!(!l.contains(9));
        assert!(matches!(l.replay_from(9), ReplaySlice::Truncated { .. }));
    }

    #[test]
    fn disabled_log_never_appends_or_replays() {
        let l = UpdateLog::new(UpdateLogConfig::disabled(), UpdateLogStats::new());
        assert!(!l.enabled());
        assert_eq!(l.append(None, &upd(1), 0).unwrap(), None);
        assert!(!l.contains(0));
        assert!(matches!(l.replay_from(0), ReplaySlice::Truncated { .. }));
    }

    #[test]
    fn empty_batch_does_not_advance_seqnos() {
        let l = log(8, 1 << 20);
        assert_eq!(l.append(None, &[], 0).unwrap(), None);
        assert_eq!(l.head(), 0);
    }

    #[test]
    fn truncate_all_forces_resync_but_keeps_seqno_space() {
        let l = log(8, 1 << 20);
        for i in 1..=4 {
            l.append(None, &upd(i), 0).unwrap();
        }
        l.truncate_all();
        assert!(l.is_empty());
        assert_eq!(l.head(), 4);
        assert!(!l.contains(2));
        assert!(l.contains(4), "the head itself stays current");
        assert_eq!(
            l.append(None, &upd(9), 0).unwrap(),
            Some(5),
            "seqnos keep counting"
        );
    }

    // ---- durable spill (DESIGN.md § 14) ----

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CASE: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);
    impl TempDir {
        fn new() -> Self {
            let p = std::env::temp_dir().join("displaydb-dlm-log").join(format!(
                "case-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open_durable_at(
        dir: &std::path::Path,
        max_entries: usize,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> (UpdateLog, DurableRecovery) {
        UpdateLog::open_durable(
            UpdateLogConfig {
                max_entries,
                max_bytes: 1 << 20,
            },
            UpdateLogStats::new(),
            dir,
            DurableLogConfig::enabled(),
            SegLogStats::new(),
            fresh_incarnation,
            min_last_txn,
        )
        .unwrap()
    }

    #[test]
    fn durable_roundtrip_recovers_window_frontiers_and_incarnation() {
        let tmp = TempDir::new();
        let c1 = ClientId::new(1);
        let c2 = ClientId::new(2);
        {
            let (l, rec) = open_durable_at(&tmp.0, 64, 7001, 0);
            assert!(l.is_durable());
            assert_eq!(l.incarnation(), Some(7001));
            assert!(!rec.incarnation_recovered);
            assert_eq!(rec.head, 0);
            for i in 1..=5u64 {
                assert_eq!(l.append(None, &upd(i), 100 + i).unwrap(), Some(i));
            }
            l.record_frontier(c1, 3).unwrap();
            l.record_frontier(c2, 5).unwrap();
            // Stale / duplicate frontier reports are absorbed silently.
            l.record_frontier(c1, 2).unwrap();
            assert_eq!(l.frontier_of(c1), Some(3));
            l.sync().unwrap();
        }
        let (l, rec) = open_durable_at(&tmp.0, 64, 9999, 0);
        assert!(rec.incarnation_recovered);
        assert_eq!(rec.incarnation, 7001, "incarnation survives the restart");
        assert_eq!(l.incarnation(), Some(7001));
        assert!(!rec.window_truncated);
        assert_eq!(rec.recovered_entries, 5);
        assert_eq!(rec.recovered_frontiers, 2);
        assert_eq!(rec.last_txn, 105);
        assert_eq!(rec.head, 5);
        assert_eq!(l.head(), 5);
        assert_eq!(l.frontier_of(c1), Some(3));
        assert_eq!(l.frontier_of(c2), Some(5));
        // The recovered ring replays exactly like the pre-restart one.
        match l.replay_from(3) {
            ReplaySlice::Events { entries, head } => {
                assert_eq!(head, 5);
                let seqs: Vec<u64> = entries.iter().map(|e| e.seqno).collect();
                assert_eq!(seqs, vec![4, 5]);
                assert_eq!(entries[0].updates[0].oid, Oid::new(4));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Seqnos keep counting where the previous incarnation stopped.
        assert_eq!(l.append(None, &upd(9), 106).unwrap(), Some(6));
    }

    #[test]
    fn recovery_bounds_ring_to_the_configured_caps() {
        let tmp = TempDir::new();
        {
            let (l, _) = open_durable_at(&tmp.0, 64, 1, 0);
            for i in 1..=10u64 {
                l.append(None, &upd(i), i).unwrap();
            }
            l.sync().unwrap();
        }
        // Reopen with a smaller ring: only the newest suffix is retained,
        // and the evicted prefix reports Truncated like any eviction.
        let (l, rec) = open_durable_at(&tmp.0, 3, 1, 0);
        assert_eq!(rec.recovered_entries, 3);
        assert_eq!(l.len(), 3);
        assert!(l.contains(7), "(7, 10] retained");
        assert!(!l.contains(6));
        assert!(matches!(
            l.replay_from(5),
            ReplaySlice::Truncated { head: 10 }
        ));
    }

    #[test]
    fn changed_since_reports_distinct_oids_past_the_cursor() {
        let tmp = TempDir::new();
        let (l, _) = open_durable_at(&tmp.0, 64, 1, 0);
        l.append(None, &upd(10), 1).unwrap();
        l.append(
            None,
            &[
                UpdateInfo::lazy(Oid::new(11)),
                UpdateInfo::lazy(Oid::new(10)),
            ],
            2,
        )
        .unwrap();
        l.append(None, &upd(12), 3).unwrap();
        let oids = l.changed_since(1).unwrap();
        assert_eq!(oids, vec![Oid::new(11), Oid::new(10), Oid::new(12)]);
        assert_eq!(
            l.changed_since(3),
            Some(Vec::new()),
            "current cursor: nothing stale"
        );
        assert!(
            l.changed_since(9).is_none(),
            "future cursor is unanswerable"
        );
        // In-memory logs cannot answer cross-restart staleness.
        let mem = log(8, 1 << 20);
        mem.append(None, &upd(1), 0).unwrap();
        assert!(mem.changed_since(0).is_none());
    }

    #[test]
    fn wal_cross_check_surrenders_the_durable_window() {
        let tmp = TempDir::new();
        {
            let (l, _) = open_durable_at(&tmp.0, 64, 1, 0);
            for i in 1..=4u64 {
                l.append(None, &upd(i), i).unwrap();
            }
            l.sync().unwrap();
        }
        // The main WAL committed through txn 9 but the durable stream
        // stops at 4: the missing tail is gone, so the window must go.
        let (l, rec) = open_durable_at(&tmp.0, 64, 1, 9);
        assert!(rec.incarnation_recovered);
        assert!(rec.window_truncated);
        assert_eq!(rec.recovered_entries, 0);
        assert!(l.is_empty());
        assert_eq!(l.head(), 4, "seqno space still survives");
        assert!(matches!(l.replay_from(2), ReplaySlice::Truncated { .. }));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use displaydb_common::Oid;
    use proptest::prelude::*;

    /// Random append/truncate sequences: the retained window is always a
    /// contiguous suffix, every replay either covers exactly `(cursor,
    /// head]` or reports truncation, and the byte/count caps hold.
    #[derive(Debug, Clone)]
    enum Op {
        Append { oid: u64, payload: usize },
        TruncateAll,
        Replay { cursor: u64 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // The vendored proptest has no weighted prop_oneof; bias toward
        // appends by repeating the arm.
        fn append() -> impl Strategy<Value = Op> {
            (0u64..16, 0usize..64).prop_map(|(oid, payload)| Op::Append { oid, payload })
        }
        fn replay() -> impl Strategy<Value = Op> {
            (0u64..64).prop_map(|cursor| Op::Replay { cursor })
        }
        prop_oneof![
            append(),
            append(),
            append(),
            append(),
            Just(Op::TruncateAll),
            replay(),
            replay(),
        ]
    }

    proptest! {
        #[test]
        fn prop_log_invariants(
            ops in proptest::collection::vec(arb_op(), 1..120),
            max_entries in 1usize..12,
            max_bytes in 64usize..512,
        ) {
            let l = UpdateLog::new(
                UpdateLogConfig { max_entries, max_bytes },
                displaydb_common::metrics::UpdateLogStats::new(),
            );
            let mut appended = 0u64;
            for op in ops {
                match op {
                    Op::Append { oid, payload } => {
                        let u = vec![UpdateInfo::eager(Oid::new(oid), vec![0u8; payload])];
                        let seq = l.append(None, &u, 0).unwrap();
                        appended += 1;
                        prop_assert_eq!(seq, Some(appended), "seqnos dense + monotonic");
                    }
                    Op::TruncateAll => l.truncate_all(),
                    Op::Replay { cursor } => {
                        match l.replay_from(cursor) {
                            ReplaySlice::Events { entries, head } => {
                                prop_assert_eq!(head, appended);
                                prop_assert!(cursor <= head);
                                // Exactly the suffix (cursor, head], contiguous.
                                let seqs: Vec<u64> =
                                    entries.iter().map(|e| e.seqno).collect();
                                let want: Vec<u64> = (cursor + 1..=head).collect();
                                prop_assert_eq!(seqs, want, "replay must be gapless");
                            }
                            ReplaySlice::Truncated { head } => {
                                prop_assert_eq!(head, appended);
                                prop_assert!(!l.contains(cursor));
                            }
                        }
                    }
                }
                // Caps hold after every step.
                prop_assert!(l.len() <= max_entries);
                prop_assert!(l.stats().log_bytes.get() <= max_bytes as u64
                    || l.len() <= 1, "only a single oversized entry may exceed the byte cap transiently");
                prop_assert_eq!(l.head(), appended);
            }
        }
    }
}
