//! The transport-agnostic DLM: display-lock table and notification
//! fan-out.
//!
//! Both deployments of the paper use this one structure:
//!
//! * the **agent** (§ 4.1): a standalone service ([`crate::agent`]) where
//!   updating clients report commits/intents over the wire;
//! * the **integrated** lock manager: the server calls
//!   [`DlmCore::notify_committed`] / [`DlmCore::notify_intent`] directly
//!   from its commit and X-grant paths.

use crate::log::{DurableRecovery, ReplaySlice, UpdateLog};
use crate::proto::{DlmEvent, UpdateInfo};
use displaydb_common::metrics::{Counter, OverloadStats, SegLogStats, UpdateLogStats};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{
    ClientId, DbResult, DurableLogConfig, Oid, OverloadConfig, TxnId, UpdateLogConfig,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Which notification protocol the DLM runs (§ 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotifyProtocol {
    /// Notify holders only after updates commit.
    PostCommit,
    /// Additionally notify holders when an update *intention* (exclusive
    /// lock) is registered, and again when it resolves.
    EarlyNotify,
}

/// DLM configuration.
#[derive(Clone, Copy, Debug)]
pub struct DlmConfig {
    /// Protocol variant.
    pub protocol: NotifyProtocol,
    /// Ship new object state inside update notifications (the § 4.3
    /// "eager" extension eliminating two of the three refresh messages).
    pub eager_shipping: bool,
    /// Whether the client that performed an update is itself notified.
    /// The paper's clients refresh their own displays locally, so the
    /// default skips the originator.
    pub notify_originator: bool,
    /// Overload-protection knobs for the per-client outboxes wrapped
    /// around the sinks (DESIGN.md § 9).
    pub overload: OverloadConfig,
    /// Sizing for the bounded replayable update log (DESIGN.md § 13).
    /// `UpdateLogConfig::disabled()` turns replay off and restores the
    /// legacy resync-only recovery paths.
    pub log: UpdateLogConfig,
    /// Number of in-process shards the integrated DLM is partitioned
    /// into (DESIGN.md § 16). 1 = the classic single-table DLM; each
    /// additional shard gets its own interest table, outboxes, and
    /// update log with an independent seqno space, and commit fan-out
    /// intersects shards in parallel.
    pub shards: usize,
}

impl Default for DlmConfig {
    fn default() -> Self {
        Self {
            protocol: NotifyProtocol::PostCommit,
            eager_shipping: false,
            notify_originator: false,
            overload: OverloadConfig::default(),
            log: UpdateLogConfig::default(),
            shards: 1,
        }
    }
}

/// Counters for the experiments.
#[derive(Clone, Debug, Default)]
pub struct DlmStats {
    /// Lock requests processed (after DLC dedup).
    pub lock_requests: Counter,
    /// Release requests processed.
    pub release_requests: Counter,
    /// Update notifications delivered to clients.
    pub notifications: Counter,
    /// Attribute-level delta notifications delivered to clients with
    /// projected interest (subset of the traffic `notifications` would
    /// otherwise carry as whole-object events).
    pub delta_notifications: Counter,
    /// Notifications suppressed entirely because the commit changed no
    /// attribute the holder's registered projection covers.
    pub suppressed_notifications: Counter,
    /// Mark/resolve (early protocol) notifications delivered.
    pub intent_notifications: Counter,
    /// Deliveries that failed (dead client).
    pub delivery_failures: Counter,
    /// Backpressure counters for the per-client outboxes.
    pub overload: OverloadStats,
    /// Replay-log counters (appends, evictions, replays served); shared
    /// with the [`UpdateLog`] and registered as its own stats section.
    pub log: UpdateLogStats,
}

impl DlmStats {
    /// Snapshot as `(name, value)` pairs for reports (the outbox
    /// counters live in their own `dlm.overload` registry section).
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lock_requests", self.lock_requests.get()),
            ("release_requests", self.release_requests.get()),
            ("notifications", self.notifications.get()),
            ("delta_notifications", self.delta_notifications.get()),
            (
                "suppressed_notifications",
                self.suppressed_notifications.get(),
            ),
            ("intent_notifications", self.intent_notifications.get()),
            ("delivery_failures", self.delivery_failures.get()),
        ]
    }
}

impl displaydb_common::StatsSource for DlmStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

/// Where the DLM pushes events for one client.
///
/// The agent wraps a wire channel; the integrated server wraps its session
/// registry; tests wrap a crossbeam sender.
pub trait EventSink: Send + Sync {
    /// Deliver one event. Errors mark the client dead.
    fn deliver(&self, event: DlmEvent) -> DbResult<()>;

    /// Deliver an event that originated from update-log entry `seqno`.
    /// Seqno-aware sinks (the outbox) use it to advance the client's
    /// cursor and to keep latest-wins coalescing correct when replayed
    /// (older-seqno) events interleave with live ones. The default
    /// ignores the seqno.
    fn deliver_logged(&self, event: DlmEvent, _seqno: u64) -> DbResult<()> {
        self.deliver(event)
    }

    /// Deliver an event replayed out of the update log. Bounded sinks
    /// must not treat the replay burst as live backpressure (a replay
    /// legitimately exceeds the live high-water mark yet stays bounded
    /// by the watched set through coalescing). Default: `deliver_logged`.
    fn deliver_replayed(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        self.deliver_logged(event, seqno)
    }

    /// The client is being restored from replay: leave replay-pending /
    /// lagging mode and reset overflow high-water marks so post-recovery
    /// gauges describe the recovered client. Default does nothing.
    fn replay_restore(&self) {}

    /// Every logged commit with seqno ≤ `seqno` has been handed to this
    /// sink (or filtered for this client). Seqno-aware sinks emit a
    /// `CursorAck` once their queue drains past it. Default does nothing.
    fn mark_current_through(&self, _seqno: u64) {}

    /// Every event of logged commit `seqno` destined for this sink has
    /// been enqueued: the acknowledgement frontier may advance. Kept
    /// separate from `deliver_logged` because a commit's fan-out is not
    /// atomic — if the per-event delivery advanced the frontier, a
    /// drain racing with a half-enqueued batch would acknowledge a
    /// seqno whose remaining events are still on the way (and, should
    /// they then overflow-sweep, are gone for good: the client's cursor
    /// would claim updates it never saw). Default does nothing.
    fn advance_frontier(&self, _seqno: u64) {}

    /// Release resources held by the sink (writer threads, sockets).
    /// Called when the client is unregistered; the default does nothing
    /// so simple closure sinks need no boilerplate.
    fn close(&self) {}
}

impl<F: Fn(DlmEvent) -> DbResult<()> + Send + Sync> EventSink for F {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        self(event)
    }
}

/// How [`DlmCore::replay_for`] recovered a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Streamed `events` interest-filtered events from the log suffix;
    /// the client is current through `head`.
    Replayed {
        /// Events delivered (after interest filtering).
        events: usize,
        /// Log head the client was marked current through.
        head: u64,
    },
    /// The cursor was truncated out of the log: one `ResyncRequired`
    /// covering `oids` watched objects was sent instead.
    Truncated {
        /// Watched objects named in the resync marker.
        oids: usize,
        /// Log head the client was marked current through.
        head: u64,
    },
    /// No sink is registered for the client.
    UnknownClient,
}

/// One client's registered attribute interest in one object. Absence of
/// an entry means full interest (every attribute change notifies).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Interest {
    /// Projected attribute layout indices (sorted, deduped).
    attrs: Vec<u16>,
    /// The client's projection-registry version at registration time;
    /// echoed in deltas so the client can detect staleness.
    version: u32,
}

#[derive(Default)]
struct TableState {
    /// Object -> display-lock holders.
    holders: HashMap<Oid, HashSet<ClientId>>,
    /// Client -> objects it display-locks (for release-all).
    by_client: HashMap<ClientId, HashSet<Oid>>,
    /// Client -> per-object projected interest. Populated only by
    /// projected lock registrations; plain locks mean full interest.
    interest: HashMap<ClientId, HashMap<Oid, Interest>>,
    /// Registered delivery sinks.
    sinks: HashMap<ClientId, Arc<dyn EventSink>>,
}

/// The display-lock manager core.
pub struct DlmCore {
    state: OrderedMutex<TableState>,
    config: DlmConfig,
    stats: DlmStats,
    log: UpdateLog,
}

impl std::fmt::Debug for DlmCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlmCore")
            .field("config", &self.config)
            .finish()
    }
}

impl DlmCore {
    /// Create a DLM with `config`.
    pub fn new(config: DlmConfig) -> Self {
        let stats = DlmStats::default();
        let log = UpdateLog::new(config.log, stats.log.clone());
        Self {
            state: OrderedMutex::new(ranks::DLM_TABLE, TableState::default()),
            config,
            stats,
            log,
        }
    }

    /// Create a DLM whose update log spills to stable storage under
    /// `dir` (DESIGN.md § 14), recovering the replay window, cursor
    /// frontiers, and log incarnation from a previous run. Returns the
    /// recovery report so the caller can drive resume admission.
    /// `min_last_txn` is the last transaction the main WAL committed
    /// (0 = no cross-check).
    pub fn new_durable(
        config: DlmConfig,
        dir: impl AsRef<std::path::Path>,
        durable: DurableLogConfig,
        seg_stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, DurableRecovery)> {
        let stats = DlmStats::default();
        let (log, recovery) = UpdateLog::open_durable(
            config.log,
            stats.log.clone(),
            dir,
            durable,
            seg_stats,
            fresh_incarnation,
            min_last_txn,
        )?;
        Ok((
            Self {
                state: OrderedMutex::new(ranks::DLM_TABLE, TableState::default()),
                config,
                stats,
                log,
            },
            recovery,
        ))
    }

    /// Build one shard of a partitioned DLM (see [`crate::shard`]): the
    /// same structure, but the table and log sit on the multi-instance
    /// shard ranks and every shard shares one `stats` handle so the
    /// counters stay a single coherent view.
    pub(crate) fn new_shard(config: DlmConfig, stats: DlmStats) -> Self {
        let log = UpdateLog::new_ranked(ranks::DLM_SHARD_LOG, config.log, stats.log.clone());
        Self {
            state: OrderedMutex::new(ranks::DLM_SHARD_TABLE, TableState::default()),
            config,
            stats,
            log,
        }
    }

    /// [`DlmCore::new_shard`] with a durable per-shard log directory.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_shard_durable(
        config: DlmConfig,
        stats: DlmStats,
        dir: impl AsRef<std::path::Path>,
        durable: DurableLogConfig,
        seg_stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, DurableRecovery)> {
        let (log, recovery) = UpdateLog::open_durable_ranked(
            ranks::DLM_SHARD_LOG,
            config.log,
            stats.log.clone(),
            dir,
            durable,
            seg_stats,
            fresh_incarnation,
            min_last_txn,
        )?;
        Ok((
            Self {
                state: OrderedMutex::new(ranks::DLM_SHARD_TABLE, TableState::default()),
                config,
                stats,
                log,
            },
            recovery,
        ))
    }

    /// Active configuration.
    pub fn config(&self) -> DlmConfig {
        self.config
    }

    /// Statistics counters.
    pub fn stats(&self) -> &DlmStats {
        &self.stats
    }

    /// The bounded replayable update log.
    pub fn update_log(&self) -> &UpdateLog {
        &self.log
    }

    /// Register (or replace) the event sink for `client`.
    pub fn register_client(&self, client: ClientId, sink: Arc<dyn EventSink>) {
        self.state.lock().sinks.insert(client, sink);
    }

    /// Drop a client: its sink and every display lock it holds. The
    /// sink's `close` runs outside the table lock (it may join or signal
    /// a writer thread).
    pub fn unregister_client(&self, client: ClientId) {
        let removed = {
            let mut state = self.state.lock();
            let removed = state.sinks.remove(&client);
            state.interest.remove(&client);
            if let Some(oids) = state.by_client.remove(&client) {
                for oid in oids {
                    if let Some(holders) = state.holders.get_mut(&oid) {
                        holders.remove(&client);
                        if holders.is_empty() {
                            state.holders.remove(&oid);
                        }
                    }
                }
            }
            removed
        };
        if let Some(sink) = removed {
            sink.close();
        }
    }

    /// Acquire display locks. Always succeeds (never acknowledged, § 4.1).
    /// A plain lock means full interest: any projected interest recorded
    /// earlier for these objects is widened back to "everything".
    pub fn lock(&self, client: ClientId, oids: &[Oid]) {
        let mut state = self.state.lock();
        for &oid in oids {
            state.holders.entry(oid).or_default().insert(client);
            state.by_client.entry(client).or_default().insert(oid);
            if let Some(per_client) = state.interest.get_mut(&client) {
                per_client.remove(&oid);
            }
        }
        self.stats.lock_requests.add(oids.len() as u64);
    }

    /// Acquire display locks with a registered attribute projection: the
    /// holder only cares about changes to `attrs` (layout indices) of
    /// these objects. Commits touching only other attributes are
    /// suppressed; covered commits arrive as [`DlmEvent::Delta`]s tagged
    /// with `version`. Re-registration replaces the previous interest
    /// (the client sends the union across its displays).
    pub fn lock_projected(&self, client: ClientId, oids: &[Oid], attrs: &[u16], version: u32) {
        let interest = {
            let mut a = attrs.to_vec();
            a.sort_unstable();
            a.dedup();
            Interest { attrs: a, version }
        };
        let mut state = self.state.lock();
        for &oid in oids {
            state.holders.entry(oid).or_default().insert(client);
            state.by_client.entry(client).or_default().insert(oid);
            state
                .interest
                .entry(client)
                .or_default()
                .insert(oid, interest.clone());
        }
        self.stats.lock_requests.add(oids.len() as u64);
    }

    /// Release display locks.
    pub fn release(&self, client: ClientId, oids: &[Oid]) {
        let mut state = self.state.lock();
        for &oid in oids {
            if let Some(holders) = state.holders.get_mut(&oid) {
                holders.remove(&client);
                if holders.is_empty() {
                    state.holders.remove(&oid);
                }
            }
            if let Some(set) = state.by_client.get_mut(&client) {
                set.remove(&oid);
            }
            if let Some(per_client) = state.interest.get_mut(&client) {
                per_client.remove(&oid);
            }
        }
        self.stats.release_requests.add(oids.len() as u64);
    }

    /// Current holder set for an object.
    pub fn holders(&self, oid: Oid) -> Vec<ClientId> {
        self.state
            .lock()
            .holders
            .get(&oid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of display-locked objects.
    pub fn locked_objects(&self) -> usize {
        self.state.lock().holders.len()
    }

    /// Whether any client currently has a projected interest registered.
    /// Lets the integrated server skip pre-image capture and diffing
    /// entirely when nobody wants attribute-level deltas.
    pub fn has_projected_interest(&self) -> bool {
        self.state.lock().interest.values().any(|m| !m.is_empty())
    }

    /// Whether `client` holds a projected (attribute-narrowed) display
    /// lock on `oid`. Used by the integrated server to defer grant-time
    /// consistency callbacks: a projected holder's copy is either kept
    /// current by a commit-time delta or invalidated at commit.
    pub fn has_interest(&self, client: ClientId, oid: Oid) -> bool {
        self.state
            .lock()
            .interest
            .get(&client)
            .is_some_and(|m| m.contains_key(&oid))
    }

    /// Whether `client`'s registered projection on `oid` covers every
    /// attribute index in `changed`. When it does, the delta the client
    /// is about to receive carries the complete set of changes, so its
    /// cached copy can be patched in place instead of invalidated — the
    /// callback round-trip becomes unnecessary.
    pub fn interest_covers(&self, client: ClientId, oid: Oid, changed: &[u16]) -> bool {
        self.state
            .lock()
            .interest
            .get(&client)
            .and_then(|m| m.get(&oid))
            .is_some_and(|i| changed.iter().all(|a| i.attrs.binary_search(a).is_ok()))
    }

    /// Fan out committed updates to every display-lock holder
    /// (post-commit notify protocol, § 3.3). `origin` is the client whose
    /// transaction performed the update.
    ///
    /// Holders with a registered projection ([`Self::lock_projected`])
    /// are diffed against `update.changed` when the reporter supplied
    /// attribute-level changes: a commit touching none of the projected
    /// attributes is suppressed outright; otherwise the holder receives
    /// a [`DlmEvent::Delta`] carrying only the intersection. Holders
    /// without a projection (and deletions, and updates reported without
    /// change info) fall back to whole-object `Updated` events.
    pub fn notify_committed(&self, origin: Option<ClientId>, updates: &[UpdateInfo]) {
        // Entry point for callers with no transaction id (tests,
        // agent-relayed client commits). Spill-failure containment
        // happens inside `notify_committed_txn`; the error itself only
        // matters to callers that tie it to a commit.
        let _ = self.notify_committed_txn(origin, updates, 0);
    }

    /// [`Self::notify_committed`] with the committing transaction id
    /// stamped into the durable update log (DESIGN.md § 14). `txn` lets
    /// restart recovery cross-check the durable stream against the main
    /// WAL; pass 0 when there is no meaningful transaction.
    ///
    /// `Err` means the durable spill failed: the batch was fanned out
    /// live but **unlogged**, and the retained replay window was
    /// surrendered — any replay across the resulting hole would have
    /// silently skipped a committed update, so replays now fall back to
    /// `ResyncRequired` until the window refills.
    pub fn notify_committed_txn(
        &self,
        origin: Option<ClientId>,
        updates: &[UpdateInfo],
        txn: u64,
    ) -> DbResult<()> {
        // Append to the replay log *before* fan-out: by the time any
        // outbox decides to drop this commit (overflow, lagging), the
        // log already retains it for cursor catch-up — and when the log
        // is durable, the batch hits stable storage before any client
        // can observe it (durable before deliverable).
        let (seqno, spill_err) = match self.log.append(origin, updates, txn) {
            Ok(s) => (s, None),
            Err(e) => {
                self.log.truncate_all();
                (None, Some(e))
            }
        };
        // Snapshot phase: under the table lock, record only *who* gets
        // *which* update (sink + interest clone). Event construction —
        // which clones eager payloads — and the per-holder enqueue both
        // run after the lock is released, so a slow outbox enqueue can
        // no longer stall lock registration on every other connection.
        let snapshot = {
            let state = self.state.lock();
            let mut out: Vec<(usize, Arc<dyn EventSink>, Option<Interest>)> = Vec::new();
            for (idx, update) in updates.iter().enumerate() {
                // Intersect stage: the commit meets the interest table,
                // whether or not any holder ends up notified.
                displaydb_common::trace::record(
                    update.trace,
                    displaydb_common::trace::Stage::Intersect,
                );
                let Some(holders) = state.holders.get(&update.oid) else {
                    continue;
                };
                for &holder in holders {
                    if !self.config.notify_originator && Some(holder) == origin {
                        continue;
                    }
                    let Some(sink) = state.sinks.get(&holder) else {
                        continue;
                    };
                    let interest = state
                        .interest
                        .get(&holder)
                        .and_then(|per_client| per_client.get(&update.oid))
                        .cloned();
                    out.push((idx, Arc::clone(sink), interest));
                }
            }
            out
        };
        let mut notified: Vec<Arc<dyn EventSink>> = Vec::new();
        for (idx, sink, interest) in snapshot {
            let Some(event) = self.event_for(&updates[idx], interest.as_ref()) else {
                continue;
            };
            let is_delta = matches!(event, DlmEvent::Delta { .. });
            let delivered = match seqno {
                Some(s) => sink.deliver_logged(event, s),
                None => sink.deliver(event),
            };
            if delivered.is_ok() {
                self.stats.notifications.inc();
                if is_delta {
                    self.stats.delta_notifications.inc();
                }
                if seqno.is_some() && !notified.iter().any(|s| Arc::ptr_eq(s, &sink)) {
                    notified.push(sink);
                }
            } else {
                self.stats.delivery_failures.inc();
            }
        }
        // Only now — with the whole commit enqueued per sink — may the
        // ack frontier move (see `EventSink::advance_frontier`).
        if let Some(s) = seqno {
            for sink in notified {
                sink.advance_frontier(s);
            }
        }
        match spill_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Build the event `update` produces for a holder with `interest`,
    /// applying the same projection-intersection, eager-stripping, and
    /// suppression rules on the live fan-out and replay paths. `None`
    /// means the holder's projection suppresses the notification.
    fn event_for(&self, update: &UpdateInfo, interest: Option<&Interest>) -> Option<DlmEvent> {
        match (interest, &update.changed) {
            (Some(interest), Some(changed)) if !update.deleted => {
                let projected: Vec<(u16, Vec<u8>)> = changed
                    .iter()
                    .filter(|(attr, _)| interest.attrs.binary_search(attr).is_ok())
                    .cloned()
                    .collect();
                if projected.is_empty() {
                    self.stats.suppressed_notifications.inc();
                    return None;
                }
                Some(DlmEvent::Delta {
                    oid: update.oid,
                    version: interest.version,
                    changed: projected,
                    trace: update.trace,
                })
            }
            _ => {
                let mut info = update.clone();
                if !self.config.eager_shipping {
                    info.payload = None; // lazy protocols never ship state
                }
                info.changed = None; // deltas carry changes; Updated never does
                Some(DlmEvent::Updated(info))
            }
        }
    }

    /// Serve a [`crate::proto::DlmRequest::ReplayFrom`] for `client`:
    /// stream every logged commit past `cursor`, filtered through the
    /// client's *current* registrations (it re-locked before replaying),
    /// then mark it current through the log head so its outbox acks the
    /// new cursor. Falls back to exactly one `ResyncRequired` covering
    /// the client's watched objects when the cursor has been truncated
    /// out of the log.
    ///
    /// The client's outbox is restored (replay-pending/lagging cleared,
    /// high-water reset) *before* the log snapshot, so commits racing
    /// with the replay are enqueued live rather than dropped; seqno-aware
    /// coalescing keeps latest-wins correct across the interleave.
    pub fn replay_for(&self, client: ClientId, cursor: u64) -> ReplayOutcome {
        let (sink, watched, interest) = {
            let state = self.state.lock();
            let Some(sink) = state.sinks.get(&client) else {
                return ReplayOutcome::UnknownClient;
            };
            let watched: Vec<Oid> = state
                .by_client
                .get(&client)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            let interest: HashMap<Oid, Interest> =
                state.interest.get(&client).cloned().unwrap_or_default();
            (Arc::clone(sink), watched, interest)
        };
        sink.replay_restore();
        match self.log.replay_from(cursor) {
            ReplaySlice::Truncated { head } => {
                self.log.stats().truncated_replays.inc();
                let oids = watched.len();
                if sink
                    .deliver(DlmEvent::ResyncRequired { oids: watched })
                    .is_err()
                {
                    self.stats.delivery_failures.inc();
                }
                sink.mark_current_through(head);
                ReplayOutcome::Truncated { oids, head }
            }
            ReplaySlice::Events { entries, head } => {
                let watched: HashSet<Oid> = watched.into_iter().collect();
                let mut delivered = 0usize;
                'entries: for entry in &entries {
                    if !self.config.notify_originator && entry.origin == Some(client) {
                        continue;
                    }
                    for update in &entry.updates {
                        if !watched.contains(&update.oid) {
                            continue;
                        }
                        let Some(event) = self.event_for(update, interest.get(&update.oid)) else {
                            continue;
                        };
                        // Replayed events re-enter the pipeline at the
                        // Intersect stage so the OBS breakdown can
                        // attribute replay latency (DESIGN.md § 12).
                        displaydb_common::trace::record(
                            update.trace,
                            displaydb_common::trace::Stage::Intersect,
                        );
                        if sink.deliver_replayed(event, entry.seqno).is_err() {
                            self.stats.delivery_failures.inc();
                            break 'entries;
                        }
                        delivered += 1;
                    }
                }
                sink.mark_current_through(head);
                self.log.stats().replays_served.inc();
                self.log.stats().replayed_events.add(delivered as u64);
                ReplayOutcome::Replayed {
                    events: delivered,
                    head,
                }
            }
        }
    }

    /// Early-notify: tell holders an exclusive lock was just acquired on
    /// `oids`. No-op under [`NotifyProtocol::PostCommit`].
    pub fn notify_intent(&self, origin: Option<ClientId>, oids: &[Oid], txn: TxnId) {
        if self.config.protocol != NotifyProtocol::EarlyNotify {
            return;
        }
        self.fan_out_intent(origin, oids, |oid| DlmEvent::Marked { oid, txn });
    }

    /// Early-notify: tell holders whether the marked transaction
    /// committed. No-op under [`NotifyProtocol::PostCommit`].
    pub fn notify_resolution(
        &self,
        origin: Option<ClientId>,
        oids: &[Oid],
        txn: TxnId,
        committed: bool,
    ) {
        if self.config.protocol != NotifyProtocol::EarlyNotify {
            return;
        }
        self.fan_out_intent(origin, oids, |oid| DlmEvent::Resolved {
            oid,
            txn,
            committed,
        });
    }

    fn fan_out_intent(
        &self,
        origin: Option<ClientId>,
        oids: &[Oid],
        make: impl Fn(Oid) -> DlmEvent,
    ) {
        let deliveries = {
            let state = self.state.lock();
            let mut out: Vec<(Arc<dyn EventSink>, DlmEvent)> = Vec::new();
            for &oid in oids {
                let Some(holders) = state.holders.get(&oid) else {
                    continue;
                };
                for &holder in holders {
                    if !self.config.notify_originator && Some(holder) == origin {
                        continue;
                    }
                    if let Some(sink) = state.sinks.get(&holder) {
                        out.push((Arc::clone(sink), make(oid)));
                    }
                }
            }
            out
        };
        for (sink, event) in deliveries {
            if sink.deliver(event).is_ok() {
                self.stats.intent_notifications.inc();
            } else {
                self.stats.delivery_failures.inc();
            }
        }
    }
}

impl Default for DlmCore {
    fn default() -> Self {
        Self::new(DlmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use displaydb_common::DbError;

    fn sink() -> (Arc<dyn EventSink>, Receiver<DlmEvent>) {
        let (tx, rx): (Sender<DlmEvent>, Receiver<DlmEvent>) = unbounded();
        let f = move |e: DlmEvent| tx.send(e).map_err(|_| DbError::Disconnected);
        (Arc::new(f), rx)
    }

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    #[test]
    fn lock_release_holders() {
        let dlm = DlmCore::default();
        dlm.lock(c(1), &[o(1), o(2)]);
        dlm.lock(c(2), &[o(2)]);
        assert_eq!(dlm.holders(o(1)), vec![c(1)]);
        assert_eq!(dlm.holders(o(2)).len(), 2);
        dlm.release(c(1), &[o(2)]);
        assert_eq!(dlm.holders(o(2)), vec![c(2)]);
        assert_eq!(dlm.locked_objects(), 2);
        dlm.release(c(2), &[o(2)]);
        assert_eq!(dlm.locked_objects(), 1);
    }

    #[test]
    fn post_commit_notifies_holders_not_originator() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        let (s2, r2) = sink();
        dlm.register_client(c(1), s1);
        dlm.register_client(c(2), s2);
        dlm.lock(c(1), &[o(7)]);
        dlm.lock(c(2), &[o(7)]);
        dlm.notify_committed(Some(c(2)), &[UpdateInfo::lazy(o(7))]);
        // Holder 1 notified; originator 2 skipped.
        assert_eq!(
            r1.try_recv().unwrap(),
            DlmEvent::Updated(UpdateInfo::lazy(o(7)))
        );
        assert!(r2.try_recv().is_err());
        assert_eq!(dlm.stats().notifications.get(), 1);
    }

    #[test]
    fn lock_registration_is_not_blocked_by_inflight_fanout() {
        // Regression: `notify_committed_txn` used to hold the DLM state
        // lock across the entire holder fan-out, so one slow sink
        // stalled every lock registration on every other connection.
        // The fix snapshots (sink, interest) under the lock and delivers
        // outside it. A sink parked mid-delivery stands in for the slow
        // consumer; `lock()` from another client must complete while it
        // is still parked.
        use std::time::Duration;
        let dlm = Arc::new(DlmCore::default());
        let (entered_tx, entered_rx) = unbounded();
        let (release_tx, release_rx) = unbounded::<()>();
        let parked = move |e: DlmEvent| {
            let _ = entered_tx.send(e);
            let _ = release_rx.recv();
            Ok(())
        };
        dlm.register_client(c(1), Arc::new(parked));
        dlm.lock(c(1), &[o(1)]);

        let fanout = {
            let dlm = Arc::clone(&dlm);
            std::thread::spawn(move || {
                dlm.notify_committed(None, &[UpdateInfo::lazy(o(1))]);
            })
        };
        // Wait until the fan-out is parked inside the sink.
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("fan-out never reached the sink");

        let (locked_tx, locked_rx) = unbounded();
        let locker = {
            let dlm = Arc::clone(&dlm);
            std::thread::spawn(move || {
                dlm.lock(c(2), &[o(2)]);
                let _ = locked_tx.send(());
            })
        };
        locked_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("lock() stalled behind a parked fan-out");
        assert_eq!(dlm.holders(o(2)), vec![c(2)]);

        release_tx.send(()).unwrap();
        fanout.join().unwrap();
        locker.join().unwrap();
        assert_eq!(dlm.stats().notifications.get(), 1);
    }

    #[test]
    fn notify_originator_config() {
        let dlm = DlmCore::new(DlmConfig {
            notify_originator: true,
            ..DlmConfig::default()
        });
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(7)]);
        dlm.notify_committed(Some(c(1)), &[UpdateInfo::lazy(o(7))]);
        assert!(r1.try_recv().is_ok());
    }

    #[test]
    fn non_holders_not_notified() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(1)]);
        dlm.notify_committed(None, &[UpdateInfo::lazy(o(99))]);
        assert!(r1.try_recv().is_err());
        assert_eq!(dlm.stats().notifications.get(), 0);
    }

    #[test]
    fn eager_shipping_controls_payload() {
        // Lazy DLM strips payloads even if the reporter attached them.
        let lazy = DlmCore::default();
        let (s1, r1) = sink();
        lazy.register_client(c(1), s1);
        lazy.lock(c(1), &[o(1)]);
        lazy.notify_committed(None, &[UpdateInfo::eager(o(1), vec![1, 2])]);
        match r1.try_recv().unwrap() {
            DlmEvent::Updated(u) => assert!(u.payload.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        // Eager DLM forwards them.
        let eager = DlmCore::new(DlmConfig {
            eager_shipping: true,
            ..DlmConfig::default()
        });
        let (s2, r2) = sink();
        eager.register_client(c(1), s2);
        eager.lock(c(1), &[o(1)]);
        eager.notify_committed(None, &[UpdateInfo::eager(o(1), vec![1, 2])]);
        match r2.try_recv().unwrap() {
            DlmEvent::Updated(u) => assert_eq!(u.payload, Some(vec![1, 2])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn early_notify_marks_and_resolves() {
        let dlm = DlmCore::new(DlmConfig {
            protocol: NotifyProtocol::EarlyNotify,
            ..DlmConfig::default()
        });
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(3)]);
        let txn = TxnId::new(42);
        dlm.notify_intent(Some(c(2)), &[o(3)], txn);
        assert_eq!(r1.try_recv().unwrap(), DlmEvent::Marked { oid: o(3), txn });
        dlm.notify_resolution(Some(c(2)), &[o(3)], txn, true);
        assert_eq!(
            r1.try_recv().unwrap(),
            DlmEvent::Resolved {
                oid: o(3),
                txn,
                committed: true
            }
        );
        assert_eq!(dlm.stats().intent_notifications.get(), 2);
    }

    #[test]
    fn post_commit_protocol_suppresses_intents() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(3)]);
        dlm.notify_intent(None, &[o(3)], TxnId::new(1));
        dlm.notify_resolution(None, &[o(3)], TxnId::new(1), true);
        assert!(r1.try_recv().is_err());
    }

    #[test]
    fn unregister_drops_locks_and_sink() {
        let dlm = DlmCore::default();
        let (s1, _r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(1), o(2)]);
        dlm.unregister_client(c(1));
        assert_eq!(dlm.locked_objects(), 0);
        dlm.notify_committed(None, &[UpdateInfo::lazy(o(1))]);
        assert_eq!(dlm.stats().notifications.get(), 0);
    }

    #[test]
    fn dead_sink_counted_as_failure() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        drop(r1); // kill the receiver
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(1)]);
        dlm.notify_committed(None, &[UpdateInfo::lazy(o(1))]);
        assert_eq!(dlm.stats().delivery_failures.get(), 1);
        assert_eq!(dlm.stats().notifications.get(), 0);
    }

    #[test]
    fn projected_holder_receives_intersected_delta() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1, 3], 7);
        let update =
            UpdateInfo::lazy(o(5)).with_changes(vec![(0, vec![9]), (1, vec![10]), (3, vec![11])]);
        dlm.notify_committed(None, &[update]);
        assert_eq!(
            r1.try_recv().unwrap(),
            DlmEvent::Delta {
                oid: o(5),
                version: 7,
                changed: vec![(1, vec![10]), (3, vec![11])],
                trace: 0,
            }
        );
        assert_eq!(dlm.stats().delta_notifications.get(), 1);
        assert_eq!(dlm.stats().notifications.get(), 1);
    }

    #[test]
    fn commit_outside_projection_is_suppressed() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1], 1);
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(0, vec![9]), (2, vec![8])])],
        );
        assert!(r1.try_recv().is_err());
        assert_eq!(dlm.stats().suppressed_notifications.get(), 1);
        assert_eq!(dlm.stats().notifications.get(), 0);
    }

    #[test]
    fn full_interest_holder_still_gets_updated() {
        // A second holder without a projection sees the classic event,
        // with change info stripped (Updated never carries it).
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        let (s2, r2) = sink();
        dlm.register_client(c(1), s1);
        dlm.register_client(c(2), s2);
        dlm.lock_projected(c(1), &[o(5)], &[1], 3);
        dlm.lock(c(2), &[o(5)]);
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(1, vec![4])])],
        );
        assert!(matches!(r1.try_recv().unwrap(), DlmEvent::Delta { .. }));
        match r2.try_recv().unwrap() {
            DlmEvent::Updated(u) => assert!(u.changed.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_without_change_info_falls_back_to_updated() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1], 1);
        dlm.notify_committed(None, &[UpdateInfo::lazy(o(5))]);
        assert!(matches!(r1.try_recv().unwrap(), DlmEvent::Updated(_)));
        assert_eq!(dlm.stats().delta_notifications.get(), 0);
    }

    #[test]
    fn deletion_overrides_projection() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1], 1);
        dlm.notify_committed(
            None,
            &[UpdateInfo::deletion(o(5)).with_changes(vec![(0, vec![1])])],
        );
        match r1.try_recv().unwrap() {
            DlmEvent::Updated(u) => assert!(u.deleted),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plain_relock_widens_projection_to_full_interest() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1], 1);
        dlm.lock(c(1), &[o(5)]);
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(0, vec![2])])],
        );
        assert!(matches!(r1.try_recv().unwrap(), DlmEvent::Updated(_)));
    }

    #[test]
    fn release_clears_projected_interest() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[1], 1);
        dlm.release(c(1), &[o(5)]);
        dlm.lock(c(1), &[o(5)]);
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(0, vec![2])])],
        );
        assert!(matches!(r1.try_recv().unwrap(), DlmEvent::Updated(_)));
    }

    #[test]
    fn reregistration_replaces_projection() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock_projected(c(1), &[o(5)], &[0], 1);
        dlm.lock_projected(c(1), &[o(5)], &[2], 2);
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(0, vec![9])])],
        );
        assert!(r1.try_recv().is_err(), "old projection must not survive");
        dlm.notify_committed(
            None,
            &[UpdateInfo::lazy(o(5)).with_changes(vec![(2, vec![9])])],
        );
        assert_eq!(
            r1.try_recv().unwrap(),
            DlmEvent::Delta {
                oid: o(5),
                version: 2,
                changed: vec![(2, vec![9])],
                trace: 0,
            }
        );
    }

    #[test]
    fn interest_queries_reflect_registrations() {
        let dlm = DlmCore::default();
        let (s1, _r1) = sink();
        dlm.register_client(c(1), s1);
        assert!(!dlm.has_interest(c(1), o(5)));
        dlm.lock_projected(c(1), &[o(5)], &[1, 3], 1);
        assert!(dlm.has_interest(c(1), o(5)));
        assert!(!dlm.has_interest(c(1), o(6)));
        assert!(dlm.interest_covers(c(1), o(5), &[1]));
        assert!(dlm.interest_covers(c(1), o(5), &[1, 3]));
        assert!(dlm.interest_covers(c(1), o(5), &[]));
        assert!(!dlm.interest_covers(c(1), o(5), &[1, 2]));
        assert!(!dlm.interest_covers(c(1), o(6), &[1]));
        // A plain relock widens to full interest — which means the copy
        // is no longer delta-maintained, so coverage must report false.
        dlm.lock(c(1), &[o(5)]);
        assert!(!dlm.has_interest(c(1), o(5)));
        assert!(!dlm.interest_covers(c(1), o(5), &[1]));
    }

    #[test]
    fn one_notification_per_holder_per_update() {
        let dlm = DlmCore::default();
        let (s1, r1) = sink();
        dlm.register_client(c(1), s1);
        dlm.lock(c(1), &[o(1), o(2)]);
        dlm.notify_committed(
            None,
            &[
                UpdateInfo::lazy(o(1)),
                UpdateInfo::lazy(o(2)),
                UpdateInfo::lazy(o(3)),
            ],
        );
        assert_eq!(r1.try_iter().count(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::proto::UpdateInfo;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    /// Model-based test: the DLM's holder table must behave exactly like
    /// a map of sets under arbitrary lock/release/unregister sequences,
    /// and notifications must reach exactly the modelled holders.
    #[derive(Debug, Clone)]
    enum Op {
        Lock { client: u64, oids: Vec<u64> },
        Release { client: u64, oids: Vec<u64> },
        Unregister { client: u64 },
        Update { origin: u64, oid: u64 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let client = 0u64..6;
        let oids = proptest::collection::vec(0u64..12, 1..4);
        prop_oneof![
            (client.clone(), oids.clone()).prop_map(|(client, oids)| Op::Lock { client, oids }),
            (client.clone(), oids).prop_map(|(client, oids)| Op::Release { client, oids }),
            client.clone().prop_map(|client| Op::Unregister { client }),
            (client, 0u64..12).prop_map(|(origin, oid)| Op::Update { origin, oid }),
        ]
    }

    proptest! {
        #[test]
        fn prop_dlm_matches_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
            let dlm = DlmCore::new(DlmConfig::default());
            let mut model: HashMap<u64, HashSet<u64>> = HashMap::new(); // oid -> clients
            let mut registered: HashSet<u64> = HashSet::new();
            // Each client gets a queue-backed sink.
            let mut rxs: HashMap<u64, crossbeam::channel::Receiver<DlmEvent>> = HashMap::new();
            let register = |dlm: &DlmCore, rxs: &mut HashMap<u64, crossbeam::channel::Receiver<DlmEvent>>, c: u64| {
                let (tx, rx) = crossbeam::channel::unbounded();
                dlm.register_client(ClientId::new(c), Arc::new(move |e: DlmEvent| {
                    tx.send(e).map_err(|_| displaydb_common::DbError::Disconnected)
                }));
                rxs.insert(c, rx);
            };

            for op in ops {
                match op {
                    Op::Lock { client, oids } => {
                        if !registered.contains(&client) {
                            register(&dlm, &mut rxs, client);
                            registered.insert(client);
                        }
                        let oids: Vec<Oid> = oids.iter().map(|&o| Oid::new(o)).collect();
                        dlm.lock(ClientId::new(client), &oids);
                        for oid in &oids {
                            model.entry(oid.raw()).or_default().insert(client);
                        }
                    }
                    Op::Release { client, oids } => {
                        let oids: Vec<Oid> = oids.iter().map(|&o| Oid::new(o)).collect();
                        dlm.release(ClientId::new(client), &oids);
                        for oid in &oids {
                            if let Some(set) = model.get_mut(&oid.raw()) {
                                set.remove(&client);
                                if set.is_empty() {
                                    model.remove(&oid.raw());
                                }
                            }
                        }
                    }
                    Op::Unregister { client } => {
                        dlm.unregister_client(ClientId::new(client));
                        registered.remove(&client);
                        rxs.remove(&client);
                        model.retain(|_, set| {
                            set.remove(&client);
                            !set.is_empty()
                        });
                    }
                    Op::Update { origin, oid } => {
                        dlm.notify_committed(
                            Some(ClientId::new(origin)),
                            &[UpdateInfo::lazy(Oid::new(oid))],
                        );
                        // Exactly the modelled holders (minus origin,
                        // minus unregistered) get the event.
                        let expected: HashSet<u64> = model
                            .get(&oid)
                            .map(|s| {
                                s.iter()
                                    .copied()
                                    .filter(|&c| c != origin && registered.contains(&c))
                                    .collect()
                            })
                            .unwrap_or_default();
                        for (&c, rx) in rxs.iter() {
                            let got = rx.try_iter().count();
                            let want = usize::from(expected.contains(&c));
                            prop_assert_eq!(
                                got, want,
                                "client {} got {} events, wanted {}", c, got, want
                            );
                        }
                    }
                }
                // Holder sets always agree with the model.
                for (&oid, clients) in &model {
                    let mut actual: Vec<u64> =
                        dlm.holders(Oid::new(oid)).iter().map(|c| c.raw()).collect();
                    actual.sort_unstable();
                    let mut expected: Vec<u64> = clients.iter().copied().collect();
                    expected.sort_unstable();
                    prop_assert_eq!(actual, expected);
                }
                prop_assert_eq!(dlm.locked_objects(), model.len());
            }
        }
    }
}
