//! Per-client bounded outboxes with coalescing and overflow-to-resync
//! (DESIGN.md § 9).
//!
//! The fan-out loop in [`crate::core::DlmCore`] delivers synchronously,
//! which is perfect for tests and for in-process sinks but means one
//! stalled consumer can block delivery to every healthy one and one
//! stalled *connection* can grow an unbounded send queue. Both
//! deployments therefore wrap their per-client sinks in an
//! [`OutboxSink`] at registration time:
//!
//! * **bounded queue** — `deliver` is a non-blocking push into a
//!   [`CoalescingQueue`] capped at the configured high-water mark; a
//!   dedicated writer thread (`dlm-outbox`) drains it and performs the
//!   actual (possibly blocking) send,
//! * **coalescing** — a newer `Updated{oid}` replaces a queued one in
//!   place (latest state wins, queue position preserved so nothing
//!   reorders), and a `Resolved` cancels its still-queued `Marked`,
//! * **overflow-to-resync** — breaching the high-water mark sweeps the
//!   queue into a single `ResyncRequired{oids}` marker: the client
//!   re-reads those objects instead of replaying a backlog, bounding
//!   memory at O(watched objects),
//! * **slow-consumer demotion** — after N consecutive sweeps the client
//!   enters *resync-only* ("lagging") mode: every notification folds
//!   into the pending resync marker and a single [`DlmEvent::Lagging`]
//!   tells the display layer to render staleness. The mode clears once
//!   the outbox fully drains.

use crate::core::EventSink;
use crate::proto::DlmEvent;
use displaydb_common::metrics::OverloadStats;
use displaydb_common::sync::{ranks, OrderedCondvar, OrderedMutex};
use displaydb_common::{DbResult, Oid, OverloadConfig};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What [`CoalescingQueue::push`] did with an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pushed {
    /// Appended at the tail.
    Queued,
    /// Merged into an already-queued event (same-OID `Updated` replaced
    /// in place, or OIDs folded into a pending `ResyncRequired`).
    Coalesced,
    /// A queued `Marked` and this `Resolved` cancelled each other out.
    Cancelled,
    /// The push breached the high-water mark: the whole queue was swept
    /// into one `ResyncRequired` marker.
    Overflowed,
}

/// A bounded notification queue with latest-state-wins coalescing.
///
/// Pure data structure (no threads, no I/O) so its invariants are
/// directly proptestable; [`OutboxSink`] owns one behind a mutex.
/// Operations are linear scans over at most `high_water` entries, which
/// is deliberate: the bound is small (default 64) and a scan of a short
/// `VecDeque` beats maintaining index maps at these sizes.
#[derive(Debug)]
pub struct CoalescingQueue {
    queue: VecDeque<DlmEvent>,
    high_water: usize,
}

impl CoalescingQueue {
    /// An empty queue sweeping to resync past `high_water` entries.
    pub fn new(high_water: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            high_water: high_water.max(2),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Remove and return the oldest event.
    pub fn pop(&mut self) -> Option<DlmEvent> {
        self.queue.pop_front()
    }

    /// Push one event, coalescing against the queued ones.
    pub fn push(&mut self, event: DlmEvent) -> Pushed {
        let outcome = self.coalesce_or_queue(event);
        if self.queue.len() > self.high_water {
            self.sweep_to_resync();
            return Pushed::Overflowed;
        }
        outcome
    }

    fn coalesce_or_queue(&mut self, event: DlmEvent) -> Pushed {
        match &event {
            DlmEvent::Updated(info) => {
                // Latest state wins: replace a queued Updated for the
                // same OID *in place* so relative order is preserved.
                for queued in self.queue.iter_mut() {
                    match queued {
                        DlmEvent::Updated(q) if q.oid == info.oid => {
                            *queued = event;
                            return Pushed::Coalesced;
                        }
                        // A pending resync marker already covers any
                        // state change to its OIDs.
                        DlmEvent::ResyncRequired { oids } if oids.contains(&info.oid) => {
                            return Pushed::Coalesced;
                        }
                        _ => {}
                    }
                }
            }
            DlmEvent::Resolved { oid, txn, .. } => {
                // The intent never reached the client: drop the pair.
                let pos = self.queue.iter().position(
                    |q| matches!(q, DlmEvent::Marked { oid: m, txn: t } if m == oid && t == txn),
                );
                if let Some(pos) = pos {
                    self.queue.remove(pos);
                    return Pushed::Cancelled;
                }
            }
            DlmEvent::ResyncRequired { oids } => {
                // Fold into an existing marker rather than queue two.
                let fold: Vec<Oid> = oids.clone();
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::ResyncRequired { oids: existing } = queued {
                        for oid in fold {
                            if !existing.contains(&oid) {
                                existing.push(oid);
                            }
                        }
                        return Pushed::Coalesced;
                    }
                }
            }
            DlmEvent::Lagging => {
                // One staleness signal is as good as ten.
                if self.queue.iter().any(|q| matches!(q, DlmEvent::Lagging)) {
                    return Pushed::Coalesced;
                }
            }
            DlmEvent::Delta {
                oid,
                version,
                changed,
                trace,
            } => {
                // Consecutive deltas for the same object merge: union of
                // the changed attribute sets, newest value per attribute.
                // Dropping the older delta outright (latest-wins, as
                // Updated does) would lose attributes the newer delta
                // does not mention.
                for queued in self.queue.iter_mut() {
                    match queued {
                        DlmEvent::Delta {
                            oid: q_oid,
                            version: q_version,
                            changed: q_changed,
                            trace: q_trace,
                        } if q_oid == oid && q_version == version => {
                            for (attr, value) in changed {
                                match q_changed.iter_mut().find(|(a, _)| a == attr) {
                                    Some((_, v)) => *v = value.clone(),
                                    None => q_changed.push((*attr, value.clone())),
                                }
                            }
                            q_changed.sort_by_key(|(a, _)| *a);
                            // Latest commit wins the merged event's trace,
                            // matching the values it carries.
                            if *trace != 0 {
                                *q_trace = *trace;
                            }
                            return Pushed::Coalesced;
                        }
                        // A pending resync marker already forces a full
                        // re-read of this object.
                        DlmEvent::ResyncRequired { oids } if oids.contains(oid) => {
                            return Pushed::Coalesced;
                        }
                        _ => {}
                    }
                }
            }
            DlmEvent::Marked { .. } | DlmEvent::Ready | DlmEvent::Batch(_) => {}
        }
        self.queue.push_back(event);
        Pushed::Queued
    }

    /// Replace everything queued with a single `ResyncRequired` marker
    /// covering every OID a swept event referenced.
    fn sweep_to_resync(&mut self) {
        let mut oids: Vec<Oid> = Vec::new();
        let mut add = |oid: Oid| {
            if !oids.contains(&oid) {
                oids.push(oid);
            }
        };
        for event in self.queue.drain(..) {
            match event {
                DlmEvent::Updated(info) => add(info.oid),
                DlmEvent::Marked { oid, .. }
                | DlmEvent::Resolved { oid, .. }
                | DlmEvent::Delta { oid, .. } => add(oid),
                DlmEvent::ResyncRequired { oids: swept } => swept.into_iter().for_each(&mut add),
                DlmEvent::Ready | DlmEvent::Lagging | DlmEvent::Batch(_) => {}
            }
        }
        oids.sort_unstable();
        self.queue.push_back(DlmEvent::ResyncRequired { oids });
    }

    /// Every OID the queued events reference (diagnostics/tests).
    pub fn pending_oids(&self) -> Vec<Oid> {
        let mut oids: Vec<Oid> = Vec::new();
        for event in &self.queue {
            match event {
                DlmEvent::Updated(info) => oids.push(info.oid),
                DlmEvent::Marked { oid, .. }
                | DlmEvent::Resolved { oid, .. }
                | DlmEvent::Delta { oid, .. } => oids.push(*oid),
                DlmEvent::ResyncRequired { oids: r } => oids.extend(r.iter().copied()),
                DlmEvent::Ready | DlmEvent::Lagging | DlmEvent::Batch(_) => {}
            }
        }
        oids.sort_unstable();
        oids.dedup();
        oids
    }
}

struct OutboxState {
    queue: CoalescingQueue,
    /// Consecutive high-water sweeps without the queue draining.
    consecutive_overflows: u32,
    /// Resync-only mode (slow consumer). Sticky until the queue drains.
    lagging: bool,
    /// Writer asked to exit (client unregistered / server shutdown).
    shutdown: bool,
    /// The inner sink failed; all further deliveries are refused.
    dead: bool,
    /// The writer has popped a batch it has not yet handed to the inner
    /// sink. Drainers must treat this as undelivered work: an empty
    /// queue alone does not mean the tail reached the client.
    in_flight: bool,
}

struct OutboxShared {
    state: OrderedMutex<OutboxState>,
    /// Wakes the writer (work queued or shutdown).
    work: OrderedCondvar,
    /// Wakes drainers (queue just emptied or writer exited).
    idle: OrderedCondvar,
    config: OverloadConfig,
    stats: OverloadStats,
}

/// A bounded, coalescing outbox wrapped around a blocking sink.
///
/// `deliver` never blocks and never performs I/O: it coalesces into the
/// bounded queue and wakes the writer thread, which owns the only calls
/// into the wrapped sink. Created via [`OutboxSink::wrap`] at client
/// registration time (the DLM agent wraps its wire-channel sink, the
/// integrated server wraps its session sink).
pub struct OutboxSink {
    inner: Arc<dyn EventSink>,
    shared: Arc<OutboxShared>,
}

impl OutboxSink {
    /// Wrap `inner`, spawning the writer thread.
    pub fn wrap(
        inner: Arc<dyn EventSink>,
        config: OverloadConfig,
        stats: OverloadStats,
    ) -> Arc<Self> {
        let shared = Arc::new(OutboxShared {
            state: OrderedMutex::new(
                ranks::OUTBOX_STATE,
                OutboxState {
                    queue: CoalescingQueue::new(config.outbox_high_water),
                    consecutive_overflows: 0,
                    lagging: false,
                    shutdown: false,
                    dead: false,
                    in_flight: false,
                },
            ),
            work: OrderedCondvar::new(),
            idle: OrderedCondvar::new(),
            config,
            stats,
        });
        let sink = Arc::new(Self {
            inner: Arc::clone(&inner),
            shared: Arc::clone(&shared),
        });
        std::thread::Builder::new()
            .name("dlm-outbox".into())
            .spawn(move || writer_loop(&shared, &inner))
            .expect("spawn dlm-outbox");
        sink
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Whether the client is demoted to resync-only mode.
    pub fn is_lagging(&self) -> bool {
        self.shared.state.lock().lagging
    }

    /// Block until the queue is flushed to the inner sink or `timeout`
    /// elapses; returns whether it flushed. Used by server shutdown to
    /// give healthy clients their tail notifications without letting a
    /// stalled one wedge the process.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            let flushed = state.queue.is_empty() && !state.in_flight;
            if flushed || state.dead {
                return flushed;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if self
                .shared
                .idle
                .wait_for(&mut state, deadline - now)
                .timed_out()
            {
                return state.queue.is_empty() && !state.in_flight;
            }
        }
    }
}

impl EventSink for OutboxSink {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        event.record_stage(displaydb_common::trace::Stage::OutboxEnqueue);
        let stats = &self.shared.stats;
        let mut state = self.shared.state.lock();
        if state.dead || state.shutdown {
            return Err(displaydb_common::DbError::Disconnected);
        }
        let pushed = if state.lagging {
            // Resync-only mode: fold the event's objects into the
            // pending marker instead of growing a backlog.
            match to_resync_marker(&event) {
                Some(marker) => state.queue.push(marker),
                None => state.queue.push(event),
            }
        } else {
            state.queue.push(event)
        };
        stats.enqueued.inc();
        match pushed {
            Pushed::Queued => {}
            Pushed::Coalesced => stats.coalesced.inc(),
            Pushed::Cancelled => stats.cancelled_pairs.inc(),
            Pushed::Overflowed => {
                stats.overflows.inc();
                stats.resyncs_sent.inc();
                state.consecutive_overflows += 1;
                if !state.lagging
                    && state.consecutive_overflows >= self.shared.config.lagging_after_overflows
                {
                    state.lagging = true;
                    stats.lagging_transitions.inc();
                    // Queued after the marker: the client resyncs, then
                    // learns it is lagging.
                    state.queue.push(DlmEvent::Lagging);
                }
            }
        }
        // Shared gauge: the high-water side is a monotonic max across
        // all outboxes, which is the quantity the experiments report.
        stats.queue_depth.set(state.queue.len() as u64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    fn close(&self) {
        let mut state = self.shared.state.lock();
        state.shutdown = true;
        drop(state);
        // Wake the writer so it exits; deliberately no join — the
        // writer may be blocked inside a stalled send, and close must
        // not inherit that stall.
        self.shared.work.notify_one();
        self.shared.idle.notify_all();
        self.inner.close();
    }
}

impl Drop for OutboxSink {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for OutboxSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock();
        f.debug_struct("OutboxSink")
            .field("depth", &state.queue.len())
            .field("lagging", &state.lagging)
            .field("dead", &state.dead)
            .finish()
    }
}

/// The resync-only rendering of an event, if it carries object state.
fn to_resync_marker(event: &DlmEvent) -> Option<DlmEvent> {
    match event {
        DlmEvent::Updated(info) => Some(DlmEvent::ResyncRequired {
            oids: vec![info.oid],
        }),
        DlmEvent::Marked { oid, .. }
        | DlmEvent::Resolved { oid, .. }
        | DlmEvent::Delta { oid, .. } => Some(DlmEvent::ResyncRequired { oids: vec![*oid] }),
        DlmEvent::Ready
        | DlmEvent::Lagging
        | DlmEvent::ResyncRequired { .. }
        | DlmEvent::Batch(_) => None,
    }
}

fn writer_loop(shared: &Arc<OutboxShared>, inner: &Arc<dyn EventSink>) {
    let batch_max = shared.config.outbox_batch_max.max(1);
    loop {
        let event = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    shared.idle.notify_all();
                    return;
                }
                if !state.queue.is_empty() {
                    // Drain everything pending (up to the batch cap) in
                    // one wake: a consumer that fell behind receives its
                    // backlog as a single wire frame instead of one
                    // frame per event.
                    let mut events = Vec::new();
                    while events.len() < batch_max {
                        match state.queue.pop() {
                            Some(e) => events.push(e),
                            None => break,
                        }
                    }
                    if state.queue.is_empty() {
                        // Fully drained: the consumer caught up, so
                        // forgive its overflow history. (Drainers are
                        // notified only after the batch is delivered.)
                        state.consecutive_overflows = 0;
                        state.lagging = false;
                    }
                    state.in_flight = true;
                    shared.stats.queue_depth.set(state.queue.len() as u64);
                    break if events.len() == 1 {
                        events.pop().expect("one event")
                    } else {
                        shared.stats.batches_sent.inc();
                        DlmEvent::Batch(events)
                    };
                }
                shared.work.wait(&mut state);
            }
        };
        // The only potentially-blocking call, outside every lock.
        event.record_stage(displaydb_common::trace::Stage::OutboxDrain);
        let delivered = inner.deliver(event).is_ok();
        let mut state = shared.state.lock();
        state.in_flight = false;
        if !delivered {
            state.dead = true;
            shared.idle.notify_all();
            return;
        }
        if state.queue.is_empty() {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::UpdateInfo;
    use crossbeam::channel::unbounded;
    use displaydb_common::{DbError, TxnId};
    use parking_lot::{Condvar, Mutex};

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    fn upd(i: u64, payload: u8) -> DlmEvent {
        DlmEvent::Updated(UpdateInfo::eager(o(i), vec![payload]))
    }

    fn delta(i: u64, version: u32, changed: &[(u16, u8)]) -> DlmEvent {
        DlmEvent::Delta {
            oid: o(i),
            version,
            changed: changed.iter().map(|&(a, v)| (a, vec![v])).collect(),
            trace: 0,
        }
    }

    /// Undo writer-side batching: receivers see what a client would after
    /// flattening.
    fn flatten(events: impl IntoIterator<Item = DlmEvent>) -> Vec<DlmEvent> {
        let mut out = Vec::new();
        for e in events {
            match e {
                DlmEvent::Batch(inner) => out.extend(inner),
                e => out.push(e),
            }
        }
        out
    }

    #[test]
    fn updated_coalesces_latest_wins_in_place() {
        let mut q = CoalescingQueue::new(16);
        assert_eq!(q.push(upd(1, 1)), Pushed::Queued);
        assert_eq!(q.push(upd(2, 1)), Pushed::Queued);
        assert_eq!(q.push(upd(1, 9)), Pushed::Coalesced);
        assert_eq!(q.len(), 2);
        // Position preserved: oid 1 still drains first, with the newest
        // payload.
        assert_eq!(q.pop(), Some(upd(1, 9)));
        assert_eq!(q.pop(), Some(upd(2, 1)));
    }

    #[test]
    fn resolved_cancels_queued_marked() {
        let mut q = CoalescingQueue::new(16);
        let txn = TxnId::new(5);
        q.push(DlmEvent::Marked { oid: o(1), txn });
        q.push(upd(2, 1));
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn,
                committed: false
            }),
            Pushed::Cancelled
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(upd(2, 1)));
    }

    #[test]
    fn resolved_without_queued_marked_queues() {
        let mut q = CoalescingQueue::new(16);
        let txn = TxnId::new(5);
        // The Marked already drained: Resolved must still go out.
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn,
                committed: true
            }),
            Pushed::Queued
        );
        // A different txn's mark is not cancelled by this txn.
        q.push(DlmEvent::Marked {
            oid: o(1),
            txn: TxnId::new(6),
        });
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn: TxnId::new(7),
                committed: true
            }),
            Pushed::Queued
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn overflow_sweeps_to_single_resync() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..4 {
            q.push(upd(i, 0));
        }
        assert_eq!(q.push(upd(99, 0)), Pushed::Overflowed);
        assert_eq!(q.len(), 1);
        match q.pop().unwrap() {
            DlmEvent::ResyncRequired { oids } => {
                assert_eq!(oids, vec![o(0), o(1), o(2), o(3), o(99)]);
            }
            other => panic!("expected resync marker, got {other:?}"),
        }
    }

    #[test]
    fn updates_fold_into_pending_resync_marker() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..5 {
            q.push(upd(i, 0));
        }
        // Marker queued; an update for a covered OID disappears into it,
        // a new OID queues normally behind it.
        assert_eq!(q.push(upd(2, 7)), Pushed::Coalesced);
        assert_eq!(q.push(upd(42, 7)), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn delta_merge_unions_changed_attrs_latest_value_wins() {
        let mut q = CoalescingQueue::new(16);
        assert_eq!(q.push(delta(1, 1, &[(0, 1), (2, 5)])), Pushed::Queued);
        assert_eq!(q.push(delta(2, 1, &[(0, 3)])), Pushed::Queued);
        // Same OID + version: union of attrs, newest value per attr,
        // position preserved (oid 1 still drains first).
        assert_eq!(q.push(delta(1, 1, &[(2, 9), (3, 4)])), Pushed::Coalesced);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(delta(1, 1, &[(0, 1), (2, 9), (3, 4)])));
        assert_eq!(q.pop(), Some(delta(2, 1, &[(0, 3)])));
    }

    #[test]
    fn delta_with_different_version_queues_separately() {
        let mut q = CoalescingQueue::new(16);
        q.push(delta(1, 1, &[(0, 1)]));
        // A version bump means the attribute indices refer to a different
        // registration; merging across versions could fabricate a delta
        // neither registration produced.
        assert_eq!(q.push(delta(1, 2, &[(0, 2)])), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn delta_folds_into_pending_resync_marker() {
        let mut q = CoalescingQueue::new(16);
        q.push(DlmEvent::ResyncRequired { oids: vec![o(1)] });
        assert_eq!(q.push(delta(1, 1, &[(0, 1)])), Pushed::Coalesced);
        assert_eq!(q.push(delta(2, 1, &[(0, 1)])), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_sweep_covers_delta_oids() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..4 {
            q.push(delta(i, 1, &[(0, 0)]));
        }
        assert_eq!(q.push(delta(99, 1, &[(0, 0)])), Pushed::Overflowed);
        match q.pop().unwrap() {
            DlmEvent::ResyncRequired { oids } => {
                assert_eq!(oids, vec![o(0), o(1), o(2), o(3), o(99)]);
            }
            other => panic!("expected resync marker, got {other:?}"),
        }
    }

    #[test]
    fn resync_markers_merge() {
        let mut q = CoalescingQueue::new(16);
        q.push(DlmEvent::ResyncRequired {
            oids: vec![o(1), o(2)],
        });
        assert_eq!(
            q.push(DlmEvent::ResyncRequired {
                oids: vec![o(2), o(3)]
            }),
            Pushed::Coalesced
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pending_oids(), vec![o(1), o(2), o(3)]);
    }

    fn collecting_sink() -> (Arc<dyn EventSink>, crossbeam::channel::Receiver<DlmEvent>) {
        let (tx, rx) = unbounded();
        let f = move |e: DlmEvent| tx.send(e).map_err(|_| DbError::Disconnected);
        (Arc::new(f), rx)
    }

    fn quick_config(high_water: usize, lagging_after: u32) -> OverloadConfig {
        OverloadConfig {
            outbox_high_water: high_water,
            lagging_after_overflows: lagging_after,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn outbox_delivers_in_order() {
        let (inner, rx) = collecting_sink();
        let outbox = OutboxSink::wrap(inner, quick_config(64, 3), OverloadStats::new());
        for i in 0..10 {
            outbox.deliver(upd(i, i as u8)).unwrap();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let got = flatten(rx.try_iter());
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(*e, upd(i as u64, i as u8));
        }
    }

    #[test]
    fn stalled_consumer_overflows_then_demotes_to_lagging() {
        // An inner sink that blocks until released: the writer thread
        // wedges on the first event, everything else queues.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), stats.clone());

        // Storm: far more updates than the high-water mark.
        for round in 0..4 {
            for i in 0..40u64 {
                outbox
                    .deliver(upd(i, round))
                    .expect("deliver must not block or fail");
            }
        }
        assert!(stats.overflows.get() >= 2, "storm must overflow");
        assert!(outbox.is_lagging(), "persistent overflow must demote");
        assert_eq!(stats.lagging_transitions.get(), 1);
        // Memory bound: depth never exceeds high-water + the marker.
        assert!(
            stats.queue_depth.high_water() <= 8 + 1,
            "depth {} breached the bound",
            stats.queue_depth.high_water()
        );

        // Release the consumer: it gets the first event (pre-stall),
        // then markers covering everything else, then Lagging — and the
        // drained outbox forgives the lag.
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)), "must drain");
        assert!(!outbox.is_lagging(), "drain clears lagging mode");
        let got = flatten(rx.try_iter());
        assert!(got.iter().any(|e| matches!(e, DlmEvent::Lagging)));
        let resynced: Vec<Oid> = got
            .iter()
            .filter_map(|e| match e {
                DlmEvent::ResyncRequired { oids } => Some(oids.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        for i in 1..40u64 {
            assert!(resynced.contains(&o(i)), "oid {i} lost in the sweep");
        }
    }

    #[test]
    fn close_stops_writer_without_flushing_stalled_queue() {
        // Inner sink blocks forever: close must still return promptly.
        let (release_tx, release_rx) = unbounded::<()>();
        let inner: Arc<dyn EventSink> = Arc::new(move |_e: DlmEvent| {
            let _ = release_rx.recv(); // blocks until test end
            Ok(())
        });
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), OverloadStats::new());
        outbox.deliver(upd(1, 1)).unwrap();
        outbox.deliver(upd(2, 2)).unwrap();
        let started = Instant::now();
        outbox.close();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "close must not wait on the stalled writer"
        );
        assert!(outbox.deliver(upd(3, 3)).is_err(), "closed outbox refuses");
        drop(release_tx);
    }

    #[test]
    fn writer_drains_backlog_as_one_batch_frame() {
        // The writer wedges on the first event; the next four queue and
        // must go out together as a single Batch when the gate opens.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap(inner, quick_config(64, 3), stats.clone());
        outbox.deliver(upd(0, 0)).unwrap();
        // Wait until the writer has taken the first event off the queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        while outbox.depth() != 0 {
            assert!(Instant::now() < deadline, "writer never picked up");
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 1..5u64 {
            outbox.deliver(upd(i, i as u8)).unwrap();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let frames: Vec<DlmEvent> = rx.try_iter().collect();
        assert_eq!(frames.len(), 2, "one stalled single + one batch frame");
        assert_eq!(frames[0], upd(0, 0));
        match &frames[1] {
            DlmEvent::Batch(events) => {
                assert_eq!(
                    events,
                    &(1..5u64).map(|i| upd(i, i as u8)).collect::<Vec<_>>()
                );
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(stats.batches_sent.get(), 1);
    }

    #[test]
    fn dead_inner_sink_kills_outbox() {
        let (inner, rx) = collecting_sink();
        drop(rx);
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), OverloadStats::new());
        outbox.deliver(upd(1, 1)).unwrap();
        // The writer hits the dead sink and marks the outbox dead;
        // subsequent delivers fail so the DLM counts the client dead.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if outbox.deliver(upd(2, 2)).is_err() {
                break;
            }
            assert!(Instant::now() < deadline, "outbox never died");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::proto::UpdateInfo;
    use displaydb_common::TxnId;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum In {
        Updated { oid: u64, version: u8 },
        Marked { oid: u64, txn: u64 },
        Resolved { oid: u64, txn: u64 },
        Delta { oid: u64, attr: u16, value: u8 },
    }

    fn arb_in() -> impl Strategy<Value = In> {
        let oid = 0u64..8;
        let txn = 0u64..4;
        prop_oneof![
            (oid.clone(), any::<u8>()).prop_map(|(oid, version)| In::Updated { oid, version }),
            (oid.clone(), txn.clone()).prop_map(|(oid, txn)| In::Marked { oid, txn }),
            (oid.clone(), txn).prop_map(|(oid, txn)| In::Resolved { oid, txn }),
            (oid, 0u16..4, any::<u8>()).prop_map(|(oid, attr, value)| In::Delta {
                oid,
                attr,
                value
            }),
        ]
    }

    fn to_event(i: &In) -> DlmEvent {
        match *i {
            In::Updated { oid, version } => {
                DlmEvent::Updated(UpdateInfo::eager(Oid::new(oid), vec![version]))
            }
            In::Marked { oid, txn } => DlmEvent::Marked {
                oid: Oid::new(oid),
                txn: TxnId::new(txn),
            },
            In::Resolved { oid, txn } => DlmEvent::Resolved {
                oid: Oid::new(oid),
                txn: TxnId::new(txn),
                committed: true,
            },
            In::Delta { oid, attr, value } => DlmEvent::Delta {
                oid: Oid::new(oid),
                version: 1,
                changed: vec![(attr, vec![value])],
                trace: 0,
            },
        }
    }

    proptest! {
        /// Without overflow, coalescing must (a) keep the *latest*
        /// payload for every OID that still has an Updated queued,
        /// (b) never emit a Resolved before its own Marked, and
        /// (c) only ever shrink the mark/resolve traffic by cancelling
        /// complete pairs.
        #[test]
        fn prop_coalescing_latest_wins_no_reorder(inputs in proptest::collection::vec(arb_in(), 1..120)) {
            // High-water above the input length: pure coalescing, no sweeps.
            let mut q = CoalescingQueue::new(1024);
            for i in &inputs {
                q.push(to_event(i));
            }
            let mut drained = Vec::new();
            while let Some(e) = q.pop() {
                drained.push(e);
            }

            // (a) latest payload wins per OID.
            let mut last_payload: std::collections::HashMap<u64, u8> = Default::default();
            for i in &inputs {
                if let In::Updated { oid, version } = i {
                    last_payload.insert(*oid, *version);
                }
            }
            let mut seen_updated: std::collections::HashSet<u64> = Default::default();
            for e in &drained {
                if let DlmEvent::Updated(info) = e {
                    prop_assert!(seen_updated.insert(info.oid.raw()),
                        "two Updated for oid {} survived coalescing", info.oid.raw());
                    prop_assert_eq!(info.payload.as_deref(), Some(&[last_payload[&info.oid.raw()]][..]),
                        "stale payload survived for oid {}", info.oid.raw());
                }
            }

            // (a') deltas merge per OID: at most one Delta survives per
            // OID (same version throughout), carrying the union of the
            // changed attrs with the latest value for each.
            let mut last_attr_value: std::collections::HashMap<(u64, u16), u8> = Default::default();
            for i in &inputs {
                if let In::Delta { oid, attr, value } = i {
                    last_attr_value.insert((*oid, *attr), *value);
                }
            }
            let mut seen_delta: std::collections::HashSet<u64> = Default::default();
            let mut delta_attrs_out: std::collections::HashSet<(u64, u16)> = Default::default();
            for e in &drained {
                if let DlmEvent::Delta { oid, changed, .. } = e {
                    prop_assert!(seen_delta.insert(oid.raw()),
                        "two Deltas for oid {} survived merging", oid.raw());
                    for (attr, value) in changed {
                        delta_attrs_out.insert((oid.raw(), *attr));
                        prop_assert_eq!(value.as_slice(), &[last_attr_value[&(oid.raw(), *attr)]][..],
                            "stale delta value survived for oid {} attr {}", oid.raw(), attr);
                    }
                }
            }
            // Union: every attr ever mentioned for an OID survives.
            for &(oid, attr) in last_attr_value.keys() {
                prop_assert!(delta_attrs_out.contains(&(oid, attr)),
                    "delta attr {attr} for oid {oid} lost in the merge");
            }

            // (b) for each (oid, txn): counting Marked as +1 and
            // Resolved as -1, the running sum in the drained order never
            // goes more negative than in the input order — a Resolved
            // never jumped ahead of its Marked.
            let floor = |seq: &[(u64, u64, i32)], oid: u64, txn: u64| -> i32 {
                let mut run = 0;
                let mut min = 0;
                for &(o, t, d) in seq {
                    if o == oid && t == txn {
                        run += d;
                        min = min.min(run);
                    }
                }
                min
            };
            let project = |events: &[DlmEvent]| -> Vec<(u64, u64, i32)> {
                events.iter().filter_map(|e| match e {
                    DlmEvent::Marked { oid, txn } => Some((oid.raw(), txn.raw(), 1)),
                    DlmEvent::Resolved { oid, txn, .. } => Some((oid.raw(), txn.raw(), -1)),
                    _ => None,
                }).collect()
            };
            let in_seq = project(&inputs.iter().map(to_event).collect::<Vec<_>>());
            let out_seq = project(&drained);
            for oid in 0u64..8 {
                for txn in 0u64..4 {
                    prop_assert!(floor(&out_seq, oid, txn) >= floor(&in_seq, oid, txn),
                        "Resolved reordered ahead of Marked for oid {oid} txn {txn}");
                }
            }

            // (c) cancellation removes whole pairs: the mark/resolve
            // delta per (oid, txn) is unchanged.
            let total = |seq: &[(u64, u64, i32)], oid: u64, txn: u64| -> i32 {
                seq.iter().filter(|&&(o, t, _)| o == oid && t == txn).map(|&(_, _, d)| d).sum()
            };
            for oid in 0u64..8 {
                for txn in 0u64..4 {
                    prop_assert_eq!(total(&out_seq, oid, txn), total(&in_seq, oid, txn),
                        "unbalanced cancellation for oid {} txn {}", oid, txn);
                }
            }
        }

        /// With a small high-water mark, memory stays bounded and every
        /// OID ever referenced is either delivered normally or covered
        /// by a resync marker — nothing is silently lost.
        #[test]
        fn prop_overflow_loses_nothing(inputs in proptest::collection::vec(arb_in(), 1..200)) {
            let mut q = CoalescingQueue::new(8);
            let mut drained = Vec::new();
            for i in &inputs {
                q.push(to_event(i));
                prop_assert!(q.len() <= 9, "queue depth {} breached the bound", q.len());
                // Drain opportunistically every few pushes to mimic a
                // consumer that is slow, not dead.
                if drained.len() % 3 == 0 {
                    if let Some(e) = q.pop() {
                        drained.push(e);
                    }
                }
            }
            while let Some(e) = q.pop() {
                drained.push(e);
            }
            let mut covered: std::collections::HashSet<u64> = Default::default();
            for e in &drained {
                match e {
                    DlmEvent::Updated(info) => { covered.insert(info.oid.raw()); }
                    DlmEvent::Marked { oid, .. }
                    | DlmEvent::Resolved { oid, .. }
                    | DlmEvent::Delta { oid, .. } => {
                        covered.insert(oid.raw());
                    }
                    DlmEvent::ResyncRequired { oids } => {
                        covered.extend(oids.iter().map(|o| o.raw()));
                    }
                    _ => {}
                }
            }
            for i in &inputs {
                let oid = match i {
                    In::Updated { oid, .. } | In::Marked { oid, .. } | In::Resolved { oid, .. }
                    | In::Delta { oid, .. } => *oid,
                };
                // A cancelled Marked/Resolved pair is legitimately
                // invisible; an Updated or Delta must always be covered.
                if matches!(i, In::Updated { .. } | In::Delta { .. }) {
                    prop_assert!(covered.contains(&oid), "state change to oid {oid} lost");
                }
            }
        }
    }
}
