//! Per-client bounded outboxes with coalescing and overflow-to-resync
//! (DESIGN.md § 9).
//!
//! The fan-out loop in [`crate::core::DlmCore`] delivers synchronously,
//! which is perfect for tests and for in-process sinks but means one
//! stalled consumer can block delivery to every healthy one and one
//! stalled *connection* can grow an unbounded send queue. Both
//! deployments therefore wrap their per-client sinks in an
//! [`OutboxSink`] at registration time:
//!
//! * **bounded queue** — `deliver` is a non-blocking push into a
//!   [`CoalescingQueue`] capped at the configured high-water mark; a
//!   dedicated writer thread (`dlm-outbox`) drains it and performs the
//!   actual (possibly blocking) send,
//! * **coalescing** — a newer `Updated{oid}` replaces a queued one in
//!   place (latest state wins, queue position preserved so nothing
//!   reorders), and a `Resolved` cancels its still-queued `Marked`,
//! * **overflow-to-resync** — breaching the high-water mark sweeps the
//!   queue into a single `ResyncRequired{oids}` marker: the client
//!   re-reads those objects instead of replaying a backlog, bounding
//!   memory at O(watched objects),
//! * **slow-consumer demotion** — after N consecutive sweeps the client
//!   enters *resync-only* ("lagging") mode: every notification folds
//!   into the pending resync marker and a single [`DlmEvent::Lagging`]
//!   tells the display layer to render staleness. The mode clears once
//!   the outbox fully drains.

use crate::core::EventSink;
use crate::proto::DlmEvent;
use displaydb_common::metrics::{Gauge, OverloadStats};
use displaydb_common::sync::{ranks, OrderedCondvar, OrderedMutex};
use displaydb_common::{DbResult, Oid, OverloadConfig};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What an overflow sweep replaces the queue with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepMode {
    /// Legacy: one `ResyncRequired` covering every swept OID.
    Resync,
    /// Replay (DESIGN.md § 13): one `ReplayNeeded` marker — the backlog
    /// is already retained in the DLM update log, so the client catches
    /// up with `ReplayFrom{cursor}` instead of re-reading objects.
    Replay,
}

/// What [`CoalescingQueue::push`] did with an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pushed {
    /// Appended at the tail.
    Queued,
    /// Merged into an already-queued event (same-OID `Updated` replaced
    /// in place, or OIDs folded into a pending `ResyncRequired`).
    Coalesced,
    /// A queued `Marked` and this `Resolved` cancelled each other out.
    Cancelled,
    /// The push breached the high-water mark: the whole queue was swept
    /// into one recovery marker (`ResyncRequired`, or `ReplayNeeded`
    /// when the DLM retains an update log).
    Overflowed,
}

/// A queued event tagged with the update-log seqno it carries (0 when
/// the event did not come off the commit path, e.g. control events).
#[derive(Debug)]
struct Entry {
    event: DlmEvent,
    seqno: u64,
}

/// A bounded notification queue with latest-state-wins coalescing.
///
/// Pure data structure (no threads, no I/O) so its invariants are
/// directly proptestable; [`OutboxSink`] owns one behind a mutex.
/// Operations are linear scans over at most `high_water` entries, which
/// is deliberate: the bound is small (default 64) and a scan of a short
/// `VecDeque` beats maintaining index maps at these sizes.
///
/// Entries carry their log seqno so that replayed (older) events
/// interleaving with live commits can never clobber newer queued state:
/// on a coalesce, the higher-seqno payload wins.
#[derive(Debug)]
pub struct CoalescingQueue {
    queue: VecDeque<Entry>,
    high_water: usize,
    sweep: SweepMode,
}

impl CoalescingQueue {
    /// An empty queue sweeping to resync past `high_water` entries.
    pub fn new(high_water: usize) -> Self {
        Self::with_mode(high_water, SweepMode::Resync)
    }

    /// An empty queue sweeping to a `ReplayNeeded` marker on overflow
    /// (the backlog is retained in the DLM update log).
    pub fn new_replay(high_water: usize) -> Self {
        Self::with_mode(high_water, SweepMode::Replay)
    }

    fn with_mode(high_water: usize, sweep: SweepMode) -> Self {
        Self {
            queue: VecDeque::new(),
            high_water: high_water.max(2),
            sweep,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a not-yet-delivered recovery marker (`ResyncRequired` or
    /// `ReplayNeeded`) is queued. Used for marker accounting: a sweep
    /// that folds into an existing marker did not send a new one.
    pub fn has_pending_marker(&self) -> bool {
        self.queue.iter().any(|e| {
            matches!(
                e.event,
                DlmEvent::ResyncRequired { .. } | DlmEvent::ReplayNeeded { .. }
            )
        })
    }

    /// Remove and return the oldest event.
    pub fn pop(&mut self) -> Option<DlmEvent> {
        self.queue.pop_front().map(|e| e.event)
    }

    /// Push one event, coalescing against the queued ones.
    pub fn push(&mut self, event: DlmEvent) -> Pushed {
        self.push_seq(event, 0)
    }

    /// Push one seqno-stamped event, coalescing against the queued ones.
    pub fn push_seq(&mut self, event: DlmEvent, seqno: u64) -> Pushed {
        let outcome = self.coalesce_or_queue(event, seqno);
        if self.queue.len() > self.high_water {
            self.sweep_to_marker();
            return Pushed::Overflowed;
        }
        outcome
    }

    /// Push without the overflow check. Used for replay catch-up, whose
    /// burst legitimately exceeds the live high-water mark but is still
    /// bounded by the watched set via coalescing.
    pub fn push_unbounded(&mut self, event: DlmEvent, seqno: u64) -> Pushed {
        self.coalesce_or_queue(event, seqno)
    }

    fn coalesce_or_queue(&mut self, event: DlmEvent, seqno: u64) -> Pushed {
        match &event {
            DlmEvent::Updated(info) => {
                // Latest state wins: replace a queued Updated for the
                // same OID *in place* so relative order is preserved.
                // "Latest" is decided by seqno, not arrival order: a
                // replayed old event must not clobber a newer live one.
                for queued in self.queue.iter_mut() {
                    match &mut queued.event {
                        DlmEvent::Updated(q) if q.oid == info.oid => {
                            if seqno >= queued.seqno {
                                queued.event = event;
                                queued.seqno = seqno;
                            }
                            return Pushed::Coalesced;
                        }
                        // A pending resync marker already covers any
                        // state change to its OIDs.
                        DlmEvent::ResyncRequired { oids } if oids.contains(&info.oid) => {
                            return Pushed::Coalesced;
                        }
                        _ => {}
                    }
                }
            }
            DlmEvent::Resolved { oid, txn, .. } => {
                // The intent never reached the client: drop the pair.
                let pos = self.queue.iter().position(|q| {
                    matches!(&q.event, DlmEvent::Marked { oid: m, txn: t } if m == oid && t == txn)
                });
                if let Some(pos) = pos {
                    self.queue.remove(pos);
                    return Pushed::Cancelled;
                }
            }
            DlmEvent::ResyncRequired { oids } => {
                // Fold into an existing marker rather than queue two.
                let fold: Vec<Oid> = oids.clone();
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::ResyncRequired { oids: existing } = &mut queued.event {
                        for oid in fold {
                            if !existing.contains(&oid) {
                                existing.push(oid);
                            }
                        }
                        return Pushed::Coalesced;
                    }
                }
            }
            DlmEvent::ReplayNeeded { from } => {
                // One replay round covers everything: keep the highest
                // `from` (purely diagnostic — the client replays from
                // its own cursor).
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::ReplayNeeded { from: existing } = &mut queued.event {
                        *existing = (*existing).max(*from);
                        return Pushed::Coalesced;
                    }
                }
            }
            DlmEvent::CursorAck { seqno: ack } => {
                // Writer-synthesized, normally never queued; defensively
                // keep only the highest ack.
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::CursorAck { seqno: existing } = &mut queued.event {
                        *existing = (*existing).max(*ack);
                        return Pushed::Coalesced;
                    }
                }
            }
            DlmEvent::Lagging => {
                // One staleness signal is as good as ten.
                if self
                    .queue
                    .iter()
                    .any(|q| matches!(q.event, DlmEvent::Lagging))
                {
                    return Pushed::Coalesced;
                }
            }
            DlmEvent::Delta {
                oid,
                version,
                changed,
                trace,
            } => {
                // Consecutive deltas for the same object merge: union of
                // the changed attribute sets, newest value per attribute.
                // Dropping the older delta outright (latest-wins, as
                // Updated does) would lose attributes the newer delta
                // does not mention. "Newest" is by seqno: a replayed
                // older delta only contributes attrs the newer queued
                // one does not already carry.
                for queued in self.queue.iter_mut() {
                    let entry_seqno = queued.seqno;
                    match &mut queued.event {
                        DlmEvent::Delta {
                            oid: q_oid,
                            version: q_version,
                            changed: q_changed,
                            trace: q_trace,
                        } if q_oid == oid && q_version == version => {
                            let newer = seqno >= entry_seqno;
                            for (attr, value) in changed {
                                match q_changed.iter_mut().find(|(a, _)| a == attr) {
                                    Some((_, v)) => {
                                        if newer {
                                            *v = value.clone();
                                        }
                                    }
                                    None => q_changed.push((*attr, value.clone())),
                                }
                            }
                            q_changed.sort_by_key(|(a, _)| *a);
                            // Latest commit wins the merged event's trace,
                            // matching the values it carries.
                            if newer && *trace != 0 {
                                *q_trace = *trace;
                            }
                            queued.seqno = entry_seqno.max(seqno);
                            return Pushed::Coalesced;
                        }
                        // A pending resync marker already forces a full
                        // re-read of this object.
                        DlmEvent::ResyncRequired { oids } if oids.contains(oid) => {
                            return Pushed::Coalesced;
                        }
                        _ => {}
                    }
                }
            }
            DlmEvent::ShardCursorAck { shard, seqno: ack } => {
                // Same defensive coalescing as `CursorAck`, per shard.
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::ShardCursorAck {
                        shard: s,
                        seqno: existing,
                    } = &mut queued.event
                    {
                        if s == shard {
                            *existing = (*existing).max(*ack);
                            return Pushed::Coalesced;
                        }
                    }
                }
            }
            DlmEvent::ShardReplayNeeded { shard, from } => {
                // One replay round per shard covers that shard.
                for queued in self.queue.iter_mut() {
                    if let DlmEvent::ShardReplayNeeded {
                        shard: s,
                        from: existing,
                    } = &mut queued.event
                    {
                        if s == shard {
                            *existing = (*existing).max(*from);
                            return Pushed::Coalesced;
                        }
                    }
                }
            }
            DlmEvent::Marked { .. } | DlmEvent::Ready { .. } | DlmEvent::Batch(_) => {}
        }
        self.queue.push_back(Entry { event, seqno });
        Pushed::Queued
    }

    /// Replace everything queued with a single recovery marker: a
    /// `ResyncRequired` covering every swept OID (legacy mode), or a
    /// `ReplayNeeded` pointing at the log (replay mode).
    fn sweep_to_marker(&mut self) {
        match self.sweep {
            SweepMode::Resync => {
                let mut oids: Vec<Oid> = Vec::new();
                let mut add = |oid: Oid| {
                    if !oids.contains(&oid) {
                        oids.push(oid);
                    }
                };
                for entry in self.queue.drain(..) {
                    match entry.event {
                        DlmEvent::Updated(info) => add(info.oid),
                        DlmEvent::Marked { oid, .. }
                        | DlmEvent::Resolved { oid, .. }
                        | DlmEvent::Delta { oid, .. } => add(oid),
                        DlmEvent::ResyncRequired { oids: swept } => {
                            swept.into_iter().for_each(&mut add)
                        }
                        DlmEvent::Ready { .. }
                        | DlmEvent::Lagging
                        | DlmEvent::Batch(_)
                        | DlmEvent::CursorAck { .. }
                        | DlmEvent::ReplayNeeded { .. }
                        | DlmEvent::ShardCursorAck { .. }
                        | DlmEvent::ShardReplayNeeded { .. } => {}
                    }
                }
                oids.sort_unstable();
                self.queue.push_back(Entry {
                    event: DlmEvent::ResyncRequired { oids },
                    seqno: 0,
                });
            }
            SweepMode::Replay => {
                // The swept backlog lives in the update log; `from` is
                // the highest swept seqno, for diagnostics only (the
                // client replays from its own cursor).
                let mut from = 0u64;
                for entry in self.queue.drain(..) {
                    from = from.max(entry.seqno);
                    if let DlmEvent::ReplayNeeded { from: f } = entry.event {
                        from = from.max(f);
                    }
                }
                self.queue.push_back(Entry {
                    event: DlmEvent::ReplayNeeded { from },
                    seqno: 0,
                });
            }
        }
    }

    /// Every OID the queued events reference (diagnostics/tests).
    pub fn pending_oids(&self) -> Vec<Oid> {
        let mut oids: Vec<Oid> = Vec::new();
        for entry in &self.queue {
            match &entry.event {
                DlmEvent::Updated(info) => oids.push(info.oid),
                DlmEvent::Marked { oid, .. }
                | DlmEvent::Resolved { oid, .. }
                | DlmEvent::Delta { oid, .. } => oids.push(*oid),
                DlmEvent::ResyncRequired { oids: r } => oids.extend(r.iter().copied()),
                DlmEvent::Ready { .. }
                | DlmEvent::Lagging
                | DlmEvent::Batch(_)
                | DlmEvent::CursorAck { .. }
                | DlmEvent::ReplayNeeded { .. }
                | DlmEvent::ShardCursorAck { .. }
                | DlmEvent::ShardReplayNeeded { .. } => {}
            }
        }
        oids.sort_unstable();
        oids.dedup();
        oids
    }
}

struct OutboxState {
    queue: CoalescingQueue,
    /// Consecutive high-water sweeps without the queue draining.
    consecutive_overflows: u32,
    /// Resync-only mode (slow consumer). Sticky until the queue drains.
    lagging: bool,
    /// Replay mode only: the backlog was swept to a `ReplayNeeded`
    /// marker; further live deliveries are dropped (the update log
    /// covers them) until [`OutboxSink`]'s `replay_restore` runs when
    /// the client comes back with `ReplayFrom{cursor}`.
    replay_pending: bool,
    /// Highest log seqno handed to this outbox whose effect will reach
    /// the client (queued, coalesced into a newer entry, or marked
    /// current after replay). Dropped-while-replay-pending events do
    /// NOT advance it.
    last_seqno: u64,
    /// Highest seqno already acknowledged to the client via `CursorAck`.
    last_acked: u64,
    /// Writer asked to exit (client unregistered / server shutdown).
    shutdown: bool,
    /// The inner sink failed; all further deliveries are refused.
    dead: bool,
    /// The writer has popped a batch it has not yet handed to the inner
    /// sink. Drainers must treat this as undelivered work: an empty
    /// queue alone does not mean the tail reached the client.
    in_flight: bool,
}

struct OutboxShared {
    state: OrderedMutex<OutboxState>,
    /// Wakes the writer (work queued or shutdown).
    work: OrderedCondvar,
    /// Wakes drainers (queue just emptied or writer exited).
    idle: OrderedCondvar,
    config: OverloadConfig,
    stats: OverloadStats,
    /// Per-outbox queue depth (current + high water). The shared
    /// [`OverloadStats::queue_depth`] gauge interleaves `set` calls
    /// across all outboxes, so only its high-water side is meaningful
    /// fleet-wide; this one is exact for this client.
    depth: Gauge,
    /// Cursor catch-up enabled: overflow sweeps to `ReplayNeeded` and
    /// the writer emits `CursorAck` on drain-to-empty.
    replay: bool,
    /// Invoked (outside every lock) with each cursor the writer just
    /// acknowledged to the client — the durable-frontier spill hook
    /// (DESIGN.md § 14). The callback sees acks in the order the writer
    /// emitted them and may block on I/O.
    recorder: Option<Arc<dyn Fn(u64) + Send + Sync>>,
}

/// A bounded, coalescing outbox wrapped around a blocking sink.
///
/// `deliver` never blocks and never performs I/O: it coalesces into the
/// bounded queue and wakes the writer thread, which owns the only calls
/// into the wrapped sink. Created via [`OutboxSink::wrap`] at client
/// registration time (the DLM agent wraps its wire-channel sink, the
/// integrated server wraps its session sink).
pub struct OutboxSink {
    inner: Arc<dyn EventSink>,
    shared: Arc<OutboxShared>,
}

impl OutboxSink {
    /// Wrap `inner`, spawning the writer thread. Overflow recovery is
    /// the legacy resync sweep; use [`OutboxSink::wrap_with_replay`]
    /// when the DLM retains an update log.
    pub fn wrap(
        inner: Arc<dyn EventSink>,
        config: OverloadConfig,
        stats: OverloadStats,
    ) -> Arc<Self> {
        Self::wrap_with_replay(inner, config, stats, false)
    }

    /// Wrap `inner`, spawning the writer thread. With `replay` set,
    /// overflow sweeps to a `ReplayNeeded` marker (cursor catch-up via
    /// the update log) and the writer acknowledges delivered seqnos
    /// with `CursorAck` whenever the queue drains empty.
    pub fn wrap_with_replay(
        inner: Arc<dyn EventSink>,
        config: OverloadConfig,
        stats: OverloadStats,
        replay: bool,
    ) -> Arc<Self> {
        Self::wrap_with_recorder(inner, config, stats, replay, None)
    }

    /// [`OutboxSink::wrap_with_replay`] plus a frontier `recorder`: every
    /// `CursorAck` the writer emits is reported to the callback after the
    /// carrying frame reached the inner sink, outside all outbox locks.
    /// The durable DLM passes a closure spilling the cursor to the
    /// segment log so the client's frontier survives a restart.
    pub fn wrap_with_recorder(
        inner: Arc<dyn EventSink>,
        config: OverloadConfig,
        stats: OverloadStats,
        replay: bool,
        recorder: Option<Arc<dyn Fn(u64) + Send + Sync>>,
    ) -> Arc<Self> {
        let queue = if replay {
            CoalescingQueue::new_replay(config.outbox_high_water)
        } else {
            CoalescingQueue::new(config.outbox_high_water)
        };
        let shared = Arc::new(OutboxShared {
            state: OrderedMutex::new(
                ranks::OUTBOX_STATE,
                OutboxState {
                    queue,
                    consecutive_overflows: 0,
                    lagging: false,
                    replay_pending: false,
                    last_seqno: 0,
                    last_acked: 0,
                    shutdown: false,
                    dead: false,
                    in_flight: false,
                },
            ),
            work: OrderedCondvar::new(),
            idle: OrderedCondvar::new(),
            config,
            stats,
            depth: Gauge::new(),
            replay,
            recorder,
        });
        let sink = Arc::new(Self {
            inner: Arc::clone(&inner),
            shared: Arc::clone(&shared),
        });
        std::thread::Builder::new()
            .name("dlm-outbox".into())
            .spawn(move || writer_loop(&shared, &inner))
            .expect("spawn dlm-outbox");
        sink
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Exact per-outbox depth gauge (current + high water).
    pub fn depth_stats(&self) -> &Gauge {
        &self.shared.depth
    }

    /// Whether the client is demoted to resync-only mode.
    pub fn is_lagging(&self) -> bool {
        self.shared.state.lock().lagging
    }

    /// Whether a `ReplayNeeded` sweep is awaiting the client's
    /// `ReplayFrom` (replay mode only).
    pub fn is_replay_pending(&self) -> bool {
        self.shared.state.lock().replay_pending
    }

    /// Shared delivery path for live (`seqno > 0` when logged) and
    /// control (`seqno == 0`) events.
    fn enqueue(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        event.record_stage(displaydb_common::trace::Stage::OutboxEnqueue);
        let stats = &self.shared.stats;
        let mut state = self.shared.state.lock();
        if state.dead || state.shutdown {
            return Err(displaydb_common::DbError::Disconnected);
        }
        stats.enqueued.inc();
        if state.replay_pending {
            // The backlog was swept to a ReplayNeeded marker and the
            // update log retains everything since: drop the event and
            // count it as coalesced into the pending marker. The
            // seqno is deliberately NOT acknowledged — the client
            // learns it through replay.
            stats.coalesced.inc();
            return Ok(());
        }
        // Marker accounting (satellite fix for the drift between
        // `resyncs_sent` and what clients actually receive): a push or
        // sweep only *sends* a new marker when none was already queued
        // — folding into a pending marker must not count twice.
        let had_marker = state.queue.has_pending_marker();
        let mut pushed_marker = false;
        let pushed = if state.lagging && !self.shared.replay {
            // Resync-only mode: fold the event's objects into the
            // pending marker instead of growing a backlog.
            match to_resync_marker(&event) {
                Some(marker) => {
                    pushed_marker = true;
                    state.queue.push_seq(marker, seqno)
                }
                None => state.queue.push_seq(event, seqno),
            }
        } else {
            state.queue.push_seq(event, seqno)
        };
        match pushed {
            Pushed::Queued => {
                if pushed_marker && !had_marker {
                    stats.resyncs_sent.inc();
                }
            }
            Pushed::Coalesced => stats.coalesced.inc(),
            Pushed::Cancelled => stats.cancelled_pairs.inc(),
            Pushed::Overflowed => {
                stats.overflows.inc();
                state.consecutive_overflows += 1;
                if self.shared.replay {
                    // The sweep left a ReplayNeeded marker; everything
                    // until the client replays is covered by the log.
                    // Swept seqnos reach the client only via the replay,
                    // and the ack frontier never claimed them: it only
                    // advances through `advance_frontier`, after a whole
                    // commit is enqueued, and replay-pending blocks even
                    // that until the client's `ReplayFrom` restores us.
                    state.replay_pending = true;
                } else if !had_marker {
                    stats.resyncs_sent.inc();
                }
                if !state.lagging
                    && state.consecutive_overflows >= self.shared.config.lagging_after_overflows
                {
                    state.lagging = true;
                    stats.lagging_transitions.inc();
                    // Queued after the marker: the client recovers, then
                    // learns it is lagging.
                    state.queue.push(DlmEvent::Lagging);
                }
            }
        }
        // Shared gauge: the high-water side is a monotonic max across
        // all outboxes, which is the quantity the experiments report.
        stats.queue_depth.set(state.queue.len() as u64);
        self.shared.depth.set(state.queue.len() as u64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Block until the queue is flushed to the inner sink or `timeout`
    /// elapses; returns whether it flushed. Used by server shutdown to
    /// give healthy clients their tail notifications without letting a
    /// stalled one wedge the process.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            let flushed = state.queue.is_empty() && !state.in_flight;
            if flushed || state.dead {
                return flushed;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if self
                .shared
                .idle
                .wait_for(&mut state, deadline - now)
                .timed_out()
            {
                return state.queue.is_empty() && !state.in_flight;
            }
        }
    }
}

impl EventSink for OutboxSink {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        self.enqueue(event, 0)
    }

    fn deliver_logged(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        self.enqueue(event, seqno)
    }

    fn deliver_replayed(&self, event: DlmEvent, seqno: u64) -> DbResult<()> {
        // Replay catch-up: push without the overflow sweep. The burst is
        // bounded by the watched set (per-OID coalescing), and sweeping
        // it back to a marker would loop the client forever.
        event.record_stage(displaydb_common::trace::Stage::OutboxEnqueue);
        let stats = &self.shared.stats;
        let mut state = self.shared.state.lock();
        if state.dead || state.shutdown {
            return Err(displaydb_common::DbError::Disconnected);
        }
        // The frontier advance for replayed seqnos comes from
        // `mark_current_through(head)` at the end of the replay, never
        // per event — a drain racing with the burst must not ack a
        // seqno whose remaining events are still being replayed.
        stats.enqueued.inc();
        match state.queue.push_unbounded(event, seqno) {
            Pushed::Queued | Pushed::Overflowed => {}
            Pushed::Coalesced => stats.coalesced.inc(),
            Pushed::Cancelled => stats.cancelled_pairs.inc(),
        }
        // Only the exact per-outbox gauge: a replay burst is controlled
        // catch-up, not fleet-wide backpressure evidence.
        self.shared.depth.set(state.queue.len() as u64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    fn replay_restore(&self) {
        let mut state = self.shared.state.lock();
        state.replay_pending = false;
        state.lagging = false;
        state.consecutive_overflows = 0;
        // Satellite fix: the storm's high-water marks describe the
        // overload, not the recovered client — reset them so
        // post-recovery gauges start clean.
        self.shared.stats.queue_depth.reset_high_water();
        self.shared.depth.reset_high_water();
        drop(state);
        self.shared.work.notify_one();
    }

    fn mark_current_through(&self, seqno: u64) {
        let mut state = self.shared.state.lock();
        state.last_seqno = state.last_seqno.max(seqno);
        drop(state);
        // Wake the writer so it can acknowledge even with an empty queue.
        self.shared.work.notify_one();
    }

    fn advance_frontier(&self, seqno: u64) {
        let mut state = self.shared.state.lock();
        if state.dead || state.shutdown {
            return;
        }
        if state.replay_pending {
            // Part of this commit was swept mid-fan-out: the client only
            // gets it back through replay, so the frontier stays put
            // until `replay_restore` + `mark_current_through`.
            return;
        }
        state.last_seqno = state.last_seqno.max(seqno);
        drop(state);
        // The queue may already have drained past this commit's events;
        // wake the writer so the ack is not deferred to the next event.
        self.shared.work.notify_one();
    }

    fn close(&self) {
        let mut state = self.shared.state.lock();
        state.shutdown = true;
        drop(state);
        // Wake the writer so it exits; deliberately no join — the
        // writer may be blocked inside a stalled send, and close must
        // not inherit that stall.
        self.shared.work.notify_one();
        self.shared.idle.notify_all();
        self.inner.close();
    }
}

impl Drop for OutboxSink {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for OutboxSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock();
        f.debug_struct("OutboxSink")
            .field("depth", &state.queue.len())
            .field("lagging", &state.lagging)
            .field("dead", &state.dead)
            .finish()
    }
}

/// The resync-only rendering of an event, if it carries object state.
fn to_resync_marker(event: &DlmEvent) -> Option<DlmEvent> {
    match event {
        DlmEvent::Updated(info) => Some(DlmEvent::ResyncRequired {
            oids: vec![info.oid],
        }),
        DlmEvent::Marked { oid, .. }
        | DlmEvent::Resolved { oid, .. }
        | DlmEvent::Delta { oid, .. } => Some(DlmEvent::ResyncRequired { oids: vec![*oid] }),
        DlmEvent::Ready { .. }
        | DlmEvent::Lagging
        | DlmEvent::ResyncRequired { .. }
        | DlmEvent::Batch(_)
        | DlmEvent::CursorAck { .. }
        | DlmEvent::ReplayNeeded { .. }
        | DlmEvent::ShardCursorAck { .. }
        | DlmEvent::ShardReplayNeeded { .. } => None,
    }
}

fn writer_loop(shared: &Arc<OutboxShared>, inner: &Arc<dyn EventSink>) {
    let batch_max = shared.config.outbox_batch_max.max(1);
    loop {
        let (event, acked) = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    shared.idle.notify_all();
                    return;
                }
                // A cursor ack is due once every delivered seqno will
                // have reached the wire — i.e. the queue is about to be
                // fully drained and nothing is replay-pending.
                let ack_due =
                    shared.replay && !state.replay_pending && state.last_seqno > state.last_acked;
                if !state.queue.is_empty() || ack_due {
                    // Drain everything pending (up to the batch cap) in
                    // one wake: a consumer that fell behind receives its
                    // backlog as a single wire frame instead of one
                    // frame per event.
                    let mut acked = None;
                    let mut events = Vec::new();
                    while events.len() < batch_max {
                        match state.queue.pop() {
                            Some(e) => events.push(e),
                            None => break,
                        }
                    }
                    if state.queue.is_empty() {
                        // Fully drained: the consumer caught up, so
                        // forgive its overflow history — unless a sweep
                        // is awaiting the client's replay, in which case
                        // the drained "queue" was just the marker.
                        if !state.replay_pending {
                            state.consecutive_overflows = 0;
                            state.lagging = false;
                            if shared.replay && state.last_seqno > state.last_acked {
                                // Everything enqueued through last_seqno
                                // rides this very frame: acknowledge the
                                // cursor as its final event.
                                state.last_acked = state.last_seqno;
                                acked = Some(state.last_acked);
                                events.push(DlmEvent::CursorAck {
                                    seqno: state.last_acked,
                                });
                            }
                        }
                    }
                    if events.is_empty() {
                        // Raced: ack was due but replay_pending flipped,
                        // or a spurious wake. Go back to waiting.
                        shared.work.wait(&mut state);
                        continue;
                    }
                    state.in_flight = true;
                    shared.stats.queue_depth.set(state.queue.len() as u64);
                    shared.depth.set(state.queue.len() as u64);
                    let event = if events.len() == 1 {
                        events.pop().expect("one event")
                    } else {
                        shared.stats.batches_sent.inc();
                        DlmEvent::Batch(events)
                    };
                    break (event, acked);
                }
                shared.work.wait(&mut state);
            }
        };
        // The only potentially-blocking calls, outside every lock.
        event.record_stage(displaydb_common::trace::Stage::OutboxDrain);
        let delivered = inner.deliver(event).is_ok();
        if delivered {
            // The ack is on the wire: make the frontier durable. After a
            // failed delivery the client is dead and its next session
            // replays from the previously recorded cursor — strictly
            // more data, never less.
            if let (Some(cursor), Some(rec)) = (acked, shared.recorder.as_ref()) {
                rec(cursor);
            }
        }
        let mut state = shared.state.lock();
        state.in_flight = false;
        if !delivered {
            state.dead = true;
            shared.idle.notify_all();
            return;
        }
        if state.queue.is_empty() {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::UpdateInfo;
    use crossbeam::channel::unbounded;
    use displaydb_common::{DbError, TxnId};
    use parking_lot::{Condvar, Mutex};

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    fn upd(i: u64, payload: u8) -> DlmEvent {
        DlmEvent::Updated(UpdateInfo::eager(o(i), vec![payload]))
    }

    fn delta(i: u64, version: u32, changed: &[(u16, u8)]) -> DlmEvent {
        DlmEvent::Delta {
            oid: o(i),
            version,
            changed: changed.iter().map(|&(a, v)| (a, vec![v])).collect(),
            trace: 0,
        }
    }

    /// Undo writer-side batching: receivers see what a client would after
    /// flattening.
    fn flatten(events: impl IntoIterator<Item = DlmEvent>) -> Vec<DlmEvent> {
        let mut out = Vec::new();
        for e in events {
            match e {
                DlmEvent::Batch(inner) => out.extend(inner),
                e => out.push(e),
            }
        }
        out
    }

    #[test]
    fn updated_coalesces_latest_wins_in_place() {
        let mut q = CoalescingQueue::new(16);
        assert_eq!(q.push(upd(1, 1)), Pushed::Queued);
        assert_eq!(q.push(upd(2, 1)), Pushed::Queued);
        assert_eq!(q.push(upd(1, 9)), Pushed::Coalesced);
        assert_eq!(q.len(), 2);
        // Position preserved: oid 1 still drains first, with the newest
        // payload.
        assert_eq!(q.pop(), Some(upd(1, 9)));
        assert_eq!(q.pop(), Some(upd(2, 1)));
    }

    #[test]
    fn resolved_cancels_queued_marked() {
        let mut q = CoalescingQueue::new(16);
        let txn = TxnId::new(5);
        q.push(DlmEvent::Marked { oid: o(1), txn });
        q.push(upd(2, 1));
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn,
                committed: false
            }),
            Pushed::Cancelled
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(upd(2, 1)));
    }

    #[test]
    fn resolved_without_queued_marked_queues() {
        let mut q = CoalescingQueue::new(16);
        let txn = TxnId::new(5);
        // The Marked already drained: Resolved must still go out.
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn,
                committed: true
            }),
            Pushed::Queued
        );
        // A different txn's mark is not cancelled by this txn.
        q.push(DlmEvent::Marked {
            oid: o(1),
            txn: TxnId::new(6),
        });
        assert_eq!(
            q.push(DlmEvent::Resolved {
                oid: o(1),
                txn: TxnId::new(7),
                committed: true
            }),
            Pushed::Queued
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn overflow_sweeps_to_single_resync() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..4 {
            q.push(upd(i, 0));
        }
        assert_eq!(q.push(upd(99, 0)), Pushed::Overflowed);
        assert_eq!(q.len(), 1);
        match q.pop().unwrap() {
            DlmEvent::ResyncRequired { oids } => {
                assert_eq!(oids, vec![o(0), o(1), o(2), o(3), o(99)]);
            }
            other => panic!("expected resync marker, got {other:?}"),
        }
    }

    #[test]
    fn updates_fold_into_pending_resync_marker() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..5 {
            q.push(upd(i, 0));
        }
        // Marker queued; an update for a covered OID disappears into it,
        // a new OID queues normally behind it.
        assert_eq!(q.push(upd(2, 7)), Pushed::Coalesced);
        assert_eq!(q.push(upd(42, 7)), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn delta_merge_unions_changed_attrs_latest_value_wins() {
        let mut q = CoalescingQueue::new(16);
        assert_eq!(q.push(delta(1, 1, &[(0, 1), (2, 5)])), Pushed::Queued);
        assert_eq!(q.push(delta(2, 1, &[(0, 3)])), Pushed::Queued);
        // Same OID + version: union of attrs, newest value per attr,
        // position preserved (oid 1 still drains first).
        assert_eq!(q.push(delta(1, 1, &[(2, 9), (3, 4)])), Pushed::Coalesced);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(delta(1, 1, &[(0, 1), (2, 9), (3, 4)])));
        assert_eq!(q.pop(), Some(delta(2, 1, &[(0, 3)])));
    }

    #[test]
    fn delta_with_different_version_queues_separately() {
        let mut q = CoalescingQueue::new(16);
        q.push(delta(1, 1, &[(0, 1)]));
        // A version bump means the attribute indices refer to a different
        // registration; merging across versions could fabricate a delta
        // neither registration produced.
        assert_eq!(q.push(delta(1, 2, &[(0, 2)])), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn delta_folds_into_pending_resync_marker() {
        let mut q = CoalescingQueue::new(16);
        q.push(DlmEvent::ResyncRequired { oids: vec![o(1)] });
        assert_eq!(q.push(delta(1, 1, &[(0, 1)])), Pushed::Coalesced);
        assert_eq!(q.push(delta(2, 1, &[(0, 1)])), Pushed::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_sweep_covers_delta_oids() {
        let mut q = CoalescingQueue::new(4);
        for i in 0..4 {
            q.push(delta(i, 1, &[(0, 0)]));
        }
        assert_eq!(q.push(delta(99, 1, &[(0, 0)])), Pushed::Overflowed);
        match q.pop().unwrap() {
            DlmEvent::ResyncRequired { oids } => {
                assert_eq!(oids, vec![o(0), o(1), o(2), o(3), o(99)]);
            }
            other => panic!("expected resync marker, got {other:?}"),
        }
    }

    #[test]
    fn resync_markers_merge() {
        let mut q = CoalescingQueue::new(16);
        q.push(DlmEvent::ResyncRequired {
            oids: vec![o(1), o(2)],
        });
        assert_eq!(
            q.push(DlmEvent::ResyncRequired {
                oids: vec![o(2), o(3)]
            }),
            Pushed::Coalesced
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pending_oids(), vec![o(1), o(2), o(3)]);
    }

    fn collecting_sink() -> (Arc<dyn EventSink>, crossbeam::channel::Receiver<DlmEvent>) {
        let (tx, rx) = unbounded();
        let f = move |e: DlmEvent| tx.send(e).map_err(|_| DbError::Disconnected);
        (Arc::new(f), rx)
    }

    fn quick_config(high_water: usize, lagging_after: u32) -> OverloadConfig {
        OverloadConfig {
            outbox_high_water: high_water,
            lagging_after_overflows: lagging_after,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn outbox_delivers_in_order() {
        let (inner, rx) = collecting_sink();
        let outbox = OutboxSink::wrap(inner, quick_config(64, 3), OverloadStats::new());
        for i in 0..10 {
            outbox.deliver(upd(i, i as u8)).unwrap();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let got = flatten(rx.try_iter());
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(*e, upd(i as u64, i as u8));
        }
    }

    #[test]
    fn stalled_consumer_overflows_then_demotes_to_lagging() {
        // An inner sink that blocks until released: the writer thread
        // wedges on the first event, everything else queues.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), stats.clone());

        // Storm: far more updates than the high-water mark.
        for round in 0..4 {
            for i in 0..40u64 {
                outbox
                    .deliver(upd(i, round))
                    .expect("deliver must not block or fail");
            }
        }
        assert!(stats.overflows.get() >= 2, "storm must overflow");
        assert!(outbox.is_lagging(), "persistent overflow must demote");
        assert_eq!(stats.lagging_transitions.get(), 1);
        // Memory bound: depth never exceeds high-water + the marker.
        assert!(
            stats.queue_depth.high_water() <= 8 + 1,
            "depth {} breached the bound",
            stats.queue_depth.high_water()
        );

        // Release the consumer: it gets the first event (pre-stall),
        // then markers covering everything else, then Lagging — and the
        // drained outbox forgives the lag.
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)), "must drain");
        assert!(!outbox.is_lagging(), "drain clears lagging mode");
        let got = flatten(rx.try_iter());
        assert!(got.iter().any(|e| matches!(e, DlmEvent::Lagging)));
        let resynced: Vec<Oid> = got
            .iter()
            .filter_map(|e| match e {
                DlmEvent::ResyncRequired { oids } => Some(oids.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        for i in 1..40u64 {
            assert!(resynced.contains(&o(i)), "oid {i} lost in the sweep");
        }
    }

    #[test]
    fn close_stops_writer_without_flushing_stalled_queue() {
        // Inner sink blocks forever: close must still return promptly.
        let (release_tx, release_rx) = unbounded::<()>();
        let inner: Arc<dyn EventSink> = Arc::new(move |_e: DlmEvent| {
            let _ = release_rx.recv(); // blocks until test end
            Ok(())
        });
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), OverloadStats::new());
        outbox.deliver(upd(1, 1)).unwrap();
        outbox.deliver(upd(2, 2)).unwrap();
        let started = Instant::now();
        outbox.close();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "close must not wait on the stalled writer"
        );
        assert!(outbox.deliver(upd(3, 3)).is_err(), "closed outbox refuses");
        drop(release_tx);
    }

    #[test]
    fn writer_drains_backlog_as_one_batch_frame() {
        // The writer wedges on the first event; the next four queue and
        // must go out together as a single Batch when the gate opens.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap(inner, quick_config(64, 3), stats.clone());
        outbox.deliver(upd(0, 0)).unwrap();
        // Wait until the writer has taken the first event off the queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        while outbox.depth() != 0 {
            assert!(Instant::now() < deadline, "writer never picked up");
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 1..5u64 {
            outbox.deliver(upd(i, i as u8)).unwrap();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let frames: Vec<DlmEvent> = rx.try_iter().collect();
        assert_eq!(frames.len(), 2, "one stalled single + one batch frame");
        assert_eq!(frames[0], upd(0, 0));
        match &frames[1] {
            DlmEvent::Batch(events) => {
                assert_eq!(
                    events,
                    &(1..5u64).map(|i| upd(i, i as u8)).collect::<Vec<_>>()
                );
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(stats.batches_sent.get(), 1);
    }

    #[test]
    fn seqno_coalescing_older_replay_never_clobbers_newer_live() {
        let mut q = CoalescingQueue::new(16);
        // A live event at seqno 10 is queued; a replayed event at seqno 3
        // arrives late (replay raced a live commit) — the newer payload
        // must survive.
        assert_eq!(q.push_seq(upd(1, 9), 10), Pushed::Queued);
        assert_eq!(q.push_unbounded(upd(1, 1), 3), Pushed::Coalesced);
        assert_eq!(q.pop(), Some(upd(1, 9)));

        // Deltas: the older replayed delta only contributes attributes
        // the newer queued one does not already carry.
        assert_eq!(q.push_seq(delta(2, 1, &[(0, 5)]), 10), Pushed::Queued);
        assert_eq!(
            q.push_unbounded(delta(2, 1, &[(0, 1), (2, 7)]), 3),
            Pushed::Coalesced
        );
        assert_eq!(q.pop(), Some(delta(2, 1, &[(0, 5), (2, 7)])));
    }

    #[test]
    fn replay_mode_overflow_sweeps_to_single_replay_needed() {
        let mut q = CoalescingQueue::new_replay(4);
        for i in 0..4u64 {
            q.push_seq(upd(i, 0), i + 1);
        }
        assert_eq!(q.push_seq(upd(99, 0), 5), Pushed::Overflowed);
        assert_eq!(q.len(), 1);
        match q.pop().unwrap() {
            DlmEvent::ReplayNeeded { from } => assert_eq!(from, 5),
            other => panic!("expected replay marker, got {other:?}"),
        }
        // A second sweep folds into the pending marker, keeping max from.
        for i in 0..5u64 {
            q.push_seq(upd(i, 0), i + 6);
        }
        assert!(q.has_pending_marker());
    }

    #[test]
    fn replay_pending_drops_live_events_until_restore() {
        // Writer wedged: the storm overflows, sweeps to ReplayNeeded, and
        // every further live delivery is dropped (the log covers it).
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap_with_replay(inner, quick_config(4, 99), stats.clone(), true);
        for i in 0..12u64 {
            outbox.deliver_logged(upd(i, 0), i + 1).unwrap();
        }
        assert!(stats.overflows.get() >= 1, "storm must overflow");
        assert!(outbox.is_replay_pending());
        assert_eq!(
            stats.resyncs_sent.get(),
            0,
            "replay mode must not send resync markers"
        );
        let depth_before = outbox.depth();
        outbox.deliver_logged(upd(50, 0), 100).unwrap();
        assert_eq!(
            outbox.depth(),
            depth_before,
            "live events while replay-pending must be dropped, not queued"
        );

        // The client replays: restore, then the replayed suffix arrives.
        outbox.replay_restore();
        assert!(!outbox.is_replay_pending());
        for i in 0..12u64 {
            outbox.deliver_replayed(upd(i, 0), i + 1).unwrap();
        }
        outbox.mark_current_through(100);
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let got = flatten(rx.try_iter());
        let replays = got
            .iter()
            .filter(|e| matches!(e, DlmEvent::ReplayNeeded { .. }))
            .count();
        assert_eq!(replays, 1, "exactly one replay marker per sweep episode");
        assert!(
            !got.iter()
                .any(|e| matches!(e, DlmEvent::ResyncRequired { .. })),
            "replay mode must never fall back to resync markers on its own"
        );
        // The final cursor ack covers the marked-current frontier.
        match got.last() {
            Some(DlmEvent::CursorAck { seqno }) => assert_eq!(*seqno, 100),
            other => panic!("expected trailing cursor ack, got {other:?}"),
        }
    }

    #[test]
    fn cursor_ack_rides_drain_to_empty_and_is_not_repeated() {
        let (inner, rx) = collecting_sink();
        let outbox =
            OutboxSink::wrap_with_replay(inner, quick_config(64, 3), OverloadStats::new(), true);
        outbox.deliver_logged(upd(1, 1), 7).unwrap();
        outbox.advance_frontier(7);
        assert!(outbox.drain(Duration::from_secs(5)));
        // The ack is synthesized by the writer when the queue drains; it
        // may ride the same frame or a follow-up one.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        loop {
            got = flatten(got.into_iter().chain(rx.try_iter()));
            if got
                .iter()
                .any(|e| matches!(e, DlmEvent::CursorAck { seqno: 7 }))
            {
                break;
            }
            assert!(Instant::now() < deadline, "ack never arrived: {got:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(got[0], upd(1, 1));
        // No further acks without new seqnos.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rx.try_iter().count(), 0, "spurious repeat ack");
        // A control event (seqno 0) does not move the cursor: no new ack.
        outbox.deliver(DlmEvent::Ready { incarnation: 0 }).unwrap();
        assert!(outbox.drain(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(50));
        let tail = flatten(rx.try_iter());
        assert!(
            !tail.iter().any(|e| matches!(e, DlmEvent::CursorAck { .. })),
            "control events must not be acknowledged: {tail:?}"
        );
    }

    #[test]
    fn swept_seqnos_are_not_acked_before_replay_returns_them() {
        // Overflow sweeps seqnos 1..=12 into a ReplayNeeded marker. The
        // writer must NOT acknowledge those seqnos when the marker
        // drains — the client has not seen them; only the replay (and
        // its mark_current_through) may advance the ack frontier.
        let (inner, rx) = collecting_sink();
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap_with_replay(inner, quick_config(4, 99), stats, true);
        // Deliver under the state lock faster than the writer can drain
        // is racy from a test; force the sweep deterministically by a
        // burst far over high-water. Each push is its own "commit":
        // frontier advanced right after, as notify_committed does.
        for i in 0..64u64 {
            outbox.deliver_logged(upd(i, 0), i + 1).unwrap();
            outbox.advance_frontier(i + 1);
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(50));
        let got = flatten(rx.try_iter());
        if got
            .iter()
            .any(|e| matches!(e, DlmEvent::ReplayNeeded { .. }))
        {
            for e in &got {
                if let DlmEvent::CursorAck { seqno } = e {
                    // Only seqnos actually delivered ahead of the ack in
                    // the stream may be acknowledged.
                    let delivered: Vec<u64> = got
                        .iter()
                        .filter_map(|e| match e {
                            DlmEvent::Updated(info) => Some(info.oid.raw() + 1),
                            _ => None,
                        })
                        .collect();
                    assert!(
                        delivered.iter().any(|&s| s >= *seqno),
                        "ack {seqno} claims undelivered (swept) seqnos: {got:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lagging_resync_markers_count_once_per_episode() {
        // Legacy mode, writer wedged: the first sweep queues one marker
        // and counts one resyncs_sent; every later fold into the still-
        // queued marker must not count again (the accounting-drift fix).
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap(inner, quick_config(4, 1), stats.clone());
        for round in 0..3 {
            for i in 0..20u64 {
                outbox.deliver(upd(i, round)).unwrap();
            }
        }
        assert!(outbox.is_lagging());
        assert_eq!(
            stats.resyncs_sent.get(),
            1,
            "one marker episode must count exactly one resync sent"
        );
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(outbox.drain(Duration::from_secs(5)));
        let markers = flatten(rx.try_iter())
            .iter()
            .filter(|e| matches!(e, DlmEvent::ResyncRequired { .. }))
            .count();
        assert_eq!(
            markers as u64,
            stats.resyncs_sent.get(),
            "resyncs_sent must match the markers actually delivered"
        );
    }

    #[test]
    fn replay_restore_resets_high_water_gauges() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, _rx) = unbounded();
        let inner: Arc<dyn EventSink> = {
            let gate = Arc::clone(&gate);
            Arc::new(move |e: DlmEvent| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                tx.send(e).map_err(|_| DbError::Disconnected)
            })
        };
        let stats = OverloadStats::new();
        let outbox = OutboxSink::wrap_with_replay(inner, quick_config(4, 99), stats.clone(), true);
        for i in 0..12u64 {
            outbox.deliver_logged(upd(i, 0), i + 1).unwrap();
        }
        assert!(stats.queue_depth.high_water() > 1);
        outbox.replay_restore();
        assert!(
            outbox.depth_stats().high_water() <= 1,
            "restore must reset the per-outbox high-water mark"
        );
        assert!(
            stats.queue_depth.high_water() <= 1,
            "restore must reset the shared high-water mark"
        );
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
    }

    #[test]
    fn dead_inner_sink_kills_outbox() {
        let (inner, rx) = collecting_sink();
        drop(rx);
        let outbox = OutboxSink::wrap(inner, quick_config(8, 2), OverloadStats::new());
        outbox.deliver(upd(1, 1)).unwrap();
        // The writer hits the dead sink and marks the outbox dead;
        // subsequent delivers fail so the DLM counts the client dead.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if outbox.deliver(upd(2, 2)).is_err() {
                break;
            }
            assert!(Instant::now() < deadline, "outbox never died");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::proto::UpdateInfo;
    use displaydb_common::TxnId;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum In {
        Updated { oid: u64, version: u8 },
        Marked { oid: u64, txn: u64 },
        Resolved { oid: u64, txn: u64 },
        Delta { oid: u64, attr: u16, value: u8 },
    }

    fn arb_in() -> impl Strategy<Value = In> {
        let oid = 0u64..8;
        let txn = 0u64..4;
        prop_oneof![
            (oid.clone(), any::<u8>()).prop_map(|(oid, version)| In::Updated { oid, version }),
            (oid.clone(), txn.clone()).prop_map(|(oid, txn)| In::Marked { oid, txn }),
            (oid.clone(), txn).prop_map(|(oid, txn)| In::Resolved { oid, txn }),
            (oid, 0u16..4, any::<u8>()).prop_map(|(oid, attr, value)| In::Delta {
                oid,
                attr,
                value
            }),
        ]
    }

    fn to_event(i: &In) -> DlmEvent {
        match *i {
            In::Updated { oid, version } => {
                DlmEvent::Updated(UpdateInfo::eager(Oid::new(oid), vec![version]))
            }
            In::Marked { oid, txn } => DlmEvent::Marked {
                oid: Oid::new(oid),
                txn: TxnId::new(txn),
            },
            In::Resolved { oid, txn } => DlmEvent::Resolved {
                oid: Oid::new(oid),
                txn: TxnId::new(txn),
                committed: true,
            },
            In::Delta { oid, attr, value } => DlmEvent::Delta {
                oid: Oid::new(oid),
                version: 1,
                changed: vec![(attr, vec![value])],
                trace: 0,
            },
        }
    }

    proptest! {
        /// Without overflow, coalescing must (a) keep the *latest*
        /// payload for every OID that still has an Updated queued,
        /// (b) never emit a Resolved before its own Marked, and
        /// (c) only ever shrink the mark/resolve traffic by cancelling
        /// complete pairs.
        #[test]
        fn prop_coalescing_latest_wins_no_reorder(inputs in proptest::collection::vec(arb_in(), 1..120)) {
            // High-water above the input length: pure coalescing, no sweeps.
            let mut q = CoalescingQueue::new(1024);
            for i in &inputs {
                q.push(to_event(i));
            }
            let mut drained = Vec::new();
            while let Some(e) = q.pop() {
                drained.push(e);
            }

            // (a) latest payload wins per OID.
            let mut last_payload: std::collections::HashMap<u64, u8> = Default::default();
            for i in &inputs {
                if let In::Updated { oid, version } = i {
                    last_payload.insert(*oid, *version);
                }
            }
            let mut seen_updated: std::collections::HashSet<u64> = Default::default();
            for e in &drained {
                if let DlmEvent::Updated(info) = e {
                    prop_assert!(seen_updated.insert(info.oid.raw()),
                        "two Updated for oid {} survived coalescing", info.oid.raw());
                    prop_assert_eq!(info.payload.as_deref(), Some(&[last_payload[&info.oid.raw()]][..]),
                        "stale payload survived for oid {}", info.oid.raw());
                }
            }

            // (a') deltas merge per OID: at most one Delta survives per
            // OID (same version throughout), carrying the union of the
            // changed attrs with the latest value for each.
            let mut last_attr_value: std::collections::HashMap<(u64, u16), u8> = Default::default();
            for i in &inputs {
                if let In::Delta { oid, attr, value } = i {
                    last_attr_value.insert((*oid, *attr), *value);
                }
            }
            let mut seen_delta: std::collections::HashSet<u64> = Default::default();
            let mut delta_attrs_out: std::collections::HashSet<(u64, u16)> = Default::default();
            for e in &drained {
                if let DlmEvent::Delta { oid, changed, .. } = e {
                    prop_assert!(seen_delta.insert(oid.raw()),
                        "two Deltas for oid {} survived merging", oid.raw());
                    for (attr, value) in changed {
                        delta_attrs_out.insert((oid.raw(), *attr));
                        prop_assert_eq!(value.as_slice(), &[last_attr_value[&(oid.raw(), *attr)]][..],
                            "stale delta value survived for oid {} attr {}", oid.raw(), attr);
                    }
                }
            }
            // Union: every attr ever mentioned for an OID survives.
            for &(oid, attr) in last_attr_value.keys() {
                prop_assert!(delta_attrs_out.contains(&(oid, attr)),
                    "delta attr {attr} for oid {oid} lost in the merge");
            }

            // (b) for each (oid, txn): counting Marked as +1 and
            // Resolved as -1, the running sum in the drained order never
            // goes more negative than in the input order — a Resolved
            // never jumped ahead of its Marked.
            let floor = |seq: &[(u64, u64, i32)], oid: u64, txn: u64| -> i32 {
                let mut run = 0;
                let mut min = 0;
                for &(o, t, d) in seq {
                    if o == oid && t == txn {
                        run += d;
                        min = min.min(run);
                    }
                }
                min
            };
            let project = |events: &[DlmEvent]| -> Vec<(u64, u64, i32)> {
                events.iter().filter_map(|e| match e {
                    DlmEvent::Marked { oid, txn } => Some((oid.raw(), txn.raw(), 1)),
                    DlmEvent::Resolved { oid, txn, .. } => Some((oid.raw(), txn.raw(), -1)),
                    _ => None,
                }).collect()
            };
            let in_seq = project(&inputs.iter().map(to_event).collect::<Vec<_>>());
            let out_seq = project(&drained);
            for oid in 0u64..8 {
                for txn in 0u64..4 {
                    prop_assert!(floor(&out_seq, oid, txn) >= floor(&in_seq, oid, txn),
                        "Resolved reordered ahead of Marked for oid {oid} txn {txn}");
                }
            }

            // (c) cancellation removes whole pairs: the mark/resolve
            // delta per (oid, txn) is unchanged.
            let total = |seq: &[(u64, u64, i32)], oid: u64, txn: u64| -> i32 {
                seq.iter().filter(|&&(o, t, _)| o == oid && t == txn).map(|&(_, _, d)| d).sum()
            };
            for oid in 0u64..8 {
                for txn in 0u64..4 {
                    prop_assert_eq!(total(&out_seq, oid, txn), total(&in_seq, oid, txn),
                        "unbalanced cancellation for oid {} txn {}", oid, txn);
                }
            }
        }

        /// With a small high-water mark, memory stays bounded and every
        /// OID ever referenced is either delivered normally or covered
        /// by a resync marker — nothing is silently lost.
        #[test]
        fn prop_overflow_loses_nothing(inputs in proptest::collection::vec(arb_in(), 1..200)) {
            let mut q = CoalescingQueue::new(8);
            let mut drained = Vec::new();
            for i in &inputs {
                q.push(to_event(i));
                prop_assert!(q.len() <= 9, "queue depth {} breached the bound", q.len());
                // Drain opportunistically every few pushes to mimic a
                // consumer that is slow, not dead.
                if drained.len() % 3 == 0 {
                    if let Some(e) = q.pop() {
                        drained.push(e);
                    }
                }
            }
            while let Some(e) = q.pop() {
                drained.push(e);
            }
            let mut covered: std::collections::HashSet<u64> = Default::default();
            for e in &drained {
                match e {
                    DlmEvent::Updated(info) => { covered.insert(info.oid.raw()); }
                    DlmEvent::Marked { oid, .. }
                    | DlmEvent::Resolved { oid, .. }
                    | DlmEvent::Delta { oid, .. } => {
                        covered.insert(oid.raw());
                    }
                    DlmEvent::ResyncRequired { oids } => {
                        covered.extend(oids.iter().map(|o| o.raw()));
                    }
                    _ => {}
                }
            }
            for i in &inputs {
                let oid = match i {
                    In::Updated { oid, .. } | In::Marked { oid, .. } | In::Resolved { oid, .. }
                    | In::Delta { oid, .. } => *oid,
                };
                // A cancelled Marked/Resolved pair is legitimately
                // invisible; an Updated or Delta must always be covered.
                if matches!(i, In::Updated { .. } | In::Delta { .. }) {
                    prop_assert!(covered.contains(&oid), "state change to oid {oid} lost");
                }
            }
        }
    }
}
