//! The persistent NMS schema.
//!
//! Deliberately **GUI-free** (paper § 2.1): no screen coordinates, no
//! colors, no draw methods — those live in display classes. Objects carry
//! realistic operational baggage (vendor data, serials, notes) precisely
//! because the GUI only needs a couple of attributes: that asymmetry is
//! what the display cache exploits (§ 3.2).

use displaydb_schema::class::ClassBuilder;
use displaydb_schema::{AttrType, Catalog};

/// Build the NMS catalog.
///
/// Class hierarchy:
/// ```text
/// NetObject (Name, Status, Notes)
/// ├── Node (Kind, Location, Vendor, Model, MgmtAddress, SnmpCommunity)
/// ├── Link (Src, Dst, Utilization, CapacityMbps, ErrorRate, LatencyMs,
/// │         Vendor, CircuitId)
/// ├── Path (Links)
/// └── Hardware (Parent, Children, Model, SerialNumber, AssetTag, LoadPct)
///     ├── Site / Building / Room / Rack / Device / Card / Port
/// ```
pub fn nms_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.define(
        ClassBuilder::new("NetObject")
            .attr("Name", AttrType::Str)
            .attr_default("Status", AttrType::Str, "up")
            .attr("Notes", AttrType::Str),
    )
    .expect("NetObject");
    c.define(
        ClassBuilder::new("Node")
            .extends("NetObject")
            .attr_default("Kind", AttrType::Str, "router")
            .attr("Location", AttrType::Str)
            .attr("Vendor", AttrType::Str)
            .attr("Model", AttrType::Str)
            .attr("MgmtAddress", AttrType::Str)
            .attr("SnmpCommunity", AttrType::Str),
    )
    .expect("Node");
    c.define(
        ClassBuilder::new("Link")
            .extends("NetObject")
            .attr("Src", AttrType::Ref)
            .attr("Dst", AttrType::Ref)
            .attr("Utilization", AttrType::Float)
            .attr_default("CapacityMbps", AttrType::Int, 1000i64)
            .attr("ErrorRate", AttrType::Float)
            .attr("LatencyMs", AttrType::Float)
            .attr("Vendor", AttrType::Str)
            .attr("CircuitId", AttrType::Str),
    )
    .expect("Link");
    c.define(
        ClassBuilder::new("Path")
            .extends("NetObject")
            .attr("Links", AttrType::RefList),
    )
    .expect("Path");
    c.define(
        ClassBuilder::new("Hardware")
            .extends("NetObject")
            .attr("Parent", AttrType::Ref)
            .attr("Children", AttrType::RefList)
            .attr("Model", AttrType::Str)
            .attr("SerialNumber", AttrType::Str)
            .attr("AssetTag", AttrType::Str)
            .attr("LoadPct", AttrType::Float),
    )
    .expect("Hardware");
    for kind in ["Site", "Building", "Room", "Rack", "Device", "Card", "Port"] {
        c.define(ClassBuilder::new(kind).extends("Hardware"))
            .expect(kind);
    }
    c
}

/// Standard operational notes attached to generated objects — the GUI
/// never shows them; they model the database-side bulk.
pub fn boilerplate_notes(tag: &str) -> String {
    format!(
        "{tag}: provisioned by autogen; maintenance window sun 02:00-04:00 UTC; \
         escalation noc@example.net tier-2; change-control CC-77-{tag}; \
         last field audit team 7; power feed A/B diverse; \
         documentation https://wiki.example.net/netops/{tag}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::DbObject;

    #[test]
    fn catalog_builds_with_all_classes() {
        let c = nms_catalog();
        for name in [
            "NetObject",
            "Node",
            "Link",
            "Path",
            "Hardware",
            "Site",
            "Building",
            "Room",
            "Rack",
            "Device",
            "Card",
            "Port",
        ] {
            assert!(c.id_of(name).is_some(), "missing class {name}");
        }
    }

    #[test]
    fn link_layout_includes_inherited() {
        let c = nms_catalog();
        let link = c.id_of("Link").unwrap();
        let names: Vec<&str> = c
            .layout(link)
            .unwrap()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(&names[..3], &["Name", "Status", "Notes"]);
        assert!(names.contains(&"Utilization"));
        assert!(names.contains(&"CircuitId"));
    }

    #[test]
    fn hardware_kinds_are_subclasses() {
        let c = nms_catalog();
        let hw = c.id_of("Hardware").unwrap();
        for kind in ["Site", "Rack", "Port"] {
            assert!(c.is_subclass_of(c.id_of(kind).unwrap(), hw));
        }
        assert_eq!(c.family_of(hw).len(), 8); // Hardware + 7 kinds
    }

    #[test]
    fn default_values_apply() {
        let c = nms_catalog();
        let link = DbObject::new_named(&c, "Link").unwrap();
        assert_eq!(link.get(&c, "Status").unwrap().as_str().unwrap(), "up");
        assert_eq!(
            link.get(&c, "CapacityMbps").unwrap().as_int().unwrap(),
            1000
        );
        link.validate(&c).unwrap();
    }

    #[test]
    fn notes_are_bulky() {
        assert!(boilerplate_notes("rack-17").len() > 150);
    }
}
