//! The monitoring feed: a background process committing measurement
//! updates.
//!
//! § 4.3 of the paper: "there was a separate process that was
//! continuously modifying attribute values of database objects,
//! simulating real-time network monitoring", and its "relatively high
//! update rate" is what stresses the display-consistency machinery.

use displaydb_client::DbClient;
use displaydb_common::metrics::Counter;
use displaydb_common::{DbResult, Oid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monitor process parameters.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Target update transactions per second (each updates `batch`
    /// objects).
    pub rate_per_sec: f64,
    /// Objects updated per transaction.
    pub batch: usize,
    /// Maximum random-walk step applied to `Utilization`/`LoadPct`.
    pub walk: f64,
    /// Attribute to update (`"Utilization"` for links, `"LoadPct"` for
    /// hardware).
    pub attr: String,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 20.0,
            batch: 1,
            walk: 0.2,
            attr: "Utilization".into(),
            seed: 99,
        }
    }
}

/// Handle to a running monitor.
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    commits: Counter,
    objects_updated: Counter,
    aborts: Counter,
}

impl MonitorHandle {
    /// Committed update transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    /// Objects updated so far.
    pub fn objects_updated(&self) -> u64 {
        self.objects_updated.get()
    }

    /// Transactions aborted (conflicts) so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.get()
    }

    /// Stop the monitor and wait for its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// The monitor process itself.
pub struct MonitorProcess;

impl MonitorProcess {
    /// Spawn a monitor updating random members of `targets` through
    /// `client`.
    pub fn spawn(client: Arc<DbClient>, targets: Vec<Oid>, config: MonitorConfig) -> MonitorHandle {
        assert!(!targets.is_empty(), "monitor needs targets");
        let stop = Arc::new(AtomicBool::new(false));
        let commits = Counter::new();
        let objects_updated = Counter::new();
        let aborts = Counter::new();
        let thread_stop = Arc::clone(&stop);
        let thread_commits = commits.clone();
        let thread_updated = objects_updated.clone();
        let thread_aborts = aborts.clone();
        let thread = std::thread::Builder::new()
            .name("nms-monitor".into())
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed);
                let period = if config.rate_per_sec > 0.0 {
                    Duration::from_secs_f64(1.0 / config.rate_per_sec)
                } else {
                    Duration::ZERO
                };
                while !thread_stop.load(Ordering::Acquire) {
                    let started = Instant::now();
                    match Self::one_round(&client, &targets, &config, &mut rng) {
                        Ok(n) => {
                            thread_commits.inc();
                            thread_updated.add(n);
                        }
                        Err(_) => thread_aborts.inc(),
                    }
                    let elapsed = started.elapsed();
                    if period > elapsed {
                        std::thread::sleep(period - elapsed);
                    }
                }
            })
            .expect("spawn monitor thread");
        MonitorHandle {
            stop,
            thread: Some(thread),
            commits,
            objects_updated,
            aborts,
        }
    }

    fn one_round(
        client: &Arc<DbClient>,
        targets: &[Oid],
        config: &MonitorConfig,
        rng: &mut StdRng,
    ) -> DbResult<u64> {
        let cat = Arc::clone(client.catalog());
        let mut txn = client.begin()?;
        let mut updated = 0u64;
        for _ in 0..config.batch {
            let oid = targets[rng.random_range(0..targets.len())];
            let step = rng.random_range(-config.walk..=config.walk);
            txn.update(oid, |obj| {
                let current = obj.get(&cat, &config.attr)?.as_float()?;
                obj.set(&cat, &config.attr, (current + step).clamp(0.0, 1.0))
            })?;
            updated += 1;
        }
        txn.commit()?;
        Ok(updated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::nms_catalog;
    use crate::topology::{Topology, TopologyConfig};
    use displaydb_client::ClientConfig;
    use displaydb_server::{Server, ServerConfig};
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-monitor-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn monitor_commits_updates_at_rate() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("rate")), &hub).unwrap();
        let gen_client =
            DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen"))
                .unwrap();
        let topo = Topology::generate(
            &gen_client,
            &TopologyConfig {
                nodes: 5,
                links: 8,
                paths: 0,
                path_len: 0,
                seed: 3,
            },
        )
        .unwrap();

        let mon_client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("monitor"),
        )
        .unwrap();
        let handle = MonitorProcess::spawn(
            mon_client,
            topo.links.clone(),
            MonitorConfig {
                rate_per_sec: 200.0,
                batch: 2,
                ..MonitorConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(500));
        handle.stop();
        // At 200/s for 0.5s we expect dozens of commits even with slack.
        // (handle consumed; counters checked via a fresh read below)

        // Values remain in range.
        for &link in &topo.links {
            let obj = gen_client.read_fresh(link).unwrap();
            let u = obj.get(&cat, "Utilization").unwrap().as_float().unwrap();
            assert!((0.0..=1.0).contains(&u), "utilization out of range: {u}");
        }
    }

    #[test]
    fn monitor_counters_advance() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("counters")), &hub)
                .unwrap();
        let client =
            DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen"))
                .unwrap();
        let topo = Topology::generate(
            &client,
            &TopologyConfig {
                nodes: 4,
                links: 6,
                paths: 0,
                path_len: 0,
                seed: 3,
            },
        )
        .unwrap();
        let handle = MonitorProcess::spawn(
            Arc::clone(&client),
            topo.links.clone(),
            MonitorConfig {
                rate_per_sec: 500.0,
                ..MonitorConfig::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.commits() < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(handle.commits() >= 10, "monitor too slow");
        assert!(handle.objects_updated() >= handle.commits());
        handle.stop();
    }
}
