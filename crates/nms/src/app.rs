//! Application assembly: the network map display and refresher thread.

use crate::topology::Topology;
use displaydb_client::DbClient;
use displaydb_common::{DbResult, Oid};
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_schema::Value;
use displaydb_viz::render::AsciiRenderer;
use displaydb_viz::{Color, Point, Rect, Shape};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The operator's map view: color-coded link lines between laid-out
/// nodes (the paper's § 2.1 example display).
pub struct NetworkMap {
    /// The underlying display.
    pub display: Arc<Display>,
    /// Display object per topology link, index-aligned with
    /// `Topology::links`.
    pub link_dos: Vec<DoId>,
    /// Node positions, index-aligned with `Topology::nodes`.
    pub positions: Vec<Point>,
    /// Link OID → display object.
    pub by_oid: HashMap<Oid, DoId>,
}

impl NetworkMap {
    /// Build the map over `topo` inside `canvas`.
    pub fn build(
        client: &Arc<DbClient>,
        cache: &Arc<DisplayCache>,
        topo: &Topology,
        canvas: Rect,
    ) -> DbResult<Self> {
        let display = Display::open(Arc::clone(client), Arc::clone(cache), "network-map");
        let positions =
            displaydb_viz::graph::force_layout(topo.nodes.len(), &topo.endpoints, canvas, 40);

        // Line endpoints are GUI state, not display-class attributes:
        // keep them beside the draw closure.
        let endpoints: Arc<Mutex<HashMap<DoId, (Point, Point)>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let draw_endpoints = Arc::clone(&endpoints);
        display.set_draw(move |obj| {
            let (from, to) = *draw_endpoints.lock().get(&obj.id)?;
            // Early-notify mark overrides the utilization color so the
            // operator sees "being updated".
            let color = if obj.marked_by.is_some() {
                Color::MARKED
            } else {
                match obj.attr("Color") {
                    Some(Value::Int(rgb)) => Color::new(
                        ((rgb >> 16) & 0xff) as u8,
                        ((rgb >> 8) & 0xff) as u8,
                        (rgb & 0xff) as u8,
                    ),
                    _ => Color::GRAY,
                }
            };
            Some(Shape::Line {
                from,
                to,
                color,
                width: 1.0,
            })
        });

        let class = color_coded_link("Utilization");
        let mut link_dos = Vec::with_capacity(topo.links.len());
        let mut by_oid = HashMap::new();
        for (i, &link) in topo.links.iter().enumerate() {
            let id = display.add_object(&class, vec![link])?;
            let (a, b) = topo.endpoints[i];
            endpoints.lock().insert(id, (positions[a], positions[b]));
            // Geometry = the line's bounding box (hit testing / zoom).
            let (pa, pb) = (positions[a], positions[b]);
            display.set_geometry(
                id,
                Rect::new(
                    pa.x.min(pb.x),
                    pa.y.min(pb.y),
                    (pa.x - pb.x).abs().max(1.0),
                    (pa.y - pb.y).abs().max(1.0),
                ),
            );
            link_dos.push(id);
            by_oid.insert(link, id);
        }

        Ok(Self {
            display,
            link_dos,
            positions,
            by_oid,
        })
    }

    /// Render the map as ASCII art (`cols` x `rows` characters over the
    /// given scene scale).
    pub fn render_ascii(&self, cols: usize, rows: usize, scale: f32) -> String {
        let mut renderer = AsciiRenderer::new(cols, rows);
        self.display
            .with_scene(|scene| renderer.draw_scene(scene, scale));
        renderer.to_string_grid()
    }
}

/// Handle to a background display refresher.
pub struct RefresherHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl RefresherHandle {
    /// Stop the refresher.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RefresherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Spawn a thread that keeps `display` fresh by processing notifications
/// as they arrive (the GUI event loop of a real application).
pub fn spawn_refresher(display: Arc<Display>) -> RefresherHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("display-refresher".into())
        .spawn(move || {
            while !thread_stop.load(Ordering::Acquire) {
                match display.wait_and_process(Duration::from_millis(50)) {
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn refresher");
    RefresherHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, MonitorProcess};
    use crate::schema::nms_catalog;
    use crate::topology::TopologyConfig;
    use displaydb_client::ClientConfig;
    use displaydb_server::{Server, ServerConfig};
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;
    use std::time::Instant;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-app-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn map_builds_and_renders() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("map")), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("operator"),
        )
        .unwrap();
        let topo = Topology::generate(
            &client,
            &TopologyConfig {
                nodes: 8,
                links: 12,
                paths: 0,
                path_len: 0,
                seed: 11,
            },
        )
        .unwrap();
        let cache = Arc::new(DisplayCache::new());
        let map =
            NetworkMap::build(&client, &cache, &topo, Rect::new(0.0, 0.0, 400.0, 200.0)).unwrap();
        assert_eq!(map.link_dos.len(), 12);
        assert_eq!(map.display.object_count(), 12);
        let art = map.render_ascii(100, 25, 8.0);
        // Lines must be visible as utilization shade characters.
        assert!(
            art.contains('.') || art.contains('+') || art.contains('#'),
            "empty render:\n{art}"
        );
    }

    #[test]
    fn live_map_follows_monitor_updates() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("live")), &hub).unwrap();
        let operator = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("operator"),
        )
        .unwrap();
        let topo = Topology::generate(
            &operator,
            &TopologyConfig {
                nodes: 6,
                links: 10,
                paths: 0,
                path_len: 0,
                seed: 2,
            },
        )
        .unwrap();
        let cache = Arc::new(DisplayCache::new());
        let map =
            NetworkMap::build(&operator, &cache, &topo, Rect::new(0.0, 0.0, 300.0, 300.0)).unwrap();
        let refresher = spawn_refresher(Arc::clone(&map.display));

        let mon_client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("monitor"),
        )
        .unwrap();
        let monitor = MonitorProcess::spawn(
            mon_client,
            topo.links.clone(),
            MonitorConfig {
                rate_per_sec: 100.0,
                batch: 2,
                walk: 0.5,
                ..MonitorConfig::default()
            },
        );

        // Wait until the display has processed a healthy number of
        // refreshes.
        let deadline = Instant::now() + Duration::from_secs(10);
        while map.display.stats().refreshes.get() < 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        monitor.stop();
        refresher.stop();
        assert!(
            map.display.stats().refreshes.get() >= 20,
            "display never caught the monitor's updates: {}",
            map.display.stats().refreshes.get()
        );
        // Propagation latency was recorded.
        let summary = map.display.stats().refresh_latency.summary().unwrap();
        assert!(summary.count >= 1);
    }
}
