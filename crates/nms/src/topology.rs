//! Deterministic topology and hardware-hierarchy generators.
//!
//! Everything is seeded, so experiments are reproducible run-to-run. The
//! generators persist objects through a normal client connection — they
//! exercise the same transaction path as any application.

use crate::schema::boilerplate_notes;
use displaydb_client::DbClient;
use displaydb_common::{DbResult, Oid};
use displaydb_schema::DbObject;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Topology generation parameters.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links (>= nodes-1; a spanning backbone is built first).
    pub links: usize,
    /// Number of multi-link paths to define.
    pub paths: usize,
    /// Links per path.
    pub path_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            nodes: 20,
            links: 40,
            paths: 5,
            path_len: 3,
            seed: 42,
        }
    }
}

/// A generated network topology.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Node OIDs.
    pub nodes: Vec<Oid>,
    /// Link OIDs.
    pub links: Vec<Oid>,
    /// Per link: indices into `nodes` of its endpoints.
    pub endpoints: Vec<(usize, usize)>,
    /// Path OIDs.
    pub paths: Vec<Oid>,
}

impl Topology {
    /// Generate and persist a topology.
    pub fn generate(client: &Arc<DbClient>, config: &TopologyConfig) -> DbResult<Self> {
        assert!(config.nodes >= 2, "need at least two nodes");
        let cat = Arc::clone(client.catalog());
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut txn = client.begin()?;
        let mut nodes = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let obj = DbObject::new_named(&cat, "Node")?
                .with(&cat, "Name", format!("node-{i}"))?
                .with(&cat, "Kind", if i % 5 == 0 { "router" } else { "switch" })?
                .with(&cat, "Location", format!("pop-{}", i % 7))?
                .with(&cat, "Vendor", "acme telecommunications")?
                .with(&cat, "Model", format!("AX-{}00", 1 + i % 4))?
                .with(&cat, "MgmtAddress", format!("10.0.{}.{}", i / 250, i % 250))?
                .with(&cat, "SnmpCommunity", "n0c-r0")?
                .with(&cat, "Notes", boilerplate_notes(&format!("node-{i}")))?;
            nodes.push(txn.create(obj)?.oid);
        }

        // Spanning backbone, then random extra links.
        let mut endpoints: Vec<(usize, usize)> = Vec::with_capacity(config.links);
        for i in 1..config.nodes {
            endpoints.push((rng.random_range(0..i), i));
        }
        while endpoints.len() < config.links {
            let a = rng.random_range(0..config.nodes);
            let b = rng.random_range(0..config.nodes);
            if a != b {
                endpoints.push((a.min(b), a.max(b)));
            }
        }
        endpoints.truncate(config.links);

        let mut links = Vec::with_capacity(endpoints.len());
        for (i, &(a, b)) in endpoints.iter().enumerate() {
            let obj = DbObject::new_named(&cat, "Link")?
                .with(&cat, "Name", format!("link-{i}"))?
                .with(&cat, "Src", nodes[a])?
                .with(&cat, "Dst", nodes[b])?
                .with(&cat, "Utilization", rng.random_range(0.0..1.0))?
                .with(&cat, "ErrorRate", rng.random_range(0.0..0.001))?
                .with(&cat, "LatencyMs", rng.random_range(0.1..30.0))?
                .with(&cat, "Vendor", "acme telecommunications")?
                .with(&cat, "CircuitId", format!("CKT-96-{i:06}"))?
                .with(&cat, "Notes", boilerplate_notes(&format!("link-{i}")))?;
            links.push(txn.create(obj)?.oid);
        }

        let mut paths = Vec::with_capacity(config.paths);
        for p in 0..config.paths {
            if links.is_empty() || config.path_len == 0 {
                break;
            }
            let members: Vec<Oid> = (0..config.path_len)
                .map(|_| links[rng.random_range(0..links.len())])
                .collect();
            let obj = DbObject::new_named(&cat, "Path")?
                .with(&cat, "Name", format!("path-{p}"))?
                .with(&cat, "Links", members)?;
            paths.push(txn.create(obj)?.oid);
        }
        txn.commit()?;

        Ok(Self {
            nodes,
            links,
            endpoints,
            paths,
        })
    }

    /// The links of a path, by path index (reads through the client).
    pub fn path_links(&self, client: &Arc<DbClient>, path_idx: usize) -> DbResult<Vec<Oid>> {
        let obj = client.read(self.paths[path_idx])?;
        Ok(obj.get(client.catalog(), "Links")?.as_ref_list()?.to_vec())
    }
}

/// A generated hardware containment hierarchy.
#[derive(Clone, Debug)]
pub struct HardwareTree {
    /// Root (site) OID.
    pub root: Oid,
    /// All OIDs, parents before children.
    pub all: Vec<Oid>,
    /// `(oid, parent_index, depth, leaf)` in creation order; parent index
    /// into `all` (root's parent is itself).
    pub structure: Vec<(Oid, usize, usize, bool)>,
}

/// Hierarchy shape: children per level below the root. The default gives
/// 1 site → 2 buildings → 2 rooms → 3 racks → 4 devices (48 leaves).
#[derive(Clone, Debug)]
pub struct HardwareConfig {
    /// Fan-out per level; its length is the tree depth below the root.
    pub fanout: Vec<usize>,
    /// RNG seed for load values.
    pub seed: u64,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self {
            fanout: vec![2, 2, 3, 4],
            seed: 7,
        }
    }
}

const LEVEL_CLASSES: [&str; 7] = ["Site", "Building", "Room", "Rack", "Device", "Card", "Port"];

impl HardwareTree {
    /// Generate and persist a hierarchy.
    pub fn generate(client: &Arc<DbClient>, config: &HardwareConfig) -> DbResult<Self> {
        let cat = Arc::clone(client.catalog());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut txn = client.begin()?;
        let mut all: Vec<Oid> = Vec::new();
        let mut structure: Vec<(Oid, usize, usize, bool)> = Vec::new();

        // Children recorded per parent to patch the Children attribute.
        let mut children_of: Vec<Vec<Oid>> = Vec::new();

        let root_obj = DbObject::new_named(&cat, "Site")?
            .with(&cat, "Name", "site-hq")?
            .with(&cat, "Model", "campus")?
            .with(&cat, "SerialNumber", "S-0001")?
            .with(&cat, "AssetTag", "AT-0001")?
            .with(&cat, "LoadPct", rng.random_range(0.0..1.0))?
            .with(&cat, "Notes", boilerplate_notes("site-hq"))?;
        let root = txn.create(root_obj)?.oid;
        all.push(root);
        children_of.push(Vec::new());
        structure.push((root, 0, 0, config.fanout.is_empty()));

        let mut frontier: Vec<usize> = vec![0]; // indices into `all`
        for (depth, &fan) in config.fanout.iter().enumerate() {
            let class = LEVEL_CLASSES[(depth + 1).min(LEVEL_CLASSES.len() - 1)];
            let is_leaf_level = depth + 1 == config.fanout.len();
            let mut next_frontier = Vec::new();
            for &parent_idx in &frontier {
                for k in 0..fan {
                    let name = format!("{}-{}-{}", class.to_lowercase(), all.len(), k);
                    let obj = DbObject::new_named(&cat, class)?
                        .with(&cat, "Name", name.clone())?
                        .with(&cat, "Parent", all[parent_idx])?
                        .with(&cat, "Model", format!("M-{}", k + 1))?
                        .with(&cat, "SerialNumber", format!("S-{:05}", all.len()))?
                        .with(&cat, "AssetTag", format!("AT-{:05}", all.len()))?
                        .with(&cat, "LoadPct", rng.random_range(0.0..1.0))?
                        .with(&cat, "Notes", boilerplate_notes(&name))?;
                    let oid = txn.create(obj)?.oid;
                    let idx = all.len();
                    all.push(oid);
                    children_of.push(Vec::new());
                    children_of[parent_idx].push(oid);
                    structure.push((oid, parent_idx, depth + 1, is_leaf_level));
                    next_frontier.push(idx);
                }
            }
            frontier = next_frontier;
        }

        // Patch Children lists.
        for (idx, children) in children_of.iter().enumerate() {
            if children.is_empty() {
                continue;
            }
            let mut obj = txn.read(all[idx])?;
            obj.set(&cat, "Children", children.clone())?;
            txn.write(obj)?;
        }
        txn.commit()?;

        Ok(Self {
            root,
            all,
            structure,
        })
    }

    /// Leaf OIDs (monitor targets).
    pub fn leaves(&self) -> Vec<Oid> {
        self.structure
            .iter()
            .filter(|(_, _, _, leaf)| *leaf)
            .map(|(oid, _, _, _)| *oid)
            .collect()
    }

    /// Build a weight tree for the treemap (weights = subtree leaf
    /// counts, or `LoadPct` read live when `by_load`).
    pub fn to_tree(
        &self,
        client: &Arc<DbClient>,
        by_load: bool,
    ) -> DbResult<displaydb_viz::TreeNode<Oid>> {
        let cat = client.catalog();
        // children indices
        let mut kids: Vec<Vec<usize>> = vec![Vec::new(); self.structure.len()];
        for (idx, &(_, parent, depth, _)) in self.structure.iter().enumerate() {
            if depth > 0 {
                kids[parent].push(idx);
            }
        }
        fn build(
            tree: &HardwareTree,
            kids: &[Vec<usize>],
            idx: usize,
            client: &Arc<DbClient>,
            cat: &displaydb_schema::Catalog,
            by_load: bool,
        ) -> DbResult<displaydb_viz::TreeNode<Oid>> {
            let (oid, _, _, leaf) = tree.structure[idx];
            if leaf || kids[idx].is_empty() {
                let weight = if by_load {
                    client.read(oid)?.get(cat, "LoadPct")?.as_float()? + 0.05
                } else {
                    1.0
                };
                return Ok(displaydb_viz::TreeNode::leaf(oid, weight));
            }
            let children = kids[idx]
                .iter()
                .map(|&k| build(tree, kids, k, client, cat, by_load))
                .collect::<DbResult<Vec<_>>>()?;
            Ok(displaydb_viz::TreeNode::branch(oid, children))
        }
        build(self, &kids, 0, client, cat, by_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::nms_catalog;
    use displaydb_client::ClientConfig;
    use displaydb_schema::Catalog;
    use displaydb_server::{Server, ServerConfig};
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-nms-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn setup(name: &str) -> (Server, Arc<DbClient>, Arc<Catalog>) {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp(name)), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("topo"),
        )
        .unwrap();
        (server, client, cat)
    }

    #[test]
    fn generate_topology_persists_everything() {
        let (_s, client, cat) = setup("gen");
        let config = TopologyConfig {
            nodes: 10,
            links: 20,
            paths: 3,
            path_len: 4,
            seed: 1,
        };
        let topo = Topology::generate(&client, &config).unwrap();
        assert_eq!(topo.nodes.len(), 10);
        assert_eq!(topo.links.len(), 20);
        assert_eq!(topo.paths.len(), 3);
        assert_eq!(topo.endpoints.len(), 20);
        // Every link readable, with valid endpoints.
        for (i, &link) in topo.links.iter().enumerate() {
            let obj = client.read(link).unwrap();
            let (a, b) = topo.endpoints[i];
            assert_eq!(
                obj.get(&cat, "Src").unwrap().as_ref_oid().unwrap(),
                topo.nodes[a]
            );
            assert_eq!(
                obj.get(&cat, "Dst").unwrap().as_ref_oid().unwrap(),
                topo.nodes[b]
            );
            let u = obj.get(&cat, "Utilization").unwrap().as_float().unwrap();
            assert!((0.0..=1.0).contains(&u));
        }
        // Paths reference real links.
        let members = topo.path_links(&client, 0).unwrap();
        assert_eq!(members.len(), 4);
        for m in members {
            assert!(topo.links.contains(&m));
        }
        // Extents match.
        assert_eq!(client.extent("Node", false).unwrap().len(), 10);
        assert_eq!(client.extent("Link", false).unwrap().len(), 20);
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let (_s, client, _cat) = setup("det");
        let config = TopologyConfig::default();
        let t1 = Topology::generate(&client, &config).unwrap();
        let t2 = Topology::generate(&client, &config).unwrap();
        assert_eq!(t1.endpoints, t2.endpoints);
        assert_ne!(t1.links, t2.links); // fresh OIDs, same shape
    }

    #[test]
    fn hardware_tree_structure() {
        let (_s, client, cat) = setup("hw");
        let config = HardwareConfig {
            fanout: vec![2, 3],
            seed: 5,
        };
        let hw = HardwareTree::generate(&client, &config).unwrap();
        assert_eq!(hw.all.len(), 1 + 2 + 6);
        assert_eq!(hw.leaves().len(), 6);
        // Children lists patched correctly.
        let root = client.read(hw.root).unwrap();
        assert_eq!(
            root.get(&cat, "Children")
                .unwrap()
                .as_ref_list()
                .unwrap()
                .len(),
            2
        );
        // Subclass extents: everything is Hardware.
        assert_eq!(client.extent("Hardware", true).unwrap().len(), 9);
        assert_eq!(client.extent("Site", false).unwrap().len(), 1);
        assert_eq!(client.extent("Building", false).unwrap().len(), 2);
        assert_eq!(client.extent("Room", false).unwrap().len(), 6);
    }

    #[test]
    fn hardware_to_tree_weights() {
        let (_s, client, _cat) = setup("tree");
        let hw = HardwareTree::generate(
            &client,
            &HardwareConfig {
                fanout: vec![2, 2],
                seed: 5,
            },
        )
        .unwrap();
        let tree = hw.to_tree(&client, false).unwrap();
        assert_eq!(tree.node_count(), 7);
        assert_eq!(tree.total_weight(), 4.0);
        let by_load = hw.to_tree(&client, true).unwrap();
        assert!(by_load.total_weight() > 0.0);
    }
}
