//! Network-management application substrate.
//!
//! The paper's motivating application (§ 1) is an NMS over an OODBMS
//! (its MANDATE system): graphical displays of a live network, operators monitoring
//! and reconfiguring it, and a process feeding real-time measurements
//! into the database. This crate rebuilds that world synthetically:
//!
//! * [`schema`] — the persistent network schema (nodes, links, paths) and
//!   the hardware containment hierarchy (site → building → room → rack →
//!   device → card → port) the prototype browsed with Tree-Maps and the
//!   PDQ tree-browser (§ 4);
//! * [`topology`] — deterministic topology and hierarchy generators;
//! * [`monitor`] — the "separate process continuously modifying attribute
//!   values, simulating real-time network monitoring" (§ 4.3);
//! * [`workload`] — scripted concurrent users performing the paper's
//!   "simple monitoring and updating functions", with per-action latency
//!   reports;
//! * [`app`] — assembly helpers: a network-map display with color-coded
//!   links, treemap/PDQ views over the hardware hierarchy, and a
//!   background refresher thread.

pub mod app;
pub mod monitor;
pub mod schema;
pub mod topology;
pub mod workload;

pub use app::{spawn_refresher, NetworkMap, RefresherHandle};
pub use monitor::{MonitorConfig, MonitorHandle, MonitorProcess};
pub use schema::nms_catalog;
pub use topology::{HardwareTree, Topology, TopologyConfig};
pub use workload::{UserConfig, UserReport, UserSession};
