//! Scripted concurrent users.
//!
//! § 4.3: "we had up to 4 concurrent users performing simple monitoring
//! and updating functions". A [`UserSession`] reproduces that action mix
//! and reports per-action latency — the quantity behind the paper's
//! "performance was very satisfying, in terms of user interface
//! responsiveness".

use displaydb_client::DbClient;
use displaydb_common::metrics::{LatencyRecorder, LatencySummary};
use displaydb_common::{DbResult, Oid};
use displaydb_display::{Display, DoId};
use displaydb_viz::Rect;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// User behaviour parameters.
#[derive(Clone, Debug)]
pub struct UserConfig {
    /// Number of actions to perform.
    pub actions: usize,
    /// Pause between actions (human think time).
    pub think_time: Duration,
    /// Probability an action is an update (vs. monitor/zoom).
    pub update_fraction: f64,
    /// Probability an action is a zoom/pan (display-cache-only).
    pub zoom_fraction: f64,
    /// Early-notify discipline (§ 3.3): skip objects currently marked as
    /// "being updated" instead of editing them.
    pub avoid_marked: bool,
    /// How long an update transaction holds its exclusive lock before
    /// committing — models the human editing time that makes interactive
    /// update conflicts likely (and early-notify marks visible).
    pub edit_hold: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UserConfig {
    fn default() -> Self {
        Self {
            actions: 50,
            think_time: Duration::ZERO,
            update_fraction: 0.2,
            zoom_fraction: 0.2,
            avoid_marked: false,
            edit_hold: Duration::ZERO,
            seed: 1,
        }
    }
}

/// Latency and conflict report for one user.
#[derive(Clone, Debug, Default)]
pub struct UserReport {
    /// Latency of monitor (read/inspect) actions.
    pub monitor: LatencyRecorder,
    /// Latency of zoom/pan actions.
    pub zoom: LatencyRecorder,
    /// Latency of update transactions (begin→commit).
    pub update: LatencyRecorder,
    /// Committed updates.
    pub commits: u64,
    /// Aborted updates (lock conflicts/deadlocks).
    pub aborts: u64,
    /// Updates redirected away from marked objects.
    pub conflicts_avoided: u64,
}

impl UserReport {
    /// Summaries by action kind (None if that kind never ran).
    pub fn summaries(
        &self,
    ) -> (
        Option<LatencySummary>,
        Option<LatencySummary>,
        Option<LatencySummary>,
    ) {
        (
            self.monitor.summary(),
            self.zoom.summary(),
            self.update.summary(),
        )
    }
}

/// One simulated operator working a display.
pub struct UserSession {
    client: Arc<DbClient>,
    display: Arc<Display>,
    /// `(database object, its display object)` pairs the user works on.
    objects: Vec<(Oid, DoId)>,
    config: UserConfig,
}

impl UserSession {
    /// Create a session over pre-built display objects.
    pub fn new(
        client: Arc<DbClient>,
        display: Arc<Display>,
        objects: Vec<(Oid, DoId)>,
        config: UserConfig,
    ) -> Self {
        assert!(!objects.is_empty(), "user needs objects to work on");
        Self {
            client,
            display,
            objects,
            config,
        }
    }

    /// Run the scripted action mix to completion.
    pub fn run(&self) -> DbResult<UserReport> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = UserReport::default();
        for _ in 0..self.config.actions {
            let roll: f64 = rng.random_range(0.0..1.0);
            if roll < self.config.update_fraction {
                self.do_update(&mut rng, &mut report);
            } else if roll < self.config.update_fraction + self.config.zoom_fraction {
                self.do_zoom(&mut rng, &mut report);
            } else {
                self.do_monitor(&mut rng, &mut report);
            }
            if !self.config.think_time.is_zero() {
                std::thread::sleep(self.config.think_time);
            }
        }
        Ok(report)
    }

    /// Monitor: keep the display current and inspect an object — a pure
    /// display-cache interaction.
    fn do_monitor(&self, rng: &mut StdRng, report: &mut UserReport) {
        report.monitor.time(|| {
            let _ = self.display.process_pending();
            let (_, do_id) = self.objects[rng.random_range(0..self.objects.len())];
            if let Some(obj) = self.display.object(do_id) {
                // "Inspect": touch the derived attributes.
                let _ = obj.attr("Color");
                let _ = obj.attr("Utilization");
            }
        });
    }

    /// Zoom/pan: geometry-only churn over a batch of display objects
    /// (§ 2.2's canonical example of an action that must not depend on
    /// database state).
    fn do_zoom(&self, rng: &mut StdRng, report: &mut UserReport) {
        report.zoom.time(|| {
            let scale: f32 = rng.random_range(0.5..2.0);
            for _ in 0..8.min(self.objects.len()) {
                let (_, do_id) = self.objects[rng.random_range(0..self.objects.len())];
                if let Some(obj) = self.display.object(do_id) {
                    let r = obj.geometry.unwrap_or(Rect::new(0.0, 0.0, 10.0, 10.0));
                    self.display.set_geometry(
                        do_id,
                        Rect::new(r.x * scale, r.y * scale, r.w * scale, r.h * scale),
                    );
                }
            }
        });
    }

    /// Update: a real transaction against the database.
    fn do_update(&self, rng: &mut StdRng, report: &mut UserReport) {
        // Pick a target, honouring early-notify marks if configured.
        let mut pick = self.objects[rng.random_range(0..self.objects.len())];
        if self.config.avoid_marked {
            let marked = |p: &(Oid, DoId)| {
                self.display
                    .object(p.1)
                    .is_some_and(|o| o.marked_by.is_some())
            };
            let mut deterred = false;
            for _ in 0..4 {
                if !marked(&pick) {
                    break;
                }
                report.conflicts_avoided += 1;
                pick = self.objects[rng.random_range(0..self.objects.len())];
            }
            if marked(&pick) {
                // Everything in sight is being edited: the user is
                // deterred (the paper's word) and simply does not edit.
                deterred = true;
            }
            if deterred {
                return;
            }
        }
        let (oid, _) = pick;
        let cat = Arc::clone(self.client.catalog());
        let delta: f64 = rng.random_range(-0.3..0.3);
        let started = std::time::Instant::now();
        let result: DbResult<()> = (|| {
            let mut txn = self.client.begin()?;
            // Take the exclusive lock first: under the early-notify
            // protocol this is the moment other displays mark the object.
            txn.lock_exclusive(oid)?;
            if !self.config.edit_hold.is_zero() {
                std::thread::sleep(self.config.edit_hold);
            }
            txn.update(oid, |obj| {
                let u = obj.get(&cat, "Utilization")?.as_float()?;
                obj.set(&cat, "Utilization", (u + delta).clamp(0.0, 1.0))
            })?;
            txn.commit()
        })();
        report.update.record(started.elapsed());
        match result {
            Ok(()) => report.commits += 1,
            Err(_) => report.aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NetworkMap;
    use crate::schema::nms_catalog;
    use crate::topology::{Topology, TopologyConfig};
    use displaydb_client::ClientConfig;
    use displaydb_display::DisplayCache;
    use displaydb_server::{Server, ServerConfig};
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-workload-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn single_user_mix_produces_report() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("single")), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("user"),
        )
        .unwrap();
        let topo = Topology::generate(
            &client,
            &TopologyConfig {
                nodes: 6,
                links: 10,
                paths: 0,
                path_len: 0,
                seed: 4,
            },
        )
        .unwrap();
        let cache = Arc::new(DisplayCache::new());
        let map = NetworkMap::build(
            &client,
            &cache,
            &topo,
            displaydb_viz::Rect::new(0.0, 0.0, 100.0, 100.0),
        )
        .unwrap();
        let objects: Vec<(Oid, DoId)> = topo
            .links
            .iter()
            .copied()
            .zip(map.link_dos.iter().copied())
            .collect();
        let session = UserSession::new(
            Arc::clone(&client),
            Arc::clone(&map.display),
            objects,
            UserConfig {
                actions: 60,
                update_fraction: 0.3,
                zoom_fraction: 0.3,
                ..UserConfig::default()
            },
        );
        let report = session.run().unwrap();
        let total = report.monitor.len() + report.zoom.len() + report.update.len();
        assert_eq!(total, 60);
        assert!(report.commits > 0, "no update ever committed");
        assert_eq!(report.aborts, 0);
        let (m, z, u) = report.summaries();
        assert!(m.is_some() && z.is_some() && u.is_some());
        // Display-cache actions must be far faster than update
        // transactions (the paper's core performance claim).
        let m = m.unwrap();
        let u = u.unwrap();
        assert!(
            m.p50 < u.p50,
            "monitoring ({:?}) should be cheaper than updating ({:?})",
            m.p50,
            u.p50
        );
    }

    #[test]
    fn four_concurrent_users_like_the_paper() {
        let cat = Arc::new(nms_catalog());
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("four")), &hub).unwrap();
        let gen = DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen"))
            .unwrap();
        let topo = Topology::generate(
            &gen,
            &TopologyConfig {
                nodes: 8,
                links: 16,
                paths: 0,
                path_len: 0,
                seed: 4,
            },
        )
        .unwrap();
        let mut handles = Vec::new();
        for u in 0..4u64 {
            let hub = hub.clone();
            let topo = topo.clone();
            handles.push(std::thread::spawn(move || {
                let client = DbClient::connect(
                    Box::new(hub.connect().unwrap()),
                    ClientConfig::named(format!("user-{u}")),
                )
                .unwrap();
                let cache = Arc::new(DisplayCache::new());
                let map = NetworkMap::build(
                    &client,
                    &cache,
                    &topo,
                    displaydb_viz::Rect::new(0.0, 0.0, 100.0, 100.0),
                )
                .unwrap();
                let objects: Vec<(Oid, DoId)> = topo
                    .links
                    .iter()
                    .copied()
                    .zip(map.link_dos.iter().copied())
                    .collect();
                UserSession::new(
                    Arc::clone(&client),
                    Arc::clone(&map.display),
                    objects,
                    UserConfig {
                        actions: 30,
                        update_fraction: 0.3,
                        seed: u,
                        ..UserConfig::default()
                    },
                )
                .run()
                .unwrap()
            }));
        }
        let mut commits = 0;
        for h in handles {
            let report = h.join().unwrap();
            commits += report.commits;
            // Retryable conflicts are acceptable under contention, but the
            // workload must make progress.
        }
        assert!(commits >= 4, "users made no progress: {commits} commits");
    }
}
