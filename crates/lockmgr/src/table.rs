//! The lock table: grant/queue/upgrade/deadlock machinery.

use crate::mode::{compatible, LockMode, Owner};
use displaydb_common::metrics::Counter;
use displaydb_common::sync::{ranks, OrderedCondvar, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct LockManagerConfig {
    /// Maximum time a request may wait before failing with
    /// [`DbError::LockTimeout`].
    pub wait_timeout: Duration,
    /// Whether to run waits-for deadlock detection at block time.
    pub deadlock_detection: bool,
}

impl Default for LockManagerConfig {
    fn default() -> Self {
        Self {
            wait_timeout: Duration::from_secs(10),
            deadlock_detection: true,
        }
    }
}

/// Counters exposed for the server-overhead experiment (paper § 4.3:
/// "display locks ... very small fraction of overhead").
#[derive(Clone, Debug, Default)]
pub struct LockStats {
    /// Transactional lock grants (S/U/X).
    pub grants: Counter,
    /// Display lock grants.
    pub display_grants: Counter,
    /// Requests that had to wait.
    pub waits: Counter,
    /// Deadlocks resolved by aborting a victim.
    pub deadlocks: Counter,
    /// Requests that timed out.
    pub timeouts: Counter,
    /// Lock upgrades performed (e.g. U→X).
    pub upgrades: Counter,
}

#[derive(Debug)]
enum WaitState {
    Waiting,
    Granted,
    /// Chosen as a deadlock victim.
    Victim,
}

#[derive(Debug)]
struct Waiter {
    owner: Owner,
    mode: LockMode,
    /// True when this waiter already holds a weaker lock on the object.
    upgrade: bool,
    state: OrderedMutex<WaitState>,
    cond: OrderedCondvar,
}

#[derive(Debug, Default)]
struct Entry {
    granted: Vec<(Owner, LockMode)>,
    queue: VecDeque<Arc<Waiter>>,
}

impl Entry {
    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.queue.is_empty()
    }

    fn held_by(&self, owner: Owner) -> Option<LockMode> {
        // An owner may hold at most one transactional mode plus possibly a
        // display lock; transactional lookup ignores display entries and
        // vice versa (callers pass the right mode kind).
        self.granted
            .iter()
            .find(|(o, _)| *o == owner)
            .map(|(_, m)| *m)
    }

    /// Whether `mode` is compatible with every granted lock except those
    /// held by `owner` itself.
    fn compatible_with_granted(&self, owner: Owner, mode: LockMode) -> bool {
        self.granted
            .iter()
            .filter(|(o, _)| *o != owner)
            .all(|(_, held)| compatible(*held, mode))
    }
}

#[derive(Default)]
struct State {
    locks: HashMap<Oid, Entry>,
    /// Owner -> objects it holds or waits on (for O(1) release-all).
    held: HashMap<Owner, HashSet<Oid>>,
}

/// The integrated lock manager (paper § 3.3 / § 4.1).
pub struct LockManager {
    state: OrderedMutex<State>,
    config: LockManagerConfig,
    stats: LockStats,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager").finish()
    }
}

impl LockManager {
    /// Create a lock manager with `config`.
    pub fn new(config: LockManagerConfig) -> Self {
        Self {
            state: OrderedMutex::new(ranks::LOCKMGR_TABLE, State::default()),
            config,
            stats: LockStats::default(),
        }
    }

    /// Statistics counters (shared handles).
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Acquire `mode` on `oid` for `owner`, waiting if necessary.
    ///
    /// * Display locks are granted immediately — they are compatible with
    ///   everything, so they can never wait (and the paper's DLM does not
    ///   even acknowledge them, § 4.1).
    /// * Transactional locks follow FIFO queueing with upgrades served
    ///   first; blocking triggers deadlock detection.
    pub fn acquire(&self, owner: Owner, oid: Oid, mode: LockMode) -> DbResult<()> {
        let waiter = {
            let mut state = self.state.lock();
            let entry = state.locks.entry(oid).or_default();

            if mode == LockMode::Display {
                if entry.held_by(owner) != Some(LockMode::Display) {
                    entry.granted.push((owner, LockMode::Display));
                    state.held.entry(owner).or_default().insert(oid);
                }
                self.stats.display_grants.inc();
                return Ok(());
            }

            // Re-entrant or covered request.
            let held = entry
                .granted
                .iter()
                .find(|(o, m)| *o == owner && *m != LockMode::Display)
                .map(|(_, m)| *m);
            if let Some(h) = held {
                if h.covers(mode) {
                    return Ok(());
                }
            }
            let upgrade = held.is_some();

            let can_grant = entry.compatible_with_granted(owner, mode)
                && (upgrade || entry.queue.iter().all(|w| compatible(w.mode, mode)));
            if can_grant {
                Self::grant_in_entry(entry, owner, mode);
                state.held.entry(owner).or_default().insert(oid);
                self.stats.grants.inc();
                if upgrade {
                    self.stats.upgrades.inc();
                }
                return Ok(());
            }

            // Must wait.
            self.stats.waits.inc();
            let waiter = Arc::new(Waiter {
                owner,
                mode,
                upgrade,
                state: OrderedMutex::new(ranks::LOCKMGR_WAITER, WaitState::Waiting),
                cond: OrderedCondvar::new(),
            });
            if upgrade {
                entry.queue.push_front(Arc::clone(&waiter));
            } else {
                entry.queue.push_back(Arc::clone(&waiter));
            }
            state.held.entry(owner).or_default().insert(oid);

            if self.config.deadlock_detection {
                if let Some(victim) = self.detect_deadlock(&state, owner) {
                    self.stats.deadlocks.inc();
                    if Owner::Txn(victim) == owner {
                        // We are the victim: undo our enqueue and fail.
                        let entry = state.locks.get_mut(&oid).expect("entry exists");
                        entry.queue.retain(|w| !Arc::ptr_eq(w, &waiter));
                        Self::promote(&mut state, oid, &self.stats);
                        return Err(DbError::Deadlock { victim });
                    }
                    // Abort another waiting transaction in the cycle.
                    Self::abort_victim(&mut state, victim);
                }
            }
            waiter
        };

        // Wait outside the table lock.
        let mut ws = waiter.state.lock();
        loop {
            match *ws {
                WaitState::Granted => return Ok(()),
                WaitState::Victim => {
                    return Err(DbError::Deadlock {
                        victim: owner.txn().unwrap_or(TxnId::new(0)),
                    })
                }
                WaitState::Waiting => {
                    if waiter
                        .cond
                        .wait_for(&mut ws, self.config.wait_timeout)
                        .timed_out()
                    {
                        drop(ws);
                        // Remove ourselves from the queue if still waiting.
                        let mut state = self.state.lock();
                        let mut removed = false;
                        if let Some(entry) = state.locks.get_mut(&oid) {
                            let before = entry.queue.len();
                            entry.queue.retain(|w| !Arc::ptr_eq(w, &waiter));
                            removed = entry.queue.len() != before;
                        }
                        if removed {
                            Self::promote(&mut state, oid, &self.stats);
                            self.stats.timeouts.inc();
                            return Err(DbError::LockTimeout { oid });
                        }
                        // We were granted (or victimized) in the race
                        // window; re-check the state.
                        drop(state);
                        ws = waiter.state.lock();
                        match *ws {
                            WaitState::Granted => return Ok(()),
                            WaitState::Victim => {
                                return Err(DbError::Deadlock {
                                    victim: owner.txn().unwrap_or(TxnId::new(0)),
                                })
                            }
                            WaitState::Waiting => continue,
                        }
                    }
                }
            }
        }
    }

    fn grant_in_entry(entry: &mut Entry, owner: Owner, mode: LockMode) {
        if let Some(slot) = entry
            .granted
            .iter_mut()
            .find(|(o, m)| *o == owner && *m != LockMode::Display)
        {
            slot.1 = mode; // upgrade in place
        } else {
            entry.granted.push((owner, mode));
        }
    }

    /// Grant queued requests that are now compatible. FIFO: scan from the
    /// head, stop at the first incompatible waiter (upgrades sit at the
    /// front already).
    fn promote(state: &mut State, oid: Oid, stats: &LockStats) {
        let Some(entry) = state.locks.get_mut(&oid) else {
            return;
        };
        let mut granted_owners: Vec<Owner> = Vec::new();
        while let Some(waiter) = entry.queue.front() {
            let ok = entry.compatible_with_granted(waiter.owner, waiter.mode);
            if !ok {
                break;
            }
            let waiter = entry.queue.pop_front().expect("front exists");
            Self::grant_in_entry(entry, waiter.owner, waiter.mode);
            stats.grants.inc();
            if waiter.upgrade {
                stats.upgrades.inc();
            }
            granted_owners.push(waiter.owner);
            let mut ws = waiter.state.lock();
            *ws = WaitState::Granted;
            waiter.cond.notify_one();
        }
        if entry.is_empty() {
            state.locks.remove(&oid);
        }
        for owner in granted_owners {
            state.held.entry(owner).or_default().insert(oid);
        }
    }

    /// Build the waits-for graph and look for a cycle reachable from
    /// `from`. Returns the youngest transaction in the cycle, if any.
    fn detect_deadlock(&self, state: &State, from: Owner) -> Option<TxnId> {
        let Some(start) = from.txn() else {
            return None; // display/client owners never wait
        };
        // Edges: waiting txn -> txns holding incompatible granted locks on
        // the object it waits for, plus incompatible waiters queued ahead.
        let mut edges: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        for entry in state.locks.values() {
            for (qi, waiter) in entry.queue.iter().enumerate() {
                let Some(wt) = waiter.owner.txn() else {
                    continue;
                };
                let deps = edges.entry(wt).or_default();
                for (o, m) in &entry.granted {
                    if *o != waiter.owner && !compatible(*m, waiter.mode) {
                        if let Some(t) = o.txn() {
                            deps.insert(t);
                        }
                    }
                }
                for ahead in entry.queue.iter().take(qi) {
                    if ahead.owner != waiter.owner && !compatible(ahead.mode, waiter.mode) {
                        if let Some(t) = ahead.owner.txn() {
                            deps.insert(t);
                        }
                    }
                }
            }
        }
        // DFS from `start` looking for a cycle that includes `start`'s
        // strongly-reachable set; detect any cycle on the path.
        let mut path: Vec<TxnId> = Vec::new();
        let mut on_path: HashSet<TxnId> = HashSet::new();
        let mut visited: HashSet<TxnId> = HashSet::new();
        fn dfs(
            node: TxnId,
            edges: &HashMap<TxnId, HashSet<TxnId>>,
            path: &mut Vec<TxnId>,
            on_path: &mut HashSet<TxnId>,
            visited: &mut HashSet<TxnId>,
        ) -> Option<Vec<TxnId>> {
            path.push(node);
            on_path.insert(node);
            if let Some(deps) = edges.get(&node) {
                for &next in deps {
                    if on_path.contains(&next) {
                        let start = path.iter().position(|&t| t == next).unwrap();
                        return Some(path[start..].to_vec());
                    }
                    if visited.insert(next) {
                        if let Some(c) = dfs(next, edges, path, on_path, visited) {
                            return Some(c);
                        }
                    }
                }
            }
            path.pop();
            on_path.remove(&node);
            None
        }
        visited.insert(start);
        let cycle = dfs(start, &edges, &mut path, &mut on_path, &mut visited)?;
        // Youngest = largest txn id (most recently started loses).
        cycle.into_iter().max()
    }

    /// Mark every waiting request of `victim` as victimized and wake it.
    fn abort_victim(state: &mut State, victim: TxnId) {
        let owner = Owner::Txn(victim);
        for entry in state.locks.values_mut() {
            for waiter in entry.queue.iter().filter(|w| w.owner == owner) {
                let mut ws = waiter.state.lock();
                *ws = WaitState::Victim;
                waiter.cond.notify_one();
            }
            entry.queue.retain(|w| w.owner != owner);
        }
    }

    /// Release one lock. Display locks are released by their client owner;
    /// transactional locks by their transaction.
    pub fn release(&self, owner: Owner, oid: Oid) {
        let mut state = self.state.lock();
        if let Some(entry) = state.locks.get_mut(&oid) {
            entry.granted.retain(|(o, _)| *o != owner);
            entry.queue.retain(|w| w.owner != owner);
            if entry.is_empty() {
                state.locks.remove(&oid);
            }
        }
        if let Some(set) = state.held.get_mut(&owner) {
            set.remove(&oid);
            if set.is_empty() {
                state.held.remove(&owner);
            }
        }
        Self::promote(&mut state, oid, &self.stats);
    }

    /// Release everything `owner` holds or waits for (commit/abort path
    /// for transactions, disconnect path for clients). Returns the objects
    /// released.
    pub fn release_all(&self, owner: Owner) -> Vec<Oid> {
        let mut state = self.state.lock();
        let oids: Vec<Oid> = state
            .held
            .remove(&owner)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for &oid in &oids {
            if let Some(entry) = state.locks.get_mut(&oid) {
                entry.granted.retain(|(o, _)| *o != owner);
                entry.queue.retain(|w| w.owner != owner);
                if entry.is_empty() {
                    state.locks.remove(&oid);
                }
            }
            Self::promote(&mut state, oid, &self.stats);
        }
        oids
    }

    /// The transactional mode `owner` currently holds on `oid`, if any.
    pub fn held_mode(&self, owner: Owner, oid: Oid) -> Option<LockMode> {
        let state = self.state.lock();
        state.locks.get(&oid).and_then(|e| e.held_by(owner))
    }

    /// Clients currently holding display locks on `oid` — the notification
    /// fan-out set for both protocol variants (§ 3.3).
    pub fn display_holders(&self, oid: Oid) -> Vec<ClientId> {
        let state = self.state.lock();
        state
            .locks
            .get(&oid)
            .map(|e| {
                e.granted
                    .iter()
                    .filter(|(_, m)| *m == LockMode::Display)
                    .filter_map(|(o, _)| o.client())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of objects with any lock state (table size).
    pub fn locked_objects(&self) -> usize {
        self.state.lock().locks.len()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(LockManagerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn lm() -> Arc<LockManager> {
        Arc::new(LockManager::new(LockManagerConfig {
            wait_timeout: Duration::from_millis(500),
            deadlock_detection: true,
        }))
    }

    fn txn(i: u64) -> Owner {
        Owner::Txn(TxnId::new(i))
    }

    fn client(i: u64) -> Owner {
        Owner::Client(ClientId::new(i))
    }

    const O1: Oid = Oid::new(1);
    const O2: Oid = Oid::new(2);

    #[test]
    fn shared_locks_coexist() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Shared).unwrap();
        lm.acquire(txn(2), O1, LockMode::Shared).unwrap();
        assert_eq!(lm.stats().grants.get(), 2);
    }

    #[test]
    fn exclusive_blocks_shared_until_release() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(txn(2), O1, LockMode::Shared));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "S request should be blocked by X");
        lm.release_all(txn(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn display_locks_never_block_and_never_block_others() {
        let lm = lm();
        // X held: display still granted instantly.
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        lm.acquire(client(10), O1, LockMode::Display).unwrap();
        lm.acquire(client(11), O1, LockMode::Display).unwrap();
        // Display held: X by another txn still granted instantly.
        lm.acquire(client(10), O2, LockMode::Display).unwrap();
        lm.acquire(txn(2), O2, LockMode::Exclusive).unwrap();
        assert_eq!(lm.stats().display_grants.get(), 3);
        assert_eq!(
            {
                let mut v = lm.display_holders(O1);
                v.sort();
                v
            },
            vec![ClientId::new(10), ClientId::new(11)]
        );
    }

    #[test]
    fn display_lock_is_idempotent_per_client() {
        let lm = lm();
        lm.acquire(client(1), O1, LockMode::Display).unwrap();
        lm.acquire(client(1), O1, LockMode::Display).unwrap();
        assert_eq!(lm.display_holders(O1).len(), 1);
    }

    #[test]
    fn display_locks_survive_transaction_release() {
        let lm = lm();
        lm.acquire(client(1), O1, LockMode::Display).unwrap();
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        lm.release_all(txn(1));
        assert_eq!(lm.display_holders(O1), vec![ClientId::new(1)]);
        lm.release_all(client(1));
        assert!(lm.display_holders(O1).is_empty());
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn reentrant_and_covered_requests() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        lm.acquire(txn(1), O1, LockMode::Shared).unwrap(); // covered
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap(); // re-entrant
        assert_eq!(lm.held_mode(txn(1), O1), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_s_to_x_waits_for_other_readers() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Shared).unwrap();
        lm.acquire(txn(2), O1, LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(txn(1), O1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished());
        lm.release_all(txn(2));
        h.join().unwrap().unwrap();
        assert_eq!(lm.held_mode(txn(1), O1), Some(LockMode::Exclusive));
        assert!(lm.stats().upgrades.get() >= 1);
    }

    #[test]
    fn update_mode_prevents_second_update() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Update).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(txn(2), O1, LockMode::Update));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "U-U must conflict");
        lm.release_all(txn(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn fifo_fairness_no_reader_overtake() {
        // t1 holds X; t2 queues S; t3's S must not be granted before t2.
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let lm2 = Arc::clone(&lm);
        let ord2 = Arc::clone(&order);
        let h2 = thread::spawn(move || {
            lm2.acquire(txn(2), O1, LockMode::Exclusive).unwrap();
            ord2.lock().push(2);
            thread::sleep(Duration::from_millis(20));
            lm2.release_all(txn(2));
        });
        thread::sleep(Duration::from_millis(30));
        let lm3 = Arc::clone(&lm);
        let ord3 = Arc::clone(&order);
        let h3 = thread::spawn(move || {
            lm3.acquire(txn(3), O1, LockMode::Shared).unwrap();
            ord3.lock().push(3);
            lm3.release_all(txn(3));
        });
        thread::sleep(Duration::from_millis(30));
        lm.release_all(txn(1));
        h2.join().unwrap();
        h3.join().unwrap();
        assert_eq!(*order.lock(), vec![2, 3], "FIFO order violated");
    }

    #[test]
    fn timeout_expires() {
        let lm = Arc::new(LockManager::new(LockManagerConfig {
            wait_timeout: Duration::from_millis(50),
            deadlock_detection: false,
        }));
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        let err = lm.acquire(txn(2), O1, LockMode::Shared).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
        assert_eq!(lm.stats().timeouts.get(), 1);
        // The lock table must be clean: release and re-grant works.
        lm.release_all(txn(1));
        lm.acquire(txn(2), O1, LockMode::Shared).unwrap();
    }

    #[test]
    fn deadlock_detected_and_victim_aborted() {
        let lm = lm();
        lm.acquire(txn(1), O1, LockMode::Exclusive).unwrap();
        lm.acquire(txn(2), O2, LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            // t1 waits for O2 (held by t2).
            lm2.acquire(txn(1), O2, LockMode::Exclusive)
        });
        thread::sleep(Duration::from_millis(50));
        // t2 waits for O1 (held by t1): cycle. Youngest (t2) is victim.
        let r2 = lm.acquire(txn(2), O1, LockMode::Exclusive);
        assert!(matches!(r2, Err(DbError::Deadlock { .. })));
        assert_eq!(lm.stats().deadlocks.get(), 1);
        // t2 aborts: release its locks; t1 proceeds.
        lm.release_all(txn(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn deadlock_victim_is_youngest_waiter() {
        let lm = lm();
        lm.acquire(txn(5), O1, LockMode::Exclusive).unwrap();
        lm.acquire(txn(9), O2, LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(txn(5), O2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // Cycle {5, 9}: youngest is 9 — the requester itself.
        let r = lm.acquire(txn(9), O1, LockMode::Exclusive);
        match r {
            Err(DbError::Deadlock { victim }) => assert_eq!(victim, TxnId::new(9)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        lm.release_all(txn(9));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_stress_no_lost_grants() {
        let lm = Arc::new(LockManager::new(LockManagerConfig {
            wait_timeout: Duration::from_secs(5),
            deadlock_detection: true,
        }));
        let successes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            let successes = Arc::clone(&successes);
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    let owner = txn(t * 1000 + i + 1);
                    let oid = Oid::new(i % 5);
                    // Lock objects in consistent (ascending) order, so no
                    // deadlock is possible; every acquire must succeed.
                    lm.acquire(owner, oid, LockMode::Exclusive).unwrap();
                    successes.fetch_add(1, Ordering::Relaxed);
                    lm.release_all(owner);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(successes.load(Ordering::Relaxed), 400);
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn display_holders_empty_when_none() {
        let lm = lm();
        assert!(lm.display_holders(O1).is_empty());
        lm.acquire(txn(1), O1, LockMode::Shared).unwrap();
        assert!(lm.display_holders(O1).is_empty());
    }
}
