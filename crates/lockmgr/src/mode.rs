//! Lock modes and the compatibility matrix.

use displaydb_common::{ClientId, TxnId};
use std::fmt;

/// Lock modes, ordered by strength for upgrade purposes
/// (`Shared < Update < Exclusive`; `Display` is outside the ordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Read lock: compatible with other reads.
    Shared,
    /// Update-intention lock: compatible with reads, conflicts with other
    /// updates/writes. Prevents the classic S→X upgrade deadlock.
    Update,
    /// Write lock: conflicts with everything except display locks.
    Exclusive,
    /// The paper's non-restrictive display lock (§ 3.3): compatible with
    /// **all** modes, including [`LockMode::Exclusive`] and itself. Holding
    /// one never blocks anybody; it only registers interest in update
    /// notifications.
    Display,
}

impl LockMode {
    /// Whether `self` (held) is at least as strong as `other` (requested),
    /// i.e. a holder of `self` needs no new lock to use `other`'s rights.
    /// Display is incomparable with the transactional modes.
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (Display, Display) => true,
            (Display, _) | (_, Display) => false,
            (Exclusive, _) => true,
            (Update, Shared) | (Update, Update) => true,
            (Shared, Shared) => true,
            _ => false,
        }
    }

    /// Short symbol used in traces and tests.
    pub fn symbol(self) -> &'static str {
        match self {
            LockMode::Shared => "S",
            LockMode::Update => "U",
            LockMode::Exclusive => "X",
            LockMode::Display => "D",
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The compatibility matrix of § 3.3: display locks are compatible with
/// every mode; S/U/X follow the classic matrix.
pub fn compatible(held: LockMode, requested: LockMode) -> bool {
    use LockMode::*;
    match (held, requested) {
        (Display, _) | (_, Display) => true,
        (Shared, Shared) => true,
        (Shared, Update) | (Update, Shared) => true,
        (Update, Update) => false,
        (Exclusive, _) | (_, Exclusive) => false,
    }
}

/// Who holds or requests a lock. Transactional modes are owned by
/// transactions; display locks are owned by clients, because they span
/// transaction boundaries for the lifetime of a display (§ 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// A transaction (S/U/X locks).
    Txn(TxnId),
    /// A client application (display locks).
    Client(ClientId),
}

impl Owner {
    /// The transaction id, if this owner is a transaction.
    pub fn txn(self) -> Option<TxnId> {
        match self {
            Owner::Txn(t) => Some(t),
            Owner::Client(_) => None,
        }
    }

    /// The client id, if this owner is a client.
    pub fn client(self) -> Option<ClientId> {
        match self {
            Owner::Client(c) => Some(c),
            Owner::Txn(_) => None,
        }
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Txn(t) => write!(f, "{t}"),
            Owner::Client(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn matrix_matches_paper() {
        // Display locks are compatible with ALL modes (§ 3.3) — this is
        // the defining property that lets a GUI watch objects while
        // transactions update them.
        for m in [Shared, Update, Exclusive, Display] {
            assert!(compatible(Display, m), "D vs {m}");
            assert!(compatible(m, Display), "{m} vs D");
        }
        // Classic transactional matrix.
        assert!(compatible(Shared, Shared));
        assert!(compatible(Shared, Update));
        assert!(compatible(Update, Shared));
        assert!(!compatible(Update, Update));
        assert!(!compatible(Shared, Exclusive));
        assert!(!compatible(Exclusive, Shared));
        assert!(!compatible(Exclusive, Exclusive));
        assert!(!compatible(Update, Exclusive));
        assert!(!compatible(Exclusive, Update));
    }

    #[test]
    fn covers_ordering() {
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Update));
        assert!(Exclusive.covers(Exclusive));
        assert!(Update.covers(Shared));
        assert!(!Update.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Update));
        // Display neither covers nor is covered by transactional modes.
        assert!(!Display.covers(Shared));
        assert!(!Exclusive.covers(Display));
        assert!(Display.covers(Display));
    }

    #[test]
    fn owner_accessors() {
        let t = Owner::Txn(TxnId::new(3));
        let c = Owner::Client(ClientId::new(7));
        assert_eq!(t.txn(), Some(TxnId::new(3)));
        assert_eq!(t.client(), None);
        assert_eq!(c.client(), Some(ClientId::new(7)));
        assert_eq!(c.txn(), None);
    }
}
