//! Lock manager with **display locks**.
//!
//! This crate implements the paper's § 3.3 proposal directly inside a
//! conventional lock manager (the path the authors could not take with a
//! closed commercial server, and for which they predicted "simple
//! extensions"):
//!
//! * classic shared / update / exclusive modes with strict two-phase
//!   locking semantics, FIFO queues, lock upgrades, deadlock detection
//!   (waits-for cycle search, youngest-victim) and timeouts;
//! * the non-restrictive [`LockMode::Display`] mode, **compatible with
//!   every mode including exclusive**, granted immediately and held by
//!   *clients* (not transactions) across transaction boundaries for the
//!   lifetime of a display.
//!
//! The lock manager itself is policy-free about notifications: the server
//! asks [`LockManager::display_holders`] whom to notify on X-grant (early
//! notify) and on commit (post-commit notify).

pub mod mode;
pub mod table;

pub use mode::{compatible, LockMode, Owner};
pub use table::{LockManager, LockManagerConfig, LockStats};
