//! Length-prefixed frames over byte streams.
//!
//! Each frame is `[u32 little-endian payload length][payload]`. A maximum
//! frame size guards against corrupt prefixes. Used by the TCP transport;
//! the in-process transports exchange `Bytes` directly.

use bytes::Bytes;
use displaydb_common::{DbError, DbResult};
use std::io::{Read, Write};

/// Frames larger than this are rejected as corrupt.
pub const MAX_FRAME_LEN: usize = 128 * 1024 * 1024;

/// Write one frame to `w` (buffering is the caller's concern).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> DbResult<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(DbError::Protocol(format!(
            "frame of {} bytes exceeds maximum",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from `r`. Returns [`DbError::Disconnected`] on clean EOF
/// at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> DbResult<Bytes> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(DbError::Disconnected)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(DbError::Corrupt(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => DbError::Corrupt("truncated frame payload".into()),
        _ => DbError::Io(e),
    })?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(&read_frame(&mut cur).unwrap()[..], b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().len(), 0);
        assert_eq!(read_frame(&mut cur).unwrap().len(), 1000);
        assert!(matches!(read_frame(&mut cur), Err(DbError::Disconnected)));
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // keep length prefix + 2 payload bytes
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let buf = (u32::MAX).to_le_bytes().to_vec();
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn partial_length_prefix_is_disconnect() {
        // EOF mid-prefix: treated as disconnect (peer went away between
        // frames from our perspective once read_exact fails with EOF).
        let mut cur = Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_frame(&mut cur), Err(DbError::Disconnected)));
    }
}
