//! Binary wire format and transports for displaydb.
//!
//! The paper's system is a client-server OODBMS with two extra protocol
//! participants: the Display Lock Manager agent and the Display Lock Client
//! embedded in each application (§ 4). All of them exchange messages over
//! this crate's primitives:
//!
//! * [`codec`] — a compact hand-rolled binary encoding (`Encode`/`Decode`
//!   traits, LEB128 varints, zigzag integers, length-prefixed strings).
//! * [`frame`] — length-prefixed message frames over any `Read`/`Write`.
//! * [`transport`] — the [`transport::Channel`] abstraction with three
//!   implementations: real TCP (`std::net`), an in-process pair backed by
//!   crossbeam channels, and a latency-injecting simulated network used by
//!   the propagation experiments (paper § 4.3 measured 1–2 s propagation on
//!   a mid-90s LAN; the simulator lets us reproduce the *shape* of that
//!   result deterministically).

pub mod codec;
pub mod frame;
pub mod transport;

pub use codec::{Decode, Encode, WireReader, WireWriter};
pub use frame::{read_frame, write_frame};
pub use transport::{
    local_pair, sim_pair, Channel, FaultPlan, FaultyChannel, FaultyListener, Listener,
    LocalChannel, LocalHub, MeteredChannel, SimNetConfig, TcpChannel, TcpListenerWrapper,
    WireMeter,
};
