//! Compact binary encoding.
//!
//! Every protocol message, WAL record, and persistent object in displaydb
//! is serialized with these primitives. The format favours density (LEB128
//! varints, zigzag for signed integers) because the paper's core
//! performance argument is about *bytes cached per level of the memory
//! hierarchy* (§ 3.2): the experiment that reproduces the "display cache is
//! 3–5× smaller" observation measures encoded object sizes.

use bytes::{BufMut, Bytes, BytesMut};
use displaydb_common::{
    ClassId, ClientId, DbError, DbResult, DisplayId, Lsn, Oid, PageId, RecordId, TxnId,
};

/// Maximum length accepted for strings and byte arrays (guards against
/// corrupt length prefixes allocating unbounded memory).
pub const MAX_BLOB_LEN: usize = 64 * 1024 * 1024;

/// Serializer writing into a growable buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finish, returning a plain vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an f64 (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Append a zigzag-encoded signed varint.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(zigzag_encode(v));
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append raw bytes with no length prefix (caller knows the length).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }
}

/// Deserializer reading from a byte slice with bounds checking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a slice for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless all input was consumed. Catches trailing-garbage bugs.
    pub fn expect_exhausted(&self) -> DbResult<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DbError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DbError::Corrupt(format!(
                "unexpected end of input: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> DbResult<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> DbResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> DbResult<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> DbResult<f64> {
        let s = self.take(8)?;
        Ok(f64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> DbResult<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(DbError::Corrupt("varint overflow".into()));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(DbError::Corrupt("varint too long".into()));
            }
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn get_varint_signed(&mut self) -> DbResult<i64> {
        Ok(zigzag_decode(self.get_varint()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> DbResult<&'a [u8]> {
        let len = self.get_varint()? as usize;
        if len > MAX_BLOB_LEN {
            return Err(DbError::Corrupt(format!("blob length {len} exceeds cap")));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DbResult<&'a str> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw).map_err(|_| DbError::Corrupt("invalid utf-8 string".into()))
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> DbResult<&'a [u8]> {
        self.take(n)
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can be serialized to the wire format.
pub trait Encode {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Convenience: encode into a fresh byte buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Read one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self>;

    /// Convenience: decode from a complete buffer, requiring full
    /// consumption.
    fn decode_from_bytes(buf: &[u8]) -> DbResult<Self> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_exhausted()?;
        Ok(v)
    }
}

macro_rules! encode_varint_newtype {
    ($ty:ty, $inner:ty) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.put_varint(self.raw() as u64);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
                Ok(<$ty>::new(r.get_varint()? as $inner))
            }
        }
    };
}

encode_varint_newtype!(Oid, u64);
encode_varint_newtype!(ClassId, u32);
encode_varint_newtype!(TxnId, u64);
encode_varint_newtype!(ClientId, u64);
encode_varint_newtype!(DisplayId, u64);
encode_varint_newtype!(PageId, u64);
encode_varint_newtype!(Lsn, u64);

impl Encode for RecordId {
    fn encode(&self, w: &mut WireWriter) {
        self.page.encode(w);
        w.put_varint(u64::from(self.slot));
    }
}

impl Decode for RecordId {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let page = PageId::decode(r)?;
        let slot = r.get_varint()? as u16;
        Ok(RecordId::new(page, slot))
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        r.get_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(u64::from(*self));
    }
}
impl Decode for u16 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let v = r.get_varint()?;
        u16::try_from(v).map_err(|_| DbError::Corrupt("u16 out of range".into()))
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(u64::from(*self));
    }
}
impl Decode for u32 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| DbError::Corrupt("u32 out of range".into()))
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self);
    }
}
impl Decode for u64 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        r.get_varint()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint_signed(*self);
    }
}
impl Decode for i64 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        r.get_varint_signed()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
}
impl Decode for f64 {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        r.get_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(u8::from(*self));
    }
}
impl Decode for bool {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DbError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
}
impl Decode for String {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(r.get_str()?.to_string())
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(r.get_bytes()?.to_vec())
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
}
impl Decode for Bytes {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(Bytes::copy_from_slice(r.get_bytes()?))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(DbError::Corrupt(format!("invalid option tag {b}"))),
        }
    }
}

// Vec<u8> has a dedicated impl above; this generic covers other payloads.
macro_rules! vec_impl {
    ($t:ty) => {
        impl Encode for Vec<$t> {
            fn encode(&self, w: &mut WireWriter) {
                w.put_varint(self.len() as u64);
                for item in self {
                    item.encode(w);
                }
            }
        }
        impl Decode for Vec<$t> {
            fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
                let len = r.get_varint()? as usize;
                if len > MAX_BLOB_LEN {
                    return Err(DbError::Corrupt("vector length exceeds cap".into()));
                }
                let mut out = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    out.push(<$t>::decode(r)?);
                }
                Ok(out)
            }
        }
    };
}

vec_impl!(Oid);
vec_impl!(u64);
vec_impl!(i64);
vec_impl!(f64);
vec_impl!(String);
vec_impl!((Oid, Vec<u8>));
vec_impl!((Oid, Option<Vec<u8>>));

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_bytes();
        let back = T::decode_from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(3.25f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip("héllo wörld".to_string());
        roundtrip(String::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip(Oid::new(7));
        roundtrip(RecordId::new(PageId::new(3), 9));
        roundtrip(vec![Oid::new(1), Oid::new(2)]);
        roundtrip((Oid::new(1), "x".to_string()));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        let mut w = WireWriter::new();
        w.put_varint(100);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = 123456789u64.encode_to_bytes();
        for cut in 0..bytes.len() {
            let r = u64::decode_from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(5);
        w.put_u8(0xAB);
        let bytes = w.finish();
        assert!(u64::decode_from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(bool::decode_from_bytes(&[2]).is_err());
        assert!(Option::<u64>::decode_from_bytes(&[9]).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        assert!(String::decode_from_bytes(&bytes).is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 10 bytes of continuation with high garbage.
        let buf = [0xffu8; 11];
        let mut r = WireReader::new(&buf);
        assert!(r.get_varint().is_err());
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_i64_roundtrip(v in any::<i64>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_string_roundtrip(v in ".{0,200}") {
            roundtrip(v.to_string());
        }

        #[test]
        fn prop_bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..512)) {
            roundtrip(v);
        }

        #[test]
        fn prop_oid_vec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            roundtrip(v.into_iter().map(Oid::new).collect::<Vec<_>>());
        }

        #[test]
        fn prop_zigzag_inverse(v in any::<i64>()) {
            prop_assert_eq!(super::zigzag_decode(super::zigzag_encode(v)), v);
        }

        #[test]
        fn prop_decode_random_never_panics(v in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Decoding arbitrary junk must fail gracefully, never panic.
            let _ = String::decode_from_bytes(&v);
            let _ = Vec::<Oid>::decode_from_bytes(&v);
            let _ = Option::<Vec<u8>>::decode_from_bytes(&v);
        }
    }
}
