//! Pluggable message transports.
//!
//! All displaydb protocols (client↔server, client↔DLM) speak through the
//! [`Channel`] trait, so the same server code runs over:
//!
//! * [`TcpChannel`] — real sockets, proving the system is a genuine
//!   networked client-server DBMS like the paper's ObjectStore deployment;
//! * [`local_pair`] — an in-process pair over crossbeam channels, used by
//!   unit tests and overhead benchmarks where network cost must be zero;
//! * [`sim_pair`] — an in-process pair that injects a configurable one-way
//!   delay per message. The propagation experiment (paper § 4.3: 1–2 s
//!   commit-to-screen latency, three messages on the refresh path) uses it
//!   to turn *message counts* into deterministic, measurable latency.

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbError, DbResult};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::{read_frame, write_frame};

/// A bidirectional, message-oriented, thread-safe byte channel.
///
/// `send` may be called concurrently from many threads; `recv` is intended
/// for a single demultiplexing reader thread (concurrent `recv` is safe but
/// messages are distributed arbitrarily).
pub trait Channel: Send + Sync {
    /// Send one message. Never blocks on the peer's processing (only on
    /// local socket buffers for TCP).
    fn send(&self, payload: Bytes) -> DbResult<()>;

    /// Block until a message arrives, the peer disconnects
    /// ([`DbError::Disconnected`]) or the channel is closed.
    fn recv(&self) -> DbResult<Bytes>;

    /// Like [`Channel::recv`] with a deadline; [`DbError::Timeout`] on
    /// expiry.
    fn recv_timeout(&self, timeout: Duration) -> DbResult<Bytes>;

    /// Shut the channel down; pending and future `recv` calls fail with
    /// [`DbError::Disconnected`].
    fn close(&self);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A [`Channel`] over a TCP stream with length-prefixed frames.
pub struct TcpChannel {
    reader: OrderedMutex<TcpStream>,
    writer: OrderedMutex<BufWriter<TcpStream>>,
    /// Separate handle to the same socket, so `close()` can shut it down
    /// without taking `reader` — which a blocked `recv()` holds.
    shutdown: TcpStream,
}

impl TcpChannel {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> DbResult<Self> {
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let shutdown = stream.try_clone()?;
        Ok(Self {
            reader: OrderedMutex::new(ranks::WIRE_READER, stream),
            writer: OrderedMutex::new(ranks::WIRE_WRITER, writer),
            shutdown,
        })
    }

    /// Local socket address.
    pub fn local_addr(&self) -> DbResult<SocketAddr> {
        Ok(self.shutdown.local_addr()?)
    }
}

impl Channel for TcpChannel {
    fn send(&self, payload: Bytes) -> DbResult<()> {
        let mut w = self.writer.lock();
        write_frame(&mut *w, &payload)
    }

    fn recv(&self) -> DbResult<Bytes> {
        let mut r = self.reader.lock();
        r.set_read_timeout(None)?;
        read_frame(&mut *r)
    }

    fn recv_timeout(&self, timeout: Duration) -> DbResult<Bytes> {
        let mut r = self.reader.lock();
        r.set_read_timeout(Some(timeout))?;
        match read_frame(&mut *r) {
            Err(DbError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(DbError::Timeout("tcp recv".into()))
            }
            other => other,
        }
    }

    fn close(&self) {
        let _ = self.shutdown.shutdown(std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------
// In-process channels
// ---------------------------------------------------------------------------

/// One endpoint of an in-process channel pair.
pub struct LocalChannel {
    tx: OrderedMutex<Option<Sender<Msg>>>,
    rx: Receiver<Msg>,
    /// One-way latency applied to *sent* messages (zero for plain pairs).
    latency: Option<SimNetConfig>,
}

struct Msg {
    deliver_at: Instant,
    payload: Bytes,
}

/// Latency model for the simulated network.
#[derive(Clone, Copy, Debug)]
pub struct SimNetConfig {
    /// Fixed one-way delay applied to every message.
    pub one_way: Duration,
}

impl SimNetConfig {
    /// A network with the given fixed one-way latency.
    pub fn with_latency(one_way: Duration) -> Self {
        Self { one_way }
    }
}

fn channel_endpoints(latency: Option<SimNetConfig>) -> (LocalChannel, LocalChannel) {
    let (tx_a, rx_b) = unbounded::<Msg>();
    let (tx_b, rx_a) = unbounded::<Msg>();
    (
        LocalChannel {
            tx: OrderedMutex::new(ranks::WIRE_LOCAL_TX, Some(tx_a)),
            rx: rx_a,
            latency,
        },
        LocalChannel {
            tx: OrderedMutex::new(ranks::WIRE_LOCAL_TX, Some(tx_b)),
            rx: rx_b,
            latency,
        },
    )
}

/// Create a connected pair of zero-latency in-process channels.
pub fn local_pair() -> (LocalChannel, LocalChannel) {
    channel_endpoints(None)
}

/// Create a connected pair of latency-simulated channels.
pub fn sim_pair(config: SimNetConfig) -> (LocalChannel, LocalChannel) {
    channel_endpoints(Some(config))
}

impl LocalChannel {
    fn deliver_at(&self) -> Instant {
        match self.latency {
            Some(cfg) => Instant::now() + cfg.one_way,
            None => Instant::now(),
        }
    }

    fn finish_recv(msg: Msg) -> Bytes {
        let now = Instant::now();
        if msg.deliver_at > now {
            std::thread::sleep(msg.deliver_at - now);
        }
        msg.payload
    }
}

impl Channel for LocalChannel {
    fn send(&self, payload: Bytes) -> DbResult<()> {
        let guard = self.tx.lock();
        let tx = guard.as_ref().ok_or(DbError::Disconnected)?;
        tx.send(Msg {
            deliver_at: self.deliver_at(),
            payload,
        })
        .map_err(|_| DbError::Disconnected)
    }

    fn recv(&self) -> DbResult<Bytes> {
        self.rx
            .recv()
            .map(Self::finish_recv)
            .map_err(|_| DbError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> DbResult<Bytes> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Self::finish_recv(msg)),
            Err(RecvTimeoutError::Timeout) => Err(DbError::Timeout("local recv".into())),
            Err(RecvTimeoutError::Disconnected) => Err(DbError::Disconnected),
        }
    }

    fn close(&self) {
        self.tx.lock().take();
        // Drain anything already queued so a blocked peer recv fails fast
        // once our sender is dropped. (Receiver side disconnect happens when
        // the peer's sender to us is dropped; closing is symmetric when both
        // ends close.)
        while self.rx.try_recv().is_ok() {}
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Scripted fault state shared by one or more [`FaultyChannel`]s.
///
/// A plan is the test's remote control for a connection: it can drop frames
/// probabilistically (deterministic xorshift stream), delay sends to model
/// a slow consumer or congested link (separate deterministic stream), kill
/// the channel after the N-th send, open and heal partition windows (frames
/// silently discarded in both directions), or kill the channel on demand.
/// All methods are safe to call from the test thread while the channel is
/// in active use.
#[derive(Debug)]
pub struct FaultPlan {
    /// xorshift64 state for the drop decision stream.
    rng: std::sync::atomic::AtomicU64,
    /// Probability of dropping a sent frame, in per-mille (0..=1000).
    drop_per_mille: std::sync::atomic::AtomicU32,
    /// xorshift64 state for the delay decision stream — independent of
    /// the drop stream so arming delays does not perturb a seeded drop
    /// pattern.
    delay_rng: std::sync::atomic::AtomicU64,
    /// Probability of delaying a sent frame, in per-mille (0..=1000).
    delay_per_mille: std::sync::atomic::AtomicU32,
    /// Delay applied to selected frames, in microseconds. The *sender*
    /// sleeps: this models a consumer whose inbound path has slowed down,
    /// which is exactly what server-side outbox backpressure must absorb.
    delay_micros: std::sync::atomic::AtomicU64,
    /// Kill the channel once this many sends have been attempted
    /// (`u64::MAX` = disabled).
    kill_after_sends: std::sync::atomic::AtomicU64,
    /// While set, frames are silently discarded in both directions.
    partitioned: std::sync::atomic::AtomicBool,
    /// Once set, the channel behaves as closed forever.
    killed: std::sync::atomic::AtomicBool,
    /// Total send attempts observed.
    sends: std::sync::atomic::AtomicU64,
    /// Frames silently discarded (drops + partition).
    dropped: std::sync::atomic::AtomicU64,
    /// Frames that were delay-injected.
    delayed: std::sync::atomic::AtomicU64,
    /// Inner channels to close on kill.
    channels: OrderedMutex<Vec<std::sync::Weak<dyn Channel>>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64};
        Self {
            rng: AtomicU64::new(0x2545_f491_4f6c_dd1d),
            drop_per_mille: AtomicU32::new(0),
            delay_rng: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
            delay_per_mille: AtomicU32::new(0),
            delay_micros: AtomicU64::new(0),
            kill_after_sends: AtomicU64::new(u64::MAX),
            partitioned: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            sends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            channels: OrderedMutex::new(ranks::WIRE_HUB, Vec::new()),
        }
    }

    /// Seed the deterministic drop stream (must be non-zero).
    pub fn seed(&self, seed: u64) {
        self.rng
            .store(seed.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Seed the deterministic delay stream (must be non-zero).
    pub fn seed_delay(&self, seed: u64) {
        self.delay_rng
            .store(seed.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Delay each sent frame with probability `per_mille`/1000 by
    /// sleeping `delay` *in the sender*: the injected latency consumes
    /// sender-side throughput exactly like a congested link or a consumer
    /// that stopped draining its socket. Use `per_mille = 1000` for a
    /// uniformly slow connection.
    pub fn set_delay(&self, per_mille: u32, delay: Duration) {
        use std::sync::atomic::Ordering;
        self.delay_micros.store(
            delay.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.delay_per_mille
            .store(per_mille.min(1000), Ordering::Relaxed);
    }

    /// Disarm delay injection.
    pub fn clear_delay(&self) {
        self.delay_per_mille
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Frames delay-injected so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drop each sent frame with probability `per_mille`/1000.
    pub fn set_drop_per_mille(&self, per_mille: u32) {
        self.drop_per_mille
            .store(per_mille.min(1000), std::sync::atomic::Ordering::Relaxed);
    }

    /// Kill the channel immediately after the `n`-th send attempt
    /// (counting from the plan's creation).
    pub fn kill_after(&self, n: u64) {
        self.kill_after_sends
            .store(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Open a partition window: frames vanish in both directions but the
    /// channel stays "up" (no disconnect observed by either side).
    pub fn partition(&self) {
        self.partitioned
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Heal the partition window.
    pub fn heal(&self) {
        self.partitioned
            .store(false, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether a partition window is open.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Kill the channel now: mark it dead and close every wrapped inner
    /// channel so blocked peers observe the disconnect.
    pub fn kill_now(&self) {
        self.killed
            .store(true, std::sync::atomic::Ordering::Relaxed);
        // Upgrade under the registry lock, close outside it: a channel's
        // close() takes its own (lower-ranked) lock and may touch the OS
        // socket, neither of which belongs under the registry guard.
        let live: Vec<_> = self
            .channels
            .lock()
            .iter()
            .filter_map(std::sync::Weak::upgrade)
            .collect();
        for ch in live {
            ch.close();
        }
    }

    /// Whether the channel has been killed.
    pub fn is_killed(&self) -> bool {
        self.killed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total send attempts observed so far.
    pub fn sends(&self) -> u64 {
        self.sends.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Frames silently discarded so far (drops + partition).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn register(&self, ch: std::sync::Weak<dyn Channel>) {
        self.channels.lock().push(ch);
    }

    /// Advance the xorshift stream and decide whether to drop this frame.
    fn should_drop(&self) -> bool {
        use std::sync::atomic::Ordering;
        let p = self.drop_per_mille.load(Ordering::Relaxed);
        if p == 0 {
            return false;
        }
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x.max(1), Ordering::Relaxed);
        (x % 1000) < u64::from(p)
    }

    /// Advance the delay xorshift stream and decide how long (if at all)
    /// this frame's send should stall.
    fn send_delay(&self) -> Option<Duration> {
        use std::sync::atomic::Ordering;
        let p = self.delay_per_mille.load(Ordering::Relaxed);
        if p == 0 {
            return None;
        }
        let mut x = self.delay_rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.delay_rng.store(x.max(1), Ordering::Relaxed);
        if (x % 1000) < u64::from(p) {
            Some(Duration::from_micros(
                self.delay_micros.load(Ordering::Relaxed),
            ))
        } else {
            None
        }
    }

    /// Record a send attempt; returns `true` if this send trips the
    /// kill-after-N trigger.
    fn note_send(&self) -> bool {
        use std::sync::atomic::Ordering;
        let n = self.sends.fetch_add(1, Ordering::Relaxed) + 1;
        n == self.kill_after_sends.load(Ordering::Relaxed)
    }

    fn note_dropped(&self) {
        self.dropped
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// A [`Channel`] decorator that injects faults according to a shared
/// [`FaultPlan`].
///
/// `recv` is implemented as a short polling loop over the inner channel so
/// that [`FaultPlan::kill_now`] unblocks a parked reader within one poll
/// interval even if the inner transport cannot be interrupted.
pub struct FaultyChannel {
    inner: Arc<dyn Channel>,
    plan: Arc<FaultPlan>,
}

/// Poll grain for interruptible receive.
const FAULT_POLL: Duration = Duration::from_millis(20);

impl FaultyChannel {
    /// Wrap `inner`, attaching it to `plan` (killing the plan closes it).
    pub fn wrap(inner: Box<dyn Channel>, plan: Arc<FaultPlan>) -> Self {
        let inner: Arc<dyn Channel> = Arc::from(inner);
        plan.register(Arc::downgrade(&inner));
        Self { inner, plan }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl Channel for FaultyChannel {
    fn send(&self, payload: Bytes) -> DbResult<()> {
        if self.plan.is_killed() {
            return Err(DbError::Disconnected);
        }
        let trips_kill = self.plan.note_send();
        if self.plan.is_partitioned() || self.plan.should_drop() {
            // The frame vanishes on the wire; the sender cannot tell.
            self.plan.note_dropped();
            return Ok(());
        }
        if let Some(delay) = self.plan.send_delay() {
            // Stall the *sender*: injected latency eats the calling
            // thread's throughput, which is what makes a per-client
            // writer thread (vs. in-line fan-out sends) observable.
            self.plan
                .delayed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        let result = self.inner.send(payload);
        if trips_kill {
            self.plan.kill_now();
        }
        result
    }

    fn recv(&self) -> DbResult<Bytes> {
        loop {
            if self.plan.is_killed() {
                return Err(DbError::Disconnected);
            }
            match self.inner.recv_timeout(FAULT_POLL) {
                Ok(frame) => {
                    if self.plan.is_partitioned() {
                        self.plan.note_dropped();
                        continue; // lost on the wire
                    }
                    return Ok(frame);
                }
                Err(DbError::Timeout(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> DbResult<Bytes> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.plan.is_killed() {
                return Err(DbError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DbError::Timeout("faulty recv".into()));
            }
            let step = FAULT_POLL.min(deadline - now);
            match self.inner.recv_timeout(step) {
                Ok(frame) => {
                    if self.plan.is_partitioned() {
                        self.plan.note_dropped();
                        continue;
                    }
                    return Ok(frame);
                }
                Err(DbError::Timeout(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn close(&self) {
        self.inner.close();
    }
}

/// A [`Listener`] decorator that wraps every *accepted* channel in a
/// [`FaultyChannel`] sharing one [`FaultPlan`].
///
/// This is the server-side counterpart of wrapping a client's outbound
/// channel: faults injected here hit the server's sends to that client
/// (notification pushes, responses), which is where slow-consumer
/// isolation must hold. All connections accepted through one listener
/// share the plan, so give each simulated client population its own
/// listener.
pub struct FaultyListener {
    inner: Box<dyn Listener>,
    plan: Arc<FaultPlan>,
}

impl FaultyListener {
    /// Wrap `inner`; every accepted channel joins `plan`.
    pub fn wrap(inner: Box<dyn Listener>, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl Listener for FaultyListener {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        let ch = self.inner.accept()?;
        Ok(Box::new(FaultyChannel::wrap(ch, Arc::clone(&self.plan))))
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Box<dyn Channel>> {
        let ch = self.inner.accept_timeout(timeout)?;
        Ok(Box::new(FaultyChannel::wrap(ch, Arc::clone(&self.plan))))
    }
}

// ---------------------------------------------------------------------------
// Listeners
// ---------------------------------------------------------------------------

/// Accepts inbound connections as boxed channels.
pub trait Listener: Send {
    /// Block until a connection arrives.
    fn accept(&self) -> DbResult<Box<dyn Channel>>;

    /// Like accept, with a deadline.
    fn accept_timeout(&self, timeout: Duration) -> DbResult<Box<dyn Channel>>;
}

/// TCP listener adapter.
pub struct TcpListenerWrapper {
    inner: std::net::TcpListener,
}

impl TcpListenerWrapper {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> DbResult<Self> {
        Ok(Self {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> DbResult<SocketAddr> {
        Ok(self.inner.local_addr()?)
    }
}

impl Listener for TcpListenerWrapper {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        let (stream, _) = self.inner.accept()?;
        Ok(Box::new(TcpChannel::from_stream(stream)?))
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Box<dyn Channel>> {
        self.inner.set_nonblocking(false)?;
        // std TcpListener has no accept timeout; emulate with nonblocking
        // polling at a coarse grain. Good enough for orderly shutdown.
        let deadline = Instant::now() + timeout;
        self.inner.set_nonblocking(true)?;
        let result = loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    break Ok(Box::new(TcpChannel::from_stream(stream)?) as Box<dyn Channel>);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(DbError::Timeout("tcp accept".into()));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => break Err(e.into()),
            }
        };
        let _ = self.inner.set_nonblocking(false);
        result
    }
}

/// An in-process "network": clients call [`LocalHub::connect`], servers
/// accept the matching endpoints. Supports optional simulated latency for
/// every accepted connection.
#[derive(Clone)]
pub struct LocalHub {
    tx: Sender<LocalChannel>,
    rx: Receiver<LocalChannel>,
    latency: Option<SimNetConfig>,
}

impl LocalHub {
    /// Create a hub with no latency.
    pub fn new() -> Self {
        Self::with_config(None)
    }

    /// Create a hub whose connections simulate the given latency.
    pub fn with_latency(config: SimNetConfig) -> Self {
        Self::with_config(Some(config))
    }

    fn with_config(latency: Option<SimNetConfig>) -> Self {
        let (tx, rx) = bounded(1024);
        Self { tx, rx, latency }
    }

    /// Open a new connection; the peer endpoint is queued for `accept`.
    pub fn connect(&self) -> DbResult<LocalChannel> {
        let (client_end, server_end) = channel_endpoints(self.latency);
        self.tx
            .send(server_end)
            .map_err(|_| DbError::Disconnected)?;
        Ok(client_end)
    }
}

impl Default for LocalHub {
    fn default() -> Self {
        Self::new()
    }
}

impl Listener for LocalHub {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        self.rx
            .recv()
            .map(|c| Box::new(c) as Box<dyn Channel>)
            .map_err(|_| DbError::Disconnected)
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Box<dyn Channel>> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Ok(Box::new(c)),
            Err(RecvTimeoutError::Timeout) => Err(DbError::Timeout("local accept".into())),
            Err(RecvTimeoutError::Disconnected) => Err(DbError::Disconnected),
        }
    }
}

// ---------------------------------------------------------------------------
// Byte metering
// ---------------------------------------------------------------------------

/// Shared frame/byte counters for one or more [`MeteredChannel`]s.
///
/// The counters are plain atomics so a single meter can be shared across
/// every connection a client (or a whole fleet of clients) opens — the
/// R4 mass-reconnect experiment hangs one meter over all viewers and
/// reads the total recovery traffic off it.
#[derive(Debug, Default)]
pub struct WireMeter {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
}

impl WireMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Total payload bytes sent through metered channels.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes received through metered channels.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Frames sent.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames received.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent() + self.bytes_received()
    }

    /// Zero every counter (phase boundary: meter only what follows).
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.frames_sent.store(0, Ordering::Relaxed);
        self.frames_received.store(0, Ordering::Relaxed);
    }
}

/// A [`Channel`] wrapper that counts payload bytes and frames in both
/// directions on a shared [`WireMeter`]. Purely observational: frames
/// pass through untouched, errors propagate verbatim.
pub struct MeteredChannel {
    inner: Box<dyn Channel>,
    meter: Arc<WireMeter>,
}

impl MeteredChannel {
    /// Wrap `inner`, accounting its traffic on `meter`.
    pub fn wrap(inner: Box<dyn Channel>, meter: Arc<WireMeter>) -> Self {
        Self { inner, meter }
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<WireMeter> {
        &self.meter
    }
}

impl Channel for MeteredChannel {
    fn send(&self, payload: Bytes) -> DbResult<()> {
        let len = payload.len() as u64;
        self.inner.send(payload)?;
        self.meter.bytes_sent.fetch_add(len, Ordering::Relaxed);
        self.meter.frames_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> DbResult<Bytes> {
        let frame = self.inner.recv()?;
        self.meter
            .bytes_received
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.meter.frames_received.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> DbResult<Bytes> {
        let frame = self.inner.recv_timeout(timeout)?;
        self.meter
            .bytes_received
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.meter.frames_received.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn local_pair_roundtrip() {
        let (a, z) = local_pair();
        a.send(b("ping")).unwrap();
        assert_eq!(z.recv().unwrap(), b("ping"));
        z.send(b("pong")).unwrap();
        assert_eq!(a.recv().unwrap(), b("pong"));
    }

    #[test]
    fn local_recv_timeout() {
        let (a, _z) = local_pair();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, DbError::Timeout(_)));
    }

    #[test]
    fn local_close_disconnects_peer() {
        let (a, z) = local_pair();
        a.close();
        assert!(matches!(a.send(b("x")), Err(DbError::Disconnected)));
        // The peer's receiver observes disconnection once our sender drops.
        assert!(matches!(z.recv(), Err(DbError::Disconnected)));
    }

    #[test]
    fn sim_pair_delays_delivery() {
        let cfg = SimNetConfig::with_latency(Duration::from_millis(30));
        let (a, z) = sim_pair(cfg);
        let start = Instant::now();
        a.send(b("slow")).unwrap();
        assert_eq!(z.recv().unwrap(), b("slow"));
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(28),
            "message arrived too fast: {elapsed:?}"
        );
    }

    #[test]
    fn sim_latency_is_pipelined_not_serialized() {
        // Two messages sent back-to-back both arrive ~one latency later,
        // not 2x: the delay models wire time, not channel occupancy.
        let cfg = SimNetConfig::with_latency(Duration::from_millis(40));
        let (a, z) = sim_pair(cfg);
        let start = Instant::now();
        a.send(b("m1")).unwrap();
        a.send(b("m2")).unwrap();
        z.recv().unwrap();
        z.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(75),
            "not pipelined: {elapsed:?}"
        );
    }

    #[test]
    fn hub_connect_accept() {
        let hub = LocalHub::new();
        let client = hub.connect().unwrap();
        let server = hub.accept().unwrap();
        client.send(b("hello")).unwrap();
        assert_eq!(server.recv().unwrap(), b("hello"));
        server.send(b("welcome")).unwrap();
        assert_eq!(client.recv().unwrap(), b("welcome"));
    }

    #[test]
    fn hub_accept_timeout() {
        let hub = LocalHub::new();
        assert!(matches!(
            hub.accept_timeout(Duration::from_millis(10)),
            Err(DbError::Timeout(_))
        ));
    }

    #[test]
    fn faulty_passthrough_when_no_faults() {
        let (a, z) = local_pair();
        let plan = Arc::new(FaultPlan::new());
        let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
        a.send(b("hi")).unwrap();
        assert_eq!(z.recv().unwrap(), b("hi"));
        z.send(b("yo")).unwrap();
        assert_eq!(a.recv().unwrap(), b("yo"));
        assert_eq!(plan.sends(), 1);
        assert_eq!(plan.dropped(), 0);
    }

    #[test]
    fn faulty_kill_after_n_sends() {
        let (a, z) = local_pair();
        let plan = Arc::new(FaultPlan::new());
        plan.kill_after(2);
        let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
        a.send(b("1")).unwrap();
        a.send(b("2")).unwrap(); // delivered, then the channel dies
        assert!(plan.is_killed());
        assert!(matches!(a.send(b("3")), Err(DbError::Disconnected)));
        assert_eq!(z.recv().unwrap(), b("1"));
        assert_eq!(z.recv().unwrap(), b("2"));
        // Inner channel was closed: the peer observes the disconnect.
        assert!(matches!(z.recv(), Err(DbError::Disconnected)));
    }

    #[test]
    fn faulty_kill_now_unblocks_parked_reader() {
        let (a, _z) = local_pair();
        let plan = Arc::new(FaultPlan::new());
        let a = Arc::new(FaultyChannel::wrap(Box::new(a), Arc::clone(&plan)));
        let reader = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.recv())
        };
        std::thread::sleep(Duration::from_millis(30));
        plan.kill_now();
        let got = reader.join().unwrap();
        assert!(matches!(got, Err(DbError::Disconnected)));
    }

    #[test]
    fn faulty_partition_drops_both_directions_then_heals() {
        let (a, z) = local_pair();
        let plan = Arc::new(FaultPlan::new());
        let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
        plan.partition();
        a.send(b("lost")).unwrap(); // silently dropped
        z.send(b("also lost")).unwrap();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(60)),
            Err(DbError::Timeout(_))
        ));
        assert_eq!(plan.dropped(), 2);
        plan.heal();
        a.send(b("through")).unwrap();
        assert_eq!(z.recv().unwrap(), b("through"));
        z.send(b("back")).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), b("back"));
    }

    #[test]
    fn faulty_probabilistic_drop_is_deterministic() {
        let run = |seed: u64| -> Vec<u64> {
            let (a, z) = local_pair();
            let plan = Arc::new(FaultPlan::new());
            plan.seed(seed);
            plan.set_drop_per_mille(400);
            let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
            for i in 0..50u64 {
                a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(frame) = z.recv_timeout(Duration::from_millis(10)) {
                got.push(u64::from_le_bytes(frame[..8].try_into().unwrap()));
            }
            assert!(got.len() < 50, "some frames must drop at 40%");
            assert!(!got.is_empty(), "some frames must survive at 40%");
            got
        };
        assert_eq!(run(1234), run(1234), "same seed, same drop pattern");
        assert_ne!(run(1234), run(9999), "different seed, different pattern");
    }

    #[test]
    fn faulty_delay_stalls_the_sender() {
        let (a, z) = local_pair();
        let plan = Arc::new(FaultPlan::new());
        plan.set_delay(1000, Duration::from_millis(25));
        let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
        let start = Instant::now();
        a.send(b("slow")).unwrap();
        let send_cost = start.elapsed();
        assert!(
            send_cost >= Duration::from_millis(20),
            "send returned too fast: {send_cost:?}"
        );
        assert_eq!(plan.delayed(), 1);
        assert_eq!(z.recv().unwrap(), b("slow"));

        plan.clear_delay();
        let start = Instant::now();
        a.send(b("fast")).unwrap();
        assert!(start.elapsed() < Duration::from_millis(20));
        assert_eq!(plan.delayed(), 1);
    }

    #[test]
    fn faulty_partial_delay_is_deterministic() {
        let run = |seed: u64| -> u64 {
            let (a, _z) = local_pair();
            let plan = Arc::new(FaultPlan::new());
            plan.seed_delay(seed);
            plan.set_delay(300, Duration::from_micros(1));
            let a = FaultyChannel::wrap(Box::new(a), Arc::clone(&plan));
            for i in 0..100u64 {
                a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            }
            plan.delayed()
        };
        let n = run(42);
        assert!(n > 0 && n < 100, "~30% of frames should be delayed: {n}");
        assert_eq!(n, run(42), "same seed, same selection");
    }

    #[test]
    fn faulty_listener_wraps_accepted_channels() {
        let hub = LocalHub::new();
        let plan = Arc::new(FaultPlan::new());
        plan.set_delay(1000, Duration::from_millis(25));
        let listener = FaultyListener::wrap(Box::new(hub.clone()), Arc::clone(&plan));

        let client = hub.connect().unwrap();
        let server_side = listener.accept().unwrap();

        // Server→client sends go through the plan...
        let start = Instant::now();
        server_side.send(b("notify")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(client.recv().unwrap(), b("notify"));
        assert_eq!(plan.delayed(), 1);

        // ...while the client's own sends (a different, unwrapped
        // endpoint) do not.
        let start = Instant::now();
        client.send(b("request")).unwrap();
        assert!(start.elapsed() < Duration::from_millis(20));
        assert_eq!(server_side.recv().unwrap(), b("request"));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListenerWrapper::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let ch = listener.accept().unwrap();
            let msg = ch.recv().unwrap();
            ch.send(msg).unwrap(); // echo
            let big = ch.recv().unwrap();
            assert_eq!(big.len(), 100_000);
            ch.send(b("done")).unwrap();
        });
        let ch = TcpChannel::connect(addr).unwrap();
        ch.send(b("echo me")).unwrap();
        assert_eq!(ch.recv().unwrap(), b("echo me"));
        ch.send(Bytes::from(vec![0u8; 100_000])).unwrap();
        assert_eq!(ch.recv().unwrap(), b("done"));
        srv.join().unwrap();
    }

    #[test]
    fn tcp_recv_timeout_then_recovers() {
        let listener = TcpListenerWrapper::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let ch = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(50));
            ch.send(b("late")).unwrap();
        });
        let ch = TcpChannel::connect(addr).unwrap();
        assert!(matches!(
            ch.recv_timeout(Duration::from_millis(5)),
            Err(DbError::Timeout(_))
        ));
        assert_eq!(ch.recv_timeout(Duration::from_secs(5)).unwrap(), b("late"));
        srv.join().unwrap();
    }

    #[test]
    fn concurrent_senders_do_not_interleave_frames() {
        let listener = TcpListenerWrapper::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let ch = listener.accept().unwrap();
            let mut seen = Vec::new();
            for _ in 0..40 {
                let msg = ch.recv().unwrap();
                // Each frame must be homogeneous: all bytes identical.
                assert!(msg.iter().all(|&x| x == msg[0]), "interleaved frame");
                seen.push(msg[0]);
            }
            seen
        });
        let ch = Arc::new(TcpChannel::connect(addr).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let ch = Arc::clone(&ch);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    ch.send(Bytes::from(vec![t; 1000])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let seen = srv.join().unwrap();
        assert_eq!(seen.len(), 40);
    }
}
