//! Deadlock regression tests for the runtime lock-ordering audit.
//!
//! Run with `cargo test -p displaydb-common --features lock-audit`.
//! These use real registry ranks (not test-only ones): the classic
//! storage-vs-server deadlock shape — one thread takes `server.txns`
//! then `buffer.pool`, the other the reverse — must panic in the
//! audited build on the inverted thread, naming both locks and both
//! ranks, before it can ever become a real deadlock. The declared
//! ordering must pass untouched.

#![cfg(feature = "lock-audit")]

use displaydb_common::sync::{ranks, OrderedMutex};

#[test]
fn declared_order_passes() {
    let txns = OrderedMutex::new(ranks::SERVER_TXNS, 1u32);
    let pool = OrderedMutex::new(ranks::BUFFER_POOL, 2u32);
    // server.txns (350) then buffer.pool (530): ascending, fine.
    let t = txns.lock();
    let p = pool.lock();
    assert_eq!(*t + *p, 3);
    drop(p);
    drop(t);
    // Reacquiring after release is fine too.
    let p = pool.lock();
    assert_eq!(*p, 2);
}

#[test]
fn inverted_order_panics_naming_both_locks_and_ranks() {
    let err = std::thread::spawn(|| {
        let txns = OrderedMutex::new(ranks::SERVER_TXNS, 1u32);
        let pool = OrderedMutex::new(ranks::BUFFER_POOL, 2u32);
        let _p = pool.lock();
        let _t = txns.lock(); // 350 under 530: the audit must refuse
    })
    .join()
    .expect_err("inverted acquisition must panic under lock-audit");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string");
    for needle in ["server.txns", "350", "buffer.pool", "530"] {
        assert!(
            msg.contains(needle),
            "audit panic should name both locks and ranks; missing `{needle}` in: {msg}"
        );
    }
}

#[test]
fn multi_instance_class_allows_same_rank_nesting() {
    let f1 = OrderedMutex::new(ranks::BUFFER_FRAME, 1u32);
    let f2 = OrderedMutex::new(ranks::BUFFER_FRAME, 2u32);
    // Two frame latches at rank 540: allowed for multi-instance ranks.
    let a = f1.lock();
    let b = f2.lock();
    assert_eq!(*a + *b, 3);
}

#[test]
fn deadlock_shape_is_caught_on_whichever_thread_inverts() {
    // Both lock objects shared by two threads taking them in opposite
    // orders — the unaudited build could interleave into a deadlock;
    // the audit instead panics deterministically on the inverting
    // thread no matter how the schedules land.
    use std::sync::Arc;
    let txns = Arc::new(OrderedMutex::new(ranks::SERVER_TXNS, 0u32));
    let pool = Arc::new(OrderedMutex::new(ranks::BUFFER_POOL, 0u32));

    let good = {
        let (txns, pool) = (Arc::clone(&txns), Arc::clone(&pool));
        std::thread::spawn(move || {
            for _ in 0..100 {
                let mut t = txns.lock();
                let mut p = pool.lock();
                *t += 1;
                *p += 1;
            }
        })
    };
    let bad = {
        let (txns, pool) = (Arc::clone(&txns), Arc::clone(&pool));
        std::thread::spawn(move || {
            let _p = pool.lock();
            let _t = txns.lock();
        })
    };
    assert!(
        bad.join().is_err(),
        "the inverting thread must panic under lock-audit"
    );
    good.join()
        .expect("the correctly-ordered thread must be unaffected");
}
