//! Overload-protection policy knobs shared by the DLM, the server
//! session layer, and the client DLC.
//!
//! The notification pipeline (DESIGN.md § 9) bounds its memory and
//! isolates slow consumers with four mechanisms, each governed by one
//! field here:
//!
//! * **bounded outboxes** — every client sink is wrapped in an outbox
//!   whose queue never exceeds [`OverloadConfig::outbox_high_water`]
//!   entries; a dedicated writer thread drains it so a blocked send
//!   never runs inside the fan-out loop,
//! * **overflow-to-resync** — on hitting the high-water mark the queue
//!   is swept into a single `ResyncRequired` marker (memory becomes
//!   O(watched objects), not O(update rate × stall time)),
//! * **slow-consumer demotion** — after
//!   [`OverloadConfig::lagging_after_overflows`] consecutive sweeps the
//!   client is demoted to resync-only mode and told it is lagging,
//! * **admission control** — the server sheds requests beyond
//!   [`OverloadConfig::max_in_flight`] concurrent ones per session with
//!   a retryable `Overloaded` error.

use std::time::Duration;

/// Tuning for the overload-protection layer. `Copy` so it can ride
/// inside the existing `Copy` config structs (e.g. the DLM's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum events queued in one client outbox before the queue is
    /// swept into a single `ResyncRequired` marker.
    ///
    /// Default 64: a display tracking N objects needs at most one
    /// `Updated` per object after coalescing, so 64 covers a generously
    /// sized window before resync becomes cheaper than replay.
    pub outbox_high_water: usize,
    /// Consecutive overflow sweeps after which a client is considered a
    /// slow consumer and demoted to resync-only mode (sticky until its
    /// outbox fully drains). Default 3: one sweep can be a blip; three
    /// in a row without draining means the consumer is persistently
    /// slower than the update storm.
    pub lagging_after_overflows: u32,
    /// Maximum concurrent in-flight requests per server session before
    /// admission control sheds with `Overloaded`. Default 32: far above
    /// what one interactive client pipelines legitimately, low enough
    /// to stop a runaway loop from monopolizing worker threads.
    pub max_in_flight: usize,
    /// How long server shutdown waits for each outbox to flush before
    /// closing the session anyway. Default 500 ms: long enough for a
    /// healthy client's queue, short enough that a stalled client
    /// cannot wedge shutdown.
    pub drain_timeout: Duration,
    /// Capacity of each display's DLC event queue. Default 1024:
    /// displays drain on every UI tick, and at the paper's 200
    /// updates/s storm rate this is five seconds of slack — beyond
    /// that, dropping into a full resync (which the DLC already does
    /// on overflow upstream) beats unbounded growth.
    pub display_queue_capacity: usize,
    /// Maximum pending events an outbox writer drains into one wire
    /// frame per wake (a `Batch` when more than one is pending).
    /// Default 16: enough to collapse a fan-in burst into one frame,
    /// small enough that a batch never approaches frame-size limits.
    /// 1 disables batching.
    pub outbox_batch_max: usize,
    /// Maximum concurrent *resume* handshakes the server admits before
    /// shedding further ones with a retryable `Overloaded`. A mass
    /// reconnect (network partition heals, server restarts) otherwise
    /// lands 10k synchronized session rebuilds — each of which replays
    /// display locks and serves a cursor catch-up — in the same instant.
    /// Default 64: enough parallelism to keep reconnect latency flat,
    /// small enough that the storm is paced instead of synchronized.
    /// Fresh (non-resume) connects are never gated.
    pub resume_admission_max: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            outbox_high_water: 64,
            lagging_after_overflows: 3,
            max_in_flight: 32,
            drain_timeout: Duration::from_millis(500),
            display_queue_capacity: 1024,
            outbox_batch_max: 16,
            resume_admission_max: 64,
        }
    }
}

/// Sizing for the DLM's bounded, replayable update log (DESIGN.md § 13).
///
/// Every committed notification batch is appended to a ring with a
/// monotonic seqno before fan-out; reconnecting or lagging clients catch
/// up by replaying the suffix past their cursor instead of re-reading
/// every watched object. Both caps evict from the front: the log holds
/// the most recent `max_entries` commits or `max_bytes` of estimated
/// payload, whichever bound bites first. A cursor that has been evicted
/// falls back to `ResyncRequired`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateLogConfig {
    /// Maximum retained log entries (one entry per committed batch).
    /// 0 disables the log entirely: overflow and reconnect fall back to
    /// the pre-replay `ResyncRequired` paths.
    pub max_entries: usize,
    /// Maximum total estimated bytes retained across all entries.
    pub max_bytes: usize,
}

impl Default for UpdateLogConfig {
    fn default() -> Self {
        Self {
            // 4096 commits / 4 MiB: at the paper's 200 updates/s storm
            // rate this retains ~20 s of history — far past the
            // reconnect backoff window — while bounding memory to a few
            // MiB per DLM shard.
            max_entries: 4096,
            max_bytes: 4 << 20,
        }
    }
}

impl UpdateLogConfig {
    /// Defaults (documented per-field above).
    pub fn new() -> Self {
        Self::default()
    }

    /// A disabled log: recovery uses the legacy full-resync paths.
    pub fn disabled() -> Self {
        Self {
            max_entries: 0,
            max_bytes: 0,
        }
    }

    /// Whether replay is available at all under this config.
    pub fn enabled(&self) -> bool {
        self.max_entries > 0 && self.max_bytes > 0
    }
}

impl OverloadConfig {
    /// Defaults (documented per-field above).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sizing for the durable spill of the update log (DESIGN.md § 14).
///
/// When enabled, every committed notification batch appended to the
/// in-memory ring is also framed, checksummed, and appended to a
/// dedicated segment log under the server's data directory, together
/// with the log incarnation id and per-client cursor frontiers. After a
/// restart the server rebuilds the replay window from the durable tail,
/// so reconnecting clients with live cursors get interest-filtered
/// `ReplayFrom` instead of a full-fleet resync storm.
///
/// **Off by default**: with the spill disabled the incarnation id is
/// minted fresh per process and a restart re-baselines every cursor —
/// exactly the pre-durability behaviour. The data directory itself is
/// not part of this config (it stays `Copy`); the server passes its own
/// `data_dir` when opening the segment log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableLogConfig {
    /// Master switch. `false` keeps the update log memory-only.
    pub enabled: bool,
    /// Target size of one segment file before rotating to a new one.
    /// Smaller segments retire (and reclaim) faster; larger ones sync
    /// and scan with less per-file overhead.
    pub segment_bytes: u64,
    /// Total durable budget across all retained segments. When appends
    /// push past this, whole oldest segments are deleted — retention is
    /// always a contiguous suffix of the seqno space, mirroring the
    /// in-memory ring's front eviction.
    pub max_total_bytes: u64,
    /// Sync the active segment after this many appended records (1 =
    /// sync every record; large values amortize the fsync over a burst
    /// and rely on the rotation/shutdown syncs to bound the window).
    /// Cursor-frontier records never force a sync: losing one merely
    /// widens the replay a client performs after recovery.
    pub sync_every: u32,
}

impl Default for DurableLogConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            // 256 KiB segments / 4 MiB budget: matches the in-memory
            // ring's byte cap so the durable window is never the
            // (much) shorter of the two, while keeping ≥16 segments so
            // whole-segment retention stays fine-grained.
            segment_bytes: 256 << 10,
            max_total_bytes: 4 << 20,
            sync_every: 8,
        }
    }
}

impl DurableLogConfig {
    /// Defaults with the spill turned **off**.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defaults with the spill turned on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Whether this config actually spills anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled && self.segment_bytes > 0 && self.max_total_bytes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OverloadConfig::default();
        assert!(c.outbox_high_water >= 2, "need room to coalesce");
        assert!(c.lagging_after_overflows >= 1);
        assert!(c.max_in_flight >= 1);
        assert!(c.drain_timeout > Duration::ZERO);
        assert!(c.display_queue_capacity >= c.outbox_high_water);
        assert!(c.outbox_batch_max >= 1);
        assert!(c.resume_admission_max >= 1);
    }

    #[test]
    fn update_log_defaults_and_disable() {
        let l = UpdateLogConfig::default();
        assert!(l.enabled());
        assert!(l.max_entries >= 64, "must outlast a reconnect window");
        assert!(!UpdateLogConfig::disabled().enabled());
    }

    #[test]
    fn durable_log_defaults_off_and_sane_when_on() {
        let d = DurableLogConfig::default();
        assert!(!d.is_enabled(), "durable spill must be opt-in");
        let on = DurableLogConfig::enabled();
        assert!(on.is_enabled());
        assert!(on.segment_bytes > 0 && on.max_total_bytes >= on.segment_bytes);
        assert!(on.sync_every >= 1);
    }
}
