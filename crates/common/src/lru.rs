//! A generic LRU cache with byte-size accounting.
//!
//! This backs the *client database cache* (paper § 2.2): the level of the
//! memory hierarchy whose contents the application does **not** control and
//! whose evictions are the motivation for the display cache. The paper's
//! footnote 3 assumes an LRU replacement policy, which is what this
//! implements.
//!
//! The implementation is a doubly-linked list threaded through a slab,
//! indexed by a `HashMap`, so `get`/`insert`/`remove` are O(1). Entries
//! carry an explicit size in bytes; eviction triggers whenever the running
//! total exceeds the configured capacity.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: Option<V>,
    size: usize,
    prev: usize,
    next: usize,
}

/// Statistics exposed by the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl LruStats {
    /// Hit ratio in `[0, 1]`; `None` when no lookups happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// An LRU cache bounded by total entry size in bytes.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity_bytes: usize,
    used_bytes: usize,
    stats: LruStats,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache that holds at most `capacity_bytes` of entry payload.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity_bytes,
            used_bytes: 0,
            stats: LruStats::default(),
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes accounted to cached entries.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Change the capacity; evicts immediately if shrinking below usage.
    /// Returns evicted entries.
    pub fn set_capacity_bytes(&mut self, capacity_bytes: usize) -> Vec<(K, V)> {
        self.capacity_bytes = capacity_bytes;
        self.evict_to_fit()
    }

    /// Hit/miss/eviction statistics.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, marking it most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                self.slab[idx].value.as_ref()
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without disturbing recency or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].value.as_ref())
    }

    /// Whether `key` is present (no recency/statistics effect).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert `key` with payload `value` of `size` bytes, evicting
    /// least-recently-used entries as needed. Returns the evicted entries.
    ///
    /// An entry larger than the whole capacity is still admitted (the cache
    /// then holds only that entry); this mirrors buffer managers that must
    /// accommodate at least one object.
    pub fn insert(&mut self, key: K, value: V, size: usize) -> Vec<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.used_bytes = self.used_bytes - self.slab[idx].size + size;
            self.slab[idx].value = Some(value);
            self.slab[idx].size = size;
            self.detach(idx);
            self.push_front(idx);
        } else {
            let node = Node {
                key: key.clone(),
                value: Some(value),
                size,
                prev: NIL,
                next: NIL,
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = node;
                    i
                }
                None => {
                    self.slab.push(node);
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.used_bytes += size;
            self.push_front(idx);
        }
        self.evict_to_fit()
    }

    fn evict_to_fit(&mut self) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes && self.map.len() > 1 {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let key = self.slab[victim].key.clone();
            if let Some((k, v)) = self.remove(&key) {
                self.stats.evictions += 1;
                evicted.push((k, v));
            }
        }
        evicted
    }

    /// Remove `key`, returning its entry if present.
    pub fn remove(&mut self, key: &K) -> Option<(K, V)> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.used_bytes -= self.slab[idx].size;
        self.free.push(idx);
        let value = self.slab[idx].value.take()?;
        Some((self.slab[idx].key.clone(), value))
    }

    /// Remove every entry, returning the cache to empty without changing
    /// capacity or statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
    }

    /// Iterate keys from most- to least-recently used.
    pub fn keys_mru(&self) -> impl Iterator<Item = &K> {
        struct Iter<'a, K, V> {
            cache: &'a LruCache<K, V>,
            cur: usize,
        }
        impl<'a, K, V> Iterator for Iter<'a, K, V> {
            type Item = &'a K;
            fn next(&mut self) -> Option<&'a K> {
                if self.cur == NIL {
                    return None;
                }
                let node = &self.cache.slab[self.cur];
                self.cur = node.next;
                Some(&node.key)
            }
        }
        Iter {
            cache: self,
            cur: self.head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut c: LruCache<u32, &str> = LruCache::new(100);
        assert!(c.insert(1, "a", 10).is_empty());
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        c.insert(1, 10, 10);
        c.insert(2, 20, 10);
        c.insert(3, 30, 10);
        // Touch 1 so 2 becomes LRU.
        c.get(&1);
        let evicted = c.insert(4, 40, 10);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c: LruCache<u32, &str> = LruCache::new(100);
        c.insert(1, "a", 10);
        c.insert(1, "b", 50);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&"b"));
    }

    #[test]
    fn oversized_entry_admitted_alone() {
        let mut c: LruCache<u32, u32> = LruCache::new(10);
        c.insert(1, 1, 5);
        let evicted = c.insert(2, 2, 100);
        // Entry 1 gets evicted; entry 2 stays alone even though oversized.
        assert_eq!(evicted.len(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&2));
    }

    #[test]
    fn remove_returns_value() {
        let mut c: LruCache<u32, String> = LruCache::new(100);
        c.insert(7, "x".to_string(), 1);
        let (k, v) = c.remove(&7).unwrap();
        assert_eq!((k, v.as_str()), (7, "x"));
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.remove(&7).is_none());
    }

    #[test]
    fn mru_iteration_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(1000);
        for i in 0..4 {
            c.insert(i, i, 1);
        }
        c.get(&0);
        let order: Vec<u32> = c.keys_mru().copied().collect();
        assert_eq!(order, vec![0, 3, 2, 1]);
    }

    #[test]
    fn shrink_capacity_evicts() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        for i in 0..10 {
            c.insert(i, i, 10);
        }
        let evicted = c.set_capacity_bytes(30);
        assert_eq!(evicted.len(), 7);
        assert_eq!(c.len(), 3);
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn clear_resets() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 1, 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        c.insert(2, 2, 10);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn hit_ratio() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        assert!(c.stats().hit_ratio().is_none());
        c.insert(1, 1, 1);
        c.get(&1);
        c.get(&2);
        assert!((c.stats().hit_ratio().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut c: LruCache<u32, u32> = LruCache::new(1000);
        for i in 0..100 {
            c.insert(i, i, 1);
        }
        for i in 0..100 {
            c.remove(&i);
        }
        for i in 100..200 {
            c.insert(i, i, 1);
        }
        // Slab should have been reused, not grown to 200.
        assert_eq!(c.slab.len(), 100);
        assert_eq!(c.len(), 100);
        for i in 100..200 {
            assert_eq!(c.peek(&i), Some(&i));
        }
    }
}
