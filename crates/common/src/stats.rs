//! The unified stats registry (DESIGN.md § 12).
//!
//! Every subsystem keeps its own cheap counter struct (`DlmStats`,
//! `ServerStats`, `ConnStats`, `DlcStats`, [`OverloadStats`],
//! [`RecoveryStats`], …) so hot paths never share a cache line more
//! than they must. What was missing is one place to *read them all at
//! once*: an experiment wants a single consistent snapshot of the whole
//! pipeline, not a scavenger hunt across subsystem handles.
//!
//! A [`StatsRegistry`] holds named snapshot providers. Anything that
//! can report `(name, value)` pairs implements [`StatsSource`] (the
//! existing `snapshot()` convention on the stats structs) and is
//! registered under a section name; [`StatsRegistry::snapshot_json`]
//! renders every section — plus the trace ring, when tracing is
//! enabled — as one hand-rolled JSON document (the workspace carries no
//! serde). The bench `report` module and the `exp_obs` binary write
//! that document to disk, and CI uploads it as an artifact.
//!
//! [`OverloadStats`]: crate::metrics::OverloadStats
//! [`RecoveryStats`]: crate::metrics::RecoveryStats

use crate::metrics::{MetricSet, OverloadStats, RecoveryStats, UpdateLogStats};
use crate::sync::{ranks, OrderedMutex};
use crate::trace::{self, Stage, TraceEvent};
use std::sync::Arc;

/// Anything that can snapshot itself as `(name, value)` pairs.
pub trait StatsSource: Send + Sync {
    /// Current values, in a stable declaration order.
    fn stat_values(&self) -> Vec<(&'static str, u64)>;
}

impl StatsSource for RecoveryStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

impl StatsSource for OverloadStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

impl StatsSource for MetricSet {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

impl StatsSource for UpdateLogStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

type Provider = Arc<dyn StatsSource>;

/// A named collection of live stats providers.
///
/// Registration stores the provider (stats structs are `Clone` handles
/// over shared atomics, so a registered clone always reads live
/// values); snapshotting walks the list in registration order. The
/// inner lock ranks at [`ranks::STATS_REGISTRY`] — *below* the whole
/// hierarchy, because a snapshot may call into providers that take
/// subsystem locks.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    inner: Arc<OrderedMutex<Vec<(String, Provider)>>>,
}

impl std::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .inner
            .lock_or_recover()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        f.debug_struct("StatsRegistry")
            .field("sections", &names)
            .finish()
    }
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(OrderedMutex::new(ranks::STATS_REGISTRY, Vec::new())),
        }
    }

    /// Register `source` under `section`. Re-registering a section name
    /// replaces the previous provider (a reconnect re-registers its
    /// stats without duplicating the section).
    pub fn register(&self, section: impl Into<String>, source: Arc<dyn StatsSource>) {
        let section = section.into();
        let mut inner = self.inner.lock_or_recover();
        if let Some(slot) = inner.iter_mut().find(|(n, _)| *n == section) {
            slot.1 = source;
        } else {
            inner.push((section, source));
        }
    }

    /// Registered section names, in registration order.
    pub fn sections(&self) -> Vec<String> {
        self.inner
            .lock_or_recover()
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Snapshot every section's values, in registration order.
    pub fn snapshot(&self) -> Vec<(String, Vec<(&'static str, u64)>)> {
        let providers: Vec<(String, Provider)> = self.inner.lock_or_recover().clone();
        providers
            .into_iter()
            .map(|(name, p)| (name, p.stat_values()))
            .collect()
    }

    /// Render the whole registry — and the trace ring, when tracing is
    /// enabled — as one JSON document (see [`Snapshot::parse`] for the
    /// accepted shape).
    pub fn snapshot_json(&self) -> String {
        Snapshot::capture(self).to_json()
    }
}

/// A parsed snapshot document — the read side of
/// [`StatsRegistry::snapshot_json`], used by report tooling and the
/// round-trip tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(section, [(key, value)])` in document order.
    pub stats: Vec<(String, Vec<(String, u64)>)>,
    /// Whether tracing was enabled when the snapshot was taken.
    pub trace_enabled: bool,
    /// Buffered trace events, in record order.
    pub events: Vec<TraceEvent>,
}

impl Snapshot {
    /// Capture the current state of `registry` (and the trace ring)
    /// without a JSON round-trip.
    pub fn capture(registry: &StatsRegistry) -> Self {
        let stats = registry
            .snapshot()
            .into_iter()
            .map(|(name, vals)| {
                (
                    name,
                    vals.into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let enabled = trace::is_enabled();
        Self {
            stats,
            trace_enabled: enabled,
            events: if enabled { trace::events() } else { Vec::new() },
        }
    }

    /// One stat value.
    pub fn get(&self, section: &str, key: &str) -> Option<u64> {
        self.stats
            .iter()
            .find(|(n, _)| n == section)?
            .1
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Parse the subset of JSON that [`StatsRegistry::snapshot_json`]
    /// emits. Tolerant of whitespace; not a general JSON parser.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut out = Snapshot::default();
        let stats_at = s.find("\"stats\"").ok_or("missing \"stats\"")?;
        let trace_at = s.find("\"trace\"").ok_or("missing \"trace\"")?;
        let stats_body = &s[stats_at..trace_at];
        // Sections: "name": { "k": v, ... }
        let mut rest = stats_body;
        // Skip past the outer `"stats": {`.
        rest = &rest[rest.find('{').ok_or("missing stats object")? + 1..];
        while let Some(q) = rest.find('"') {
            let after = &rest[q + 1..];
            let Some(endq) = after.find('"') else { break };
            let name = &after[..endq];
            let after = &after[endq + 1..];
            let Some(open) = after.find('{') else { break };
            let Some(close) = after[open..].find('}') else {
                return Err(format!("unterminated section {name:?}"));
            };
            let body = &after[open + 1..open + close];
            let mut values = Vec::new();
            for pair in body.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("bad stat pair {pair:?}"))?;
                let k = k.trim().trim_matches('"').to_string();
                let v: u64 = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad number for {k}: {e}"))?;
                values.push((k, v));
            }
            out.stats.push((name.to_string(), values));
            rest = &after[open + close + 1..];
        }
        let trace_body = &s[trace_at..];
        let enabled_at = trace_body.find("\"enabled\"").ok_or("missing enabled")?;
        out.trace_enabled = trace_body[enabled_at..]
            .split_once(':')
            .map(|(_, r)| r.trim_start().starts_with("true"))
            .unwrap_or(false);
        let events_at = trace_body.find("\"events\"").ok_or("missing events")?;
        let events_body = &trace_body[events_at..];
        let open = events_body.find('[').ok_or("missing events array")?;
        let close = events_body[open..]
            .find(']')
            .ok_or("unterminated events array")?;
        let body = &events_body[open + 1..open + close];
        let mut rest = body;
        while let Some(open) = rest.find('{') {
            let Some(close) = rest[open..].find('}') else {
                return Err("unterminated event object".into());
            };
            let obj = &rest[open + 1..open + close];
            let mut trace = None;
            let mut stage = None;
            let mut t_ns = None;
            for pair in obj.split(',') {
                let Some((k, v)) = pair.split_once(':') else {
                    continue;
                };
                let k = k.trim().trim_matches('"');
                let v = v.trim();
                match k {
                    "trace" => trace = v.parse::<u64>().ok(),
                    "stage" => stage = Stage::from_name(v.trim_matches('"')),
                    "t_ns" => t_ns = v.parse::<u64>().ok(),
                    _ => {}
                }
            }
            match (trace, stage, t_ns) {
                (Some(trace), Some(stage), Some(t_ns)) => {
                    out.events.push(TraceEvent { trace, stage, t_ns })
                }
                _ => return Err(format!("bad event object {obj:?}")),
            }
            rest = &rest[open + close + 1..];
        }
        Ok(out)
    }

    /// Write [`StatsRegistry::snapshot_json`]-shaped JSON for this
    /// snapshot (so a captured snapshot can be serialized later).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stats\": {\n");
        for (si, (name, values)) in self.stats.iter().enumerate() {
            out.push_str(&format!("    \"{name}\": {{\n"));
            for (vi, (k, v)) in values.iter().enumerate() {
                let comma = if vi + 1 == values.len() { "" } else { "," };
                out.push_str(&format!("      \"{k}\": {v}{comma}\n"));
            }
            let comma = if si + 1 == self.stats.len() { "" } else { "," };
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"trace\": {{\n    \"enabled\": {},\n    \"events\": [\n",
            self.trace_enabled
        ));
        for (i, e) in self.events.iter().enumerate() {
            let comma = if i + 1 == self.events.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"trace\": {}, \"stage\": \"{}\", \"t_ns\": {}}}{comma}\n",
                e.trace,
                e.stage.name(),
                e.t_ns
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<(&'static str, u64)>);
    impl StatsSource for Fixed {
        fn stat_values(&self) -> Vec<(&'static str, u64)> {
            self.0.clone()
        }
    }

    #[test]
    fn register_snapshot_and_replace() {
        let reg = StatsRegistry::new();
        reg.register("alpha", Arc::new(Fixed(vec![("a", 1), ("b", 2)])));
        reg.register("beta", Arc::new(Fixed(vec![("x", 9)])));
        assert_eq!(reg.sections(), vec!["alpha", "beta"]);
        let snap = Snapshot::capture(&reg);
        assert_eq!(snap.get("alpha", "b"), Some(2));
        assert_eq!(snap.get("beta", "x"), Some(9));
        assert_eq!(snap.get("beta", "nope"), None);
        // Re-registration replaces, never duplicates.
        reg.register("alpha", Arc::new(Fixed(vec![("a", 5)])));
        assert_eq!(reg.sections(), vec!["alpha", "beta"]);
        assert_eq!(Snapshot::capture(&reg).get("alpha", "a"), Some(5));
    }

    #[test]
    fn existing_stats_structs_are_sources() {
        let reg = StatsRegistry::new();
        let overload = OverloadStats::new();
        overload.enqueued.add(3);
        let recovery = RecoveryStats::new();
        recovery.reconnect_attempts.inc();
        reg.register("overload", Arc::new(overload.clone()));
        reg.register("recovery", Arc::new(recovery.clone()));
        let snap = Snapshot::capture(&reg);
        assert_eq!(snap.get("overload", "enqueued"), Some(3));
        assert_eq!(snap.get("recovery", "reconnect_attempts"), Some(1));
        // Live handles: later increments show in later snapshots.
        overload.enqueued.add(4);
        assert_eq!(Snapshot::capture(&reg).get("overload", "enqueued"), Some(7));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = StatsRegistry::new();
        reg.register("one", Arc::new(Fixed(vec![("k1", 11), ("k2", 22)])));
        reg.register("two", Arc::new(Fixed(vec![("k3", 33)])));
        let json = reg.snapshot_json();
        let parsed = Snapshot::parse(&json).unwrap();
        assert_eq!(parsed.get("one", "k2"), Some(22));
        assert_eq!(parsed.get("two", "k3"), Some(33));
        assert_eq!(parsed.stats.len(), 2);
        // And a synthetic snapshot with events round-trips through
        // to_json/parse exactly.
        let snap = Snapshot {
            stats: vec![("s".into(), vec![("k".into(), 7)])],
            trace_enabled: true,
            events: vec![
                TraceEvent {
                    trace: 42,
                    stage: Stage::Commit,
                    t_ns: 1000,
                },
                TraceEvent {
                    trace: 42,
                    stage: Stage::DlcApply,
                    t_ns: 2000,
                },
            ],
        };
        let back = Snapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse("{}").is_err());
        assert!(Snapshot::parse("{\"stats\": {}}").is_err());
        assert!(Snapshot::parse(
            "{\"stats\": {}, \"trace\": {\"enabled\": false, \"events\": [{\"trace\": \"x\"}]}}"
        )
        .is_err());
    }

    #[test]
    fn empty_registry_renders_valid_json() {
        let reg = StatsRegistry::new();
        let parsed = Snapshot::parse(&reg.snapshot_json()).unwrap();
        assert!(parsed.stats.is_empty());
        assert!(parsed.events.is_empty());
    }
}
