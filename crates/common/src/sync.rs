//! Ranked synchronization primitives enforcing the workspace lock
//! hierarchy (DESIGN.md § 11).
//!
//! Every long-lived lock in the hot crates (`dlm`, `server`, `client`,
//! `storage`) carries a [`LockRank`] from the registry in [`ranks`]. The
//! hierarchy rule is simple and global: **a thread may only acquire a
//! lock of strictly higher rank than the highest rank it already
//! holds** (outermost locks have the lowest ranks). Multi-instance
//! locks — many objects of the same kind, e.g. buffer-pool page frames
//! — share one rank declared with [`LockRank::new_multi`], which
//! permits same-rank nesting.
//!
//! The rule is enforced twice:
//!
//! * **statically** by the `lockcheck` workspace linter, which maps lock
//!   call sites to this same registry and rejects acquisition-order
//!   cycles at lint time, and
//! * **dynamically** under the `lock-audit` feature (on in debug/test
//!   CI), where every acquisition checks a thread-local stack of held
//!   ranks and panics — naming both locks and both ranks — on an
//!   out-of-order acquisition.
//!
//! Poisoning: the wrappers are built on `std::sync` primitives, and a
//! panicking holder poisons them. Request paths must not turn one
//! panicked request into a permanently wedged server, so acquisition is
//! spelled [`OrderedMutex::lock_or_recover`]: a poisoned lock is
//! recovered (the guarded state is taken as-is), the global
//! [`poison_recoveries`] counter ticks, and the event is logged once to
//! stderr. `lock()` is an alias kept so wrapper types drop in where
//! `parking_lot` types were.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{self, Condvar as StdCondvar, OnceLock, PoisonError};
use std::time::Duration;

use crate::metrics::Counter;

/// A position in the workspace lock hierarchy: lower ranks are acquired
/// first (outermost). The numeric rank orders acquisitions; the name
/// appears in audit panics, lint reports, and poison-recovery logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRank {
    rank: u16,
    name: &'static str,
    /// Multi-instance lock class: many same-ranked instances may be
    /// held at once (e.g. buffer-pool page frames).
    multi: bool,
}

impl LockRank {
    /// A single-instance rank: acquiring it twice on one thread (or
    /// acquiring any same-or-lower rank while held) is an ordering
    /// violation.
    pub const fn new(rank: u16, name: &'static str) -> Self {
        Self {
            rank,
            name,
            multi: false,
        }
    }

    /// A multi-instance rank: several instances of this class may be
    /// held simultaneously by one thread (same-rank nesting allowed).
    pub const fn new_multi(rank: u16, name: &'static str) -> Self {
        Self {
            rank,
            name,
            multi: true,
        }
    }

    /// Numeric rank (lower = acquired first).
    pub const fn rank(&self) -> u16 {
        self.rank
    }

    /// Registry name, e.g. `"dlm.table"`.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Whether same-rank nesting is allowed (multi-instance class).
    pub const fn is_multi(&self) -> bool {
        self.multi
    }
}

/// The declared lock registry: every ranked lock in the workspace, one
/// constant per lock (or per multi-instance lock class).
///
/// The table is mirrored by `crates/lockcheck`'s static registry (which
/// maps source call sites to these ranks); a lockcheck self-test fails
/// if the two drift apart. Gaps between ranks are deliberate room for
/// future locks. See DESIGN.md § 11 for the rank table with
/// guards-what documentation.
pub mod ranks {
    use super::LockRank;

    // Observability (outermost reader: a snapshot may walk every
    // subsystem's stats, so the registry ranks below all of them).
    /// The unified stats registry's provider list.
    pub const STATS_REGISTRY: LockRank = LockRank::new(50, "stats.registry");

    // Client side (outermost: application-facing entry points).
    /// Supervisor thread handles attached to a client.
    pub const CLIENT_SUPERVISORS: LockRank = LockRank::new(100, "client.supervisors");
    /// The client's current session identity (resume token, epoch).
    pub const CLIENT_SESSION: LockRank = LockRank::new(110, "client.session");
    /// The swappable current-connection slot.
    pub const CLIENT_CONN_CELL: LockRank = LockRank::new(120, "client.conn_cell");
    /// The swappable DLM-agent-connection slot.
    pub const CLIENT_AGENT_CELL: LockRank = LockRank::new(130, "client.agent_cell");
    /// The client's push-sink slot (re-wired on resume).
    pub const CLIENT_PUSH_SINK: LockRank = LockRank::new(140, "client.push_sink");
    /// The connection's reader-thread join handle.
    pub const CONN_READER: LockRank = LockRank::new(150, "conn.reader");
    /// In-flight RPCs awaiting responses, keyed by sequence number.
    pub const CONN_PENDING: LockRank = LockRank::new(160, "conn.pending");
    /// The connection's registered push sink.
    pub const CONN_SINK: LockRank = LockRank::new(170, "conn.sink");
    /// Death-notifier senders fired when a connection dies.
    pub const CONN_DEATH_WATCHERS: LockRank = LockRank::new(180, "conn.death_watchers");
    /// Death-notifier senders fired when a DLM-agent connection dies.
    pub const AGENT_DEATH_WATCHERS: LockRank = LockRank::new(185, "agent_conn.death_watchers");
    /// The DLC's object→displays dependency table.
    pub const DLC_STATE: LockRank = LockRank::new(190, "dlc.state");
    /// The DLC's replay cursor (last-applied update-log seqno).
    pub const DLC_CURSOR: LockRank = LockRank::new(195, "dlc.cursor");
    /// The DLC's cache-patching delta hook slot.
    pub const DLC_DELTA_HOOK: LockRank = LockRank::new(200, "dlc.delta_hook");
    /// The client's in-memory object cache.
    pub const CLIENT_CACHE: LockRank = LockRank::new(210, "client.cache");
    /// The client's local-disk cache index.
    pub const CLIENT_DISKCACHE: LockRank = LockRank::new(220, "client.diskcache");

    // Server side.
    /// The connected-session registry.
    pub const SERVER_SESSIONS: LockRank = LockRank::new(300, "server.sessions");
    /// Issued resume tokens.
    pub const SERVER_RESUME_TOKENS: LockRank = LockRank::new(310, "server.resume_tokens");
    /// Per-object commit version counters.
    pub const SERVER_VERSIONS: LockRank = LockRank::new(320, "server.versions");
    /// A session's outbox back-reference slot.
    pub const SESSION_OUTBOX: LockRank = LockRank::new(330, "session.outbox");
    /// A session's pending callback-ack waiters.
    pub const SESSION_ACKS: LockRank = LockRank::new(340, "session.acks");
    /// The transaction manager's live-transaction table.
    pub const SERVER_TXNS: LockRank = LockRank::new(350, "server.txns");
    /// The copy table (which clients cache which objects).
    pub const SERVER_COPIES: LockRank = LockRank::new(360, "server.copies");
    /// The transactional lock manager's lock table.
    pub const LOCKMGR_TABLE: LockRank = LockRank::new(370, "lockmgr.table");
    /// Per-waiter grant state inside the lock manager (one per queued
    /// request; acquired while scanning the queue).
    pub const LOCKMGR_WAITER: LockRank = LockRank::new_multi(375, "lockmgr.waiter");
    /// The display-lock manager's holder/sink table.
    pub const DLM_TABLE: LockRank = LockRank::new(380, "dlm.table");
    /// One shard's holder/sink table in the partitioned DLM (one lock
    /// per shard; a commit's fan-out threads each take exactly one, so
    /// same-rank instances never nest on a thread).
    pub const DLM_SHARD_TABLE: LockRank = LockRank::new_multi(381, "dlm.shard_table");
    /// The DLM's bounded replayable update log (appended under
    /// `dlm.table` on the commit path; read alone when serving replay).
    pub const DLM_UPDATE_LOG: LockRank = LockRank::new(385, "dlm.update_log");
    /// One shard's replayable update log (independent seqno space per
    /// shard; appended under that shard's `dlm.shard_table`).
    pub const DLM_SHARD_LOG: LockRank = LockRank::new_multi(386, "dlm.shard_log");
    /// The DLM agent's live session-channel list.
    pub const DLM_AGENT_SESSIONS: LockRank = LockRank::new(390, "dlm.agent_sessions");
    /// A per-client outbox's coalescing queue + writer state.
    pub const OUTBOX_STATE: LockRank = LockRank::new_multi(400, "outbox.state");

    // Storage engine (inner: reached from server request paths).
    /// The object store's OID→record-address directory.
    pub const STORE_DIRECTORY: LockRank = LockRank::new(500, "store.directory");
    /// The object store's per-class extent sets.
    pub const STORE_EXTENTS: LockRank = LockRank::new(505, "store.extents");
    /// The write-ahead log's buffer and tail state.
    pub const STORAGE_WAL: LockRank = LockRank::new(510, "storage.wal");
    /// The DLM's durable update-log segments (spill of `dlm.update_log`,
    /// which ranks above it so the spill can run under the ring's lock).
    pub const STORAGE_SEGLOG: LockRank = LockRank::new(515, "storage.seglog");
    /// Heap-file allocation state.
    pub const STORAGE_HEAP: LockRank = LockRank::new(520, "storage.heap");
    /// The buffer pool's frame table and replacement state.
    pub const BUFFER_POOL: LockRank = LockRank::new(530, "buffer.pool");
    /// A page frame latch (one per frame; pages are latched in
    /// pool-managed order).
    pub const BUFFER_FRAME: LockRank = LockRank::new_multi(540, "buffer.frame");
    /// Disk-manager free page list; taken under `buffer.pool` on delete.
    pub const STORAGE_DISK_FREELIST: LockRank = LockRank::new(545, "storage.disk.freelist");
    /// The disk manager's file handle.
    pub const STORAGE_DISK: LockRank = LockRank::new(550, "storage.disk");

    // Wire transports (innermost: every subsystem may end a chain with
    // a socket write, so these rank above everything else).
    /// A TCP channel's writer half.
    pub const WIRE_WRITER: LockRank = LockRank::new_multi(600, "wire.writer");
    /// A TCP channel's reader half.
    pub const WIRE_READER: LockRank = LockRank::new_multi(610, "wire.reader");
    /// An in-process channel's sender slot.
    pub const WIRE_LOCAL_TX: LockRank = LockRank::new_multi(620, "wire.local_tx");
    /// A fault plan's wrapped-channel registry (kill-now close list).
    pub const WIRE_HUB: LockRank = LockRank::new(630, "wire.hub");

    // Tracing (innermost of all: a stage may be recorded while holding
    // any lock in the system, including a wire writer, so the trace
    // sink ranks above the entire hierarchy).
    /// The trace module's ring-buffered event sink.
    pub const TRACE_SINK: LockRank = LockRank::new(700, "trace.sink");

    /// Every declared rank, sorted ascending. The lockcheck registry and
    /// DESIGN.md § 11 table are validated against this list.
    pub const ALL: &[LockRank] = &[
        STATS_REGISTRY,
        CLIENT_SUPERVISORS,
        CLIENT_SESSION,
        CLIENT_CONN_CELL,
        CLIENT_AGENT_CELL,
        CLIENT_PUSH_SINK,
        CONN_READER,
        CONN_PENDING,
        CONN_SINK,
        CONN_DEATH_WATCHERS,
        AGENT_DEATH_WATCHERS,
        DLC_STATE,
        DLC_CURSOR,
        DLC_DELTA_HOOK,
        CLIENT_CACHE,
        CLIENT_DISKCACHE,
        SERVER_SESSIONS,
        SERVER_RESUME_TOKENS,
        SERVER_VERSIONS,
        SESSION_OUTBOX,
        SESSION_ACKS,
        SERVER_TXNS,
        SERVER_COPIES,
        LOCKMGR_TABLE,
        LOCKMGR_WAITER,
        DLM_TABLE,
        DLM_SHARD_TABLE,
        DLM_UPDATE_LOG,
        DLM_SHARD_LOG,
        DLM_AGENT_SESSIONS,
        OUTBOX_STATE,
        STORE_DIRECTORY,
        STORE_EXTENTS,
        STORAGE_WAL,
        STORAGE_SEGLOG,
        STORAGE_HEAP,
        BUFFER_POOL,
        BUFFER_FRAME,
        STORAGE_DISK_FREELIST,
        STORAGE_DISK,
        WIRE_WRITER,
        WIRE_READER,
        WIRE_LOCAL_TX,
        WIRE_HUB,
        TRACE_SINK,
    ];
}

/// Global counter of poisoned-lock recoveries (a holder panicked and a
/// later acquirer took the state as-is). Nonzero in a healthy run means
/// some request died mid-update; the log line names the lock.
pub fn poison_recoveries() -> &'static Counter {
    static POISON: OnceLock<Counter> = OnceLock::new();
    POISON.get_or_init(Counter::new)
}

/// Per-thread held-rank bookkeeping, compiled in only under
/// `lock-audit`. The release path removes the *latest* entry for the
/// rank, so overlapping multi-instance guards unwind correctly even
/// when dropped out of order.
#[cfg(feature = "lock-audit")]
mod audit {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquired(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                let ordered = rank.rank() > top.rank()
                    || (rank.rank() == top.rank() && rank.is_multi() && top.is_multi());
                assert!(
                    ordered,
                    "lock-audit: acquiring '{}' (rank {}) while holding '{}' (rank {}): \
                     the lock hierarchy requires strictly increasing ranks \
                     (see displaydb_common::sync::ranks and DESIGN.md § 11)",
                    rank.name(),
                    rank.rank(),
                    top.name(),
                    top.rank(),
                );
            }
            held.push(rank);
        });
    }

    pub(super) fn released(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.rank() == rank.rank()) {
                held.remove(pos);
            }
        });
    }

    /// Ranks currently held by this thread (tests).
    pub fn held_ranks() -> Vec<u16> {
        HELD.with(|held| held.borrow().iter().map(|r| r.rank()).collect())
    }
}

#[cfg(feature = "lock-audit")]
pub use audit::held_ranks;

#[cfg(feature = "lock-audit")]
fn note_acquired(rank: LockRank) {
    audit::acquired(rank);
}

#[cfg(not(feature = "lock-audit"))]
fn note_acquired(_rank: LockRank) {}

#[cfg(feature = "lock-audit")]
fn note_released(rank: LockRank) {
    audit::released(rank);
}

#[cfg(not(feature = "lock-audit"))]
fn note_released(_rank: LockRank) {}

fn recover<G>(lock: &'static str, warned: &AtomicBool, err: PoisonError<G>) -> G {
    poison_recoveries().inc();
    if !warned.swap(true, Ordering::Relaxed) {
        eprintln!(
            "displaydb: recovered poisoned lock '{lock}' (a holder panicked mid-update); \
             continuing with the state as the panicking thread left it"
        );
    }
    err.into_inner()
}

/// A ranked mutual-exclusion lock. See the module docs for the
/// hierarchy rule and poison semantics.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    warned: AtomicBool,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`OrderedMutex`]. The inner `Option` exists so
/// [`OrderedCondvar`] can temporarily take the underlying std guard
/// during a wait.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    rank: LockRank,
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex guarding `value` at `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            warned: AtomicBool::new(false),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's declared rank.
    pub fn lock_rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire the lock, enforcing the rank order (under `lock-audit`)
    /// and recovering from poisoning: a panicked previous holder is
    /// logged (once) and counted in [`poison_recoveries`], and the
    /// state is taken as-is rather than wedging every later request.
    pub fn lock_or_recover(&self) -> OrderedMutexGuard<'_, T> {
        note_acquired(self.rank);
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|e| recover(self.rank.name(), &self.warned, e));
        OrderedMutexGuard {
            rank: self.rank,
            guard: Some(guard),
        }
    }

    /// Alias for [`OrderedMutex::lock_or_recover`], letting the type
    /// drop in where `parking_lot::Mutex` was used.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        self.lock_or_recover()
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => {
                note_acquired(self.rank);
                Some(OrderedMutexGuard {
                    rank: self.rank,
                    guard: Some(guard),
                })
            }
            Err(sync::TryLockError::Poisoned(e)) => {
                note_acquired(self.rank);
                Some(OrderedMutexGuard {
                    rank: self.rank,
                    guard: Some(recover(self.rank.name(), &self.warned, e)),
                })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        note_released(self.rank);
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("OrderedMutex");
        s.field("rank", &self.rank.name());
        match self.inner.try_lock() {
            Ok(g) => s.field("data", &&*g).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for OrderedMutex<T> {
    /// A default-valued mutex at rank 0 ("unranked"). Prefer
    /// [`OrderedMutex::new`] with a registry rank; this exists for
    /// derive-friendliness in tests.
    fn default() -> Self {
        Self::new(LockRank::new_multi(0, "unranked"), T::default())
    }
}

/// Result of [`OrderedCondvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable for [`OrderedMutex`]. During a wait the mutex
/// is released by the OS but the rank stays on the thread's held stack:
/// the waiting region still "owns" the lock logically, and treating it
/// as held keeps the audit conservative.
#[derive(Default)]
pub struct OrderedCondvar {
    inner: StdCondvar,
}

impl OrderedCondvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release the guard's lock and sleep until notified.
    pub fn wait<T>(&self, guard: &mut OrderedMutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Like [`OrderedCondvar::wait`], with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedCondvar").finish_non_exhaustive()
    }
}

/// A ranked reader-writer lock; both `read()` and `write()` participate
/// in the hierarchy at the same rank and recover from poisoning.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    warned: AtomicBool,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    rank: LockRank,
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    rank: LockRank,
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a lock guarding `value` at `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            warned: AtomicBool::new(false),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's declared rank.
    pub fn lock_rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire a shared read guard (rank-checked, poison-recovering).
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        note_acquired(self.rank);
        OrderedReadGuard {
            rank: self.rank,
            guard: self
                .inner
                .read()
                .unwrap_or_else(|e| recover(self.rank.name(), &self.warned, e)),
        }
    }

    /// Acquire an exclusive write guard (rank-checked, poison-recovering).
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        note_acquired(self.rank);
        OrderedWriteGuard {
            rank: self.rank,
            guard: self
                .inner
                .write()
                .unwrap_or_else(|e| recover(self.rank.name(), &self.warned, e)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        note_released(self.rank);
    }
}

impl<T: ?Sized> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        note_released(self.rank);
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const OUTER: LockRank = LockRank::new(10, "test.outer");
    const INNER: LockRank = LockRank::new(20, "test.inner");
    const PAGE: LockRank = LockRank::new_multi(30, "test.page");

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in ranks::ALL.windows(2) {
            assert!(
                pair[0].rank() < pair[1].rank(),
                "ranks must be strictly ascending: {} vs {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        let mut names: Vec<&str> = ranks::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ranks::ALL.len(), "duplicate registry name");
    }

    #[test]
    fn mutex_basics() {
        let m = OrderedMutex::new(OUTER, 1);
        *m.lock() += 1;
        assert_eq!(*m.lock_or_recover(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = OrderedRwLock::new(INNER, vec![1, 2]);
        {
            let r = l.read();
            assert_eq!(r.len(), 2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn ordered_nesting_is_allowed() {
        let outer = OrderedMutex::new(OUTER, ());
        let inner = OrderedMutex::new(INNER, ());
        let g1 = outer.lock();
        let g2 = inner.lock();
        drop(g2);
        drop(g1);
    }

    #[test]
    fn multi_rank_allows_same_rank_nesting() {
        let a = OrderedMutex::new(PAGE, ());
        let b = OrderedMutex::new(PAGE, ());
        let g1 = a.lock();
        let g2 = b.lock();
        // Out-of-order drop must unwind the held stack correctly.
        drop(g1);
        drop(g2);
        let _g3 = a.lock();
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn audit_panics_on_inverted_acquisition() {
        let outer = Arc::new(OrderedMutex::new(OUTER, ()));
        let inner = Arc::new(OrderedMutex::new(INNER, ()));
        let err = std::thread::spawn(move || {
            let _inner = inner.lock();
            let _outer = outer.lock(); // rank 10 under rank 20: must panic
        })
        .join()
        .expect_err("inverted acquisition must panic under lock-audit");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        for needle in ["test.outer", "10", "test.inner", "20"] {
            assert!(
                message.contains(needle),
                "panic message must name both locks and ranks, missing {needle:?}: {message}"
            );
        }
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn audit_stack_unwinds_on_release() {
        let outer = OrderedMutex::new(OUTER, ());
        let inner = OrderedMutex::new(INNER, ());
        {
            let _g1 = outer.lock();
            let _g2 = inner.lock();
            assert_eq!(held_ranks(), vec![10, 20]);
        }
        assert!(held_ranks().is_empty());
        // After full release, the higher-ranked lock may be taken first.
        let g = inner.lock();
        drop(g);
        let _g = outer.lock();
        assert_eq!(held_ranks(), vec![10]);
    }

    #[test]
    fn poisoned_mutex_recovers_and_counts() {
        let before = poison_recoveries().get();
        let m = Arc::new(OrderedMutex::new(OUTER, 7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock_or_recover(), 7, "state survives recovery");
        assert!(
            poison_recoveries().get() > before,
            "recovery must be counted"
        );
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(OrderedRwLock::new(INNER, 3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn condvar_wait_for_timeout_and_notify() {
        let pair = Arc::new((OrderedMutex::new(OUTER, false), OrderedCondvar::new()));
        let res = {
            let mut g = pair.0.lock();
            pair.1.wait_for(&mut g, Duration::from_millis(10))
        };
        assert!(res.timed_out());

        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let r = pair.1.wait_for(&mut g, Duration::from_secs(2));
            assert!(!r.timed_out(), "missed the notify");
        }
        drop(g);
        t.join().unwrap();
    }
}
