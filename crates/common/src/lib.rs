//! Shared foundation for the `displaydb` workspace.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! reproduction of *"Consistency and Performance of Concurrent Interactive
//! Database Applications"* (Stathatos, Kelley, Roussopoulos, Baras — ICDE
//! 1996):
//!
//! * strongly-typed identifiers ([`ids`]) for objects, pages, transactions,
//!   clients and displays,
//! * the workspace-wide error type ([`error::DbError`]),
//! * lightweight metrics primitives ([`metrics`]) used by the experiment
//!   harness to count messages, cache hits, and record latency percentiles,
//! * a generic intrusive-free [`lru::LruCache`] shared by the client
//!   database cache and the buffer pool bookkeeping,
//! * end-to-end notification-path tracing ([`trace`]) and the unified
//!   [`stats::StatsRegistry`] snapshot layer (DESIGN.md § 12).
//!
//! Nothing here depends on anything else in the workspace.

pub mod backoff;
pub mod crashpoint;
pub mod error;
pub mod ids;
pub mod lru;
pub mod metrics;
pub mod overload;
pub mod stats;
pub mod sync;
pub mod trace;

pub use backoff::ReconnectPolicy;
pub use crashpoint::CrashPoint;
pub use error::{DbError, DbResult};
pub use ids::{ClassId, ClientId, DisplayId, Lsn, Oid, PageId, RecordId, SlotId, TxnId};
pub use overload::{DurableLogConfig, OverloadConfig, UpdateLogConfig};
pub use stats::{StatsRegistry, StatsSource};
pub use sync::{LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
pub use trace::TraceId;
