//! End-to-end notification-path tracing (DESIGN.md § 12).
//!
//! The paper's performance claims are about the *notification path* —
//! commit → display-lock intersect → outbox → wire → DLC apply — and
//! this module lets one committed update be followed across every hop.
//! A [`TraceId`] is minted at the committing client, carried through the
//! wire protocols (`Request::Commit`, `UpdateInfo`, `DlmEvent::Delta`),
//! and each subsystem records a `(trace_id, stage, t)` triple into a
//! global ring-buffered sink as the update passes through.
//!
//! ## Overhead policy
//!
//! Tracing is **off by default** and the disabled path is one relaxed
//! atomic load per call site — cheap enough to leave the record calls
//! compiled into release hot paths, which is what keeps the bench-gate
//! baselines valid. When disabled, nothing is buffered and fresh trace
//! ids are not minted (untraced messages carry id 0, one varint byte on
//! the wire).
//!
//! ## Locking
//!
//! The sink's ring buffer sits behind an [`OrderedMutex`] at rank
//! [`ranks::TRACE_SINK`] — the highest rank in the hierarchy, because a
//! stage may be recorded while holding any other lock in the system
//! (outbox state during a drain, a wire writer during a send). The
//! lockcheck linter and the runtime audit both see it like every other
//! ranked lock.

use crate::sync::{ranks, OrderedMutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Correlates one committed update across pipeline stages. `0` means
/// "untraced" and is never recorded.
pub type TraceId = u64;

/// A pipeline stage on the notification path, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The write committed (server commit path, or the committing
    /// client's report in the agent deployment).
    Commit,
    /// The DLM intersected the commit with registered interests.
    Intersect,
    /// The event entered a per-client outbox queue.
    OutboxEnqueue,
    /// The outbox writer drained the event toward the wire.
    OutboxDrain,
    /// The encoded frame was handed to the transport.
    WireSend,
    /// The frame was decoded on the receiving client.
    WireRecv,
    /// The DLC applied the update (delta patch or invalidation
    /// dispatch) to the client's caches.
    DlcApply,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: &'static [Stage] = &[
        Stage::Commit,
        Stage::Intersect,
        Stage::OutboxEnqueue,
        Stage::OutboxDrain,
        Stage::WireSend,
        Stage::WireRecv,
        Stage::DlcApply,
    ];

    /// Stable snake_case name (snapshot JSON, reports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Commit => "commit",
            Stage::Intersect => "intersect",
            Stage::OutboxEnqueue => "outbox_enqueue",
            Stage::OutboxDrain => "outbox_drain",
            Stage::WireSend => "wire_send",
            Stage::WireRecv => "wire_recv",
            Stage::DlcApply => "dlc_apply",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// One recorded `(trace, stage, t)` triple. Timestamps are nanoseconds
/// since the process-wide trace epoch, so every event in one snapshot
/// is comparable and monotone wall-clock order is preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The update's trace id.
    pub trace: TraceId,
    /// Which pipeline stage recorded it.
    pub stage: Stage,
    /// Nanoseconds since [`epoch`](self) initialization.
    pub t_ns: u64,
}

/// Default ring capacity: ~28 KiB, thousands of full 7-stage traces.
pub const DEFAULT_RING_CAPACITY: usize = 1024 * 7;

/// Fixed-capacity ring of trace events; old events are overwritten.
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the ring has wrapped.
    head: usize,
    cap: usize,
    wrapped: bool,
}

impl Ring {
    const fn new() -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            cap: DEFAULT_RING_CAPACITY,
            wrapped: false,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            return;
        }
        self.buf[self.head] = ev;
        self.head = (self.head + 1) % self.cap;
        self.wrapped = true;
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        if !self.wrapped {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.wrapped = false;
    }
}

/// Enabled flag, checked with one relaxed load on every record call.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic trace-id source; `next_trace_id` never returns 0.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static OrderedMutex<Ring> {
    static SINK: OnceLock<OrderedMutex<Ring>> = OnceLock::new();
    SINK.get_or_init(|| OrderedMutex::new(ranks::TRACE_SINK, Ring::new()))
}

/// The process trace epoch: all timestamps are nanoseconds since this
/// instant, fixed the first time anything asks for the time.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotone).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turn tracing on with the given ring capacity (`0` keeps the current
/// capacity). Existing buffered events are kept.
pub fn enable(ring_capacity: usize) {
    if ring_capacity > 0 {
        let mut ring = sink().lock_or_recover();
        // Shrinking or growing restarts the ring; mixing two layouts
        // would scramble the chronological snapshot order.
        if ring.cap != ring_capacity {
            ring.clear();
            ring.cap = ring_capacity;
        }
    }
    ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. Already-buffered events remain readable until
/// [`clear`] (a report may still want them).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop every buffered event.
pub fn clear() {
    sink().lock_or_recover().clear();
}

/// Mint a fresh trace id, or 0 when tracing is disabled (callers stamp
/// messages with the result unconditionally; 0 means untraced).
pub fn next_trace_id() -> TraceId {
    if !is_enabled() {
        return 0;
    }
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Record `trace` passing through `stage` now. No-op (one relaxed
/// load) when tracing is disabled or the id is 0.
pub fn record(trace: TraceId, stage: Stage) {
    if trace == 0 || !is_enabled() {
        return;
    }
    let ev = TraceEvent {
        trace,
        stage,
        t_ns: now_ns(),
    };
    sink().lock_or_recover().push(ev);
}

/// Snapshot of the buffered events in chronological record order.
pub fn events() -> Vec<TraceEvent> {
    sink().lock_or_recover().snapshot()
}

/// Number of currently buffered events (tests assert 0 when disabled).
pub fn buffered() -> usize {
    sink().lock_or_recover().buf.len()
}

/// All events for one trace id, in record order.
pub fn events_for(trace: TraceId) -> Vec<TraceEvent> {
    events().into_iter().filter(|e| e.trace == trace).collect()
}

/// Per-stage timestamps of one trace: for each stage, the first time
/// that stage recorded the id (an update fanned out to several viewers
/// records client-side stages once per viewer; the breakdown follows
/// the first delivery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// The trace id.
    pub trace: TraceId,
    /// `(stage, t_ns)` pairs in pipeline-stage order.
    pub stages: Vec<(Stage, u64)>,
}

impl TraceSpan {
    /// Build the span of `trace` from an event snapshot.
    pub fn of(trace: TraceId, events: &[TraceEvent]) -> Self {
        let mut stages = Vec::new();
        for &stage in Stage::ALL {
            if let Some(e) = events
                .iter()
                .filter(|e| e.trace == trace && e.stage == stage)
                .min_by_key(|e| e.t_ns)
            {
                stages.push((stage, e.t_ns));
            }
        }
        Self { trace, stages }
    }

    /// Whether every stage in `required` is present.
    pub fn covers(&self, required: &[Stage]) -> bool {
        required
            .iter()
            .all(|r| self.stages.iter().any(|(s, _)| s == r))
    }

    /// Whether timestamps never decrease along the stage order.
    pub fn is_monotone(&self) -> bool {
        self.stages.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// Nanoseconds between consecutive recorded stages:
    /// `(from, to, gap_ns)` triples. The gaps telescope to
    /// [`TraceSpan::total_ns`].
    pub fn gaps(&self) -> Vec<(Stage, Stage, u64)> {
        self.stages
            .windows(2)
            .map(|w| (w[0].0, w[1].0, w[1].1.saturating_sub(w[0].1)))
            .collect()
    }

    /// Nanoseconds from the first recorded stage to the last.
    pub fn total_ns(&self) -> u64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(&(_, first)), Some(&(_, last))) => last.saturating_sub(first),
            _ => 0,
        }
    }
}

/// Aggregated per-stage latency breakdown over many traces: for each
/// consecutive stage pair that appeared, a [`LatencyRecorder`] of the
/// observed gaps (queue residence vs wire vs apply).
///
/// [`LatencyRecorder`]: crate::metrics::LatencyRecorder
#[derive(Debug, Default)]
pub struct StageBreakdown {
    /// `(from, to)` → recorder of gap latencies, in first-seen order.
    pub pairs: Vec<((Stage, Stage), crate::metrics::LatencyRecorder)>,
    /// End-to-end (first stage → last stage) per trace.
    pub end_to_end: crate::metrics::LatencyRecorder,
    /// Traces aggregated.
    pub traces: usize,
}

impl StageBreakdown {
    /// Aggregate every complete-enough trace in `events` (a trace
    /// counts once it recorded at least two stages).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut ids: Vec<TraceId> = events.iter().map(|e| e.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut out = Self::default();
        for id in ids {
            let span = TraceSpan::of(id, events);
            if span.stages.len() < 2 {
                continue;
            }
            out.traces += 1;
            for (from, to, gap) in span.gaps() {
                let rec = match out.pairs.iter().find(|((f, t), _)| *f == from && *t == to) {
                    Some((_, rec)) => rec.clone(),
                    None => {
                        let rec = crate::metrics::LatencyRecorder::new();
                        out.pairs.push(((from, to), rec.clone()));
                        rec
                    }
                };
                rec.record(std::time::Duration::from_nanos(gap));
            }
            out.end_to_end
                .record(std::time::Duration::from_nanos(span.total_ns()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The sink is process-global; tests touching enable/disable state
    /// serialize on this.
    static GUARD: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing_and_mints_zero() {
        let _g = locked();
        disable();
        clear();
        assert_eq!(next_trace_id(), 0);
        record(123, Stage::Commit);
        record(0, Stage::Commit);
        assert_eq!(buffered(), 0);
        assert!(events().is_empty());
    }

    #[test]
    fn records_in_order_and_filters_by_trace() {
        let _g = locked();
        enable(0);
        clear();
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        record(a, Stage::Commit);
        record(b, Stage::Commit);
        record(a, Stage::Intersect);
        record(a, Stage::DlcApply);
        let mine = events_for(a);
        assert_eq!(mine.len(), 3);
        assert!(mine.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let span = TraceSpan::of(a, &events());
        assert!(span.covers(&[Stage::Commit, Stage::Intersect, Stage::DlcApply]));
        assert!(span.is_monotone());
        assert_eq!(span.gaps().len(), 2);
        disable();
        clear();
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _g = locked();
        enable(8);
        clear();
        let id = next_trace_id();
        for _ in 0..20 {
            record(id, Stage::Commit);
        }
        assert_eq!(buffered(), 8);
        let evs = events();
        assert_eq!(evs.len(), 8);
        // Chronological order survives the wrap.
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        disable();
        clear();
        enable(DEFAULT_RING_CAPACITY);
        disable();
    }

    #[test]
    fn stage_names_roundtrip() {
        for &s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn breakdown_aggregates_gaps() {
        let events = vec![
            TraceEvent {
                trace: 900_001,
                stage: Stage::Commit,
                t_ns: 100,
            },
            TraceEvent {
                trace: 900_001,
                stage: Stage::Intersect,
                t_ns: 150,
            },
            TraceEvent {
                trace: 900_001,
                stage: Stage::DlcApply,
                t_ns: 400,
            },
            TraceEvent {
                trace: 900_002,
                stage: Stage::Commit,
                t_ns: 500,
            },
            TraceEvent {
                trace: 900_002,
                stage: Stage::Intersect,
                t_ns: 540,
            },
            // A lone-stage trace is skipped.
            TraceEvent {
                trace: 900_003,
                stage: Stage::Commit,
                t_ns: 600,
            },
        ];
        let b = StageBreakdown::from_events(&events);
        assert_eq!(b.traces, 2);
        let ci = b
            .pairs
            .iter()
            .find(|((f, t), _)| *f == Stage::Commit && *t == Stage::Intersect)
            .map(|(_, r)| r)
            .unwrap();
        assert_eq!(ci.len(), 2);
        assert_eq!(b.end_to_end.len(), 2);
        // Gaps telescope: per-stage sums equal the end-to-end span.
        let span = TraceSpan::of(900_001, &events);
        let sum: u64 = span.gaps().iter().map(|(_, _, g)| g).sum();
        assert_eq!(sum, span.total_ns());
    }
}
