//! Deterministic crash-point harness for durability tests (DESIGN.md § 14).
//!
//! A *crash point* is a named location on a durability-critical code path
//! (today: the DLM's durable segment log in `crates/storage/src/seglog.rs`).
//! Tests **arm** a point; when the instrumented code reaches it, the code
//! performs the *partial on-disk effect* a real crash at that point would
//! leave behind (e.g. a torn record header for [`CrashPoint::MidAppend`])
//! and then returns [`DbError::CrashPoint`] instead of completing. The test
//! then "restarts" by reopening the same data directory and asserts the
//! recovery invariants: no lost committed update, no duplicate apply, and
//! cursor monotonicity across incarnations.
//!
//! The harness is process-global (the instrumented code cannot thread a
//! handle through every layer), so tests that arm crash points must be
//! serialized — each test disarms everything first via [`disarm_all`] (and
//! again on drop via [`CrashGuard`]).
//!
//! Arming is **one-shot**: a point fires once and disarms itself, so the
//! post-crash reopen runs the same code path clean. [`arm_after`] skips the
//! first `n` visits, which lets a test crash on the k-th append rather than
//! the first.
//!
//! When nothing is armed the probe is a single relaxed atomic load per
//! visit, cheap enough to leave in release builds (the same discipline as
//! the trace sink's disabled path).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use crate::error::DbError;

/// Named crash points recognized by the durable segment log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Crash midway through appending a record: the length/checksum header
    /// (or a prefix of the payload) reaches the file, the rest does not.
    /// Recovery must treat the torn tail as the end of the log.
    MidAppend,
    /// Crash after the record bytes are fully written but before the
    /// segment is synced. The record may or may not survive; recovery must
    /// accept either without losing earlier records.
    PostAppendPreSync,
    /// Crash after the sync completes but before the caller observes the
    /// acknowledgement. The record is durable; the writer never learned
    /// that. Recovery must not duplicate it.
    PostSyncPreAck,
    /// Crash midway through segment rotation: the new segment file exists
    /// (possibly empty, possibly header-only) but the rotation did not
    /// complete. Recovery must resume appends without dropping the sealed
    /// predecessor segments.
    MidRotation,
}

impl CrashPoint {
    /// Every named point, in declaration order (drives the test matrix).
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::MidAppend,
        CrashPoint::PostAppendPreSync,
        CrashPoint::PostSyncPreAck,
        CrashPoint::MidRotation,
    ];

    /// Stable dotted name, used in error messages and test output.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::MidAppend => "seglog.mid-append",
            CrashPoint::PostAppendPreSync => "seglog.post-append-pre-sync",
            CrashPoint::PostSyncPreAck => "seglog.post-sync-pre-ack",
            CrashPoint::MidRotation => "seglog.mid-segment-rotation",
        }
    }

    fn index(self) -> usize {
        match self {
            CrashPoint::MidAppend => 0,
            CrashPoint::PostAppendPreSync => 1,
            CrashPoint::PostSyncPreAck => 2,
            CrashPoint::MidRotation => 3,
        }
    }
}

/// `-1` = disarmed; `n >= 0` = fire after skipping `n` more visits.
static REMAINING: [AtomicI64; 4] = [
    AtomicI64::new(-1),
    AtomicI64::new(-1),
    AtomicI64::new(-1),
    AtomicI64::new(-1),
];

/// Times each point has actually fired (for test assertions).
static FIRED: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Fast-path gate: true iff any point is armed. Lets the instrumented code
/// pay one relaxed load when the harness is idle.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn refresh_any_armed() {
    let any = REMAINING.iter().any(|r| r.load(Ordering::SeqCst) >= 0);
    ANY_ARMED.store(any, Ordering::SeqCst);
}

/// Arm `point` to fire on its next visit (one-shot).
pub fn arm(point: CrashPoint) {
    arm_after(point, 0);
}

/// Arm `point` to fire on its `(skip + 1)`-th visit (one-shot).
pub fn arm_after(point: CrashPoint, skip: u64) {
    REMAINING[point.index()].store(skip as i64, Ordering::SeqCst);
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarm every point. Fired counters are preserved.
pub fn disarm_all() {
    for r in &REMAINING {
        r.store(-1, Ordering::SeqCst);
    }
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Probe called by instrumented code. Returns `true` exactly once per
/// arming, on the armed visit; the point disarms itself when it fires.
pub fn hit(point: CrashPoint) -> bool {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let slot = &REMAINING[point.index()];
    let mut cur = slot.load(Ordering::SeqCst);
    loop {
        if cur < 0 {
            return false;
        }
        let next = if cur == 0 { -1 } else { cur - 1 };
        match slot.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                if cur == 0 {
                    FIRED[point.index()].fetch_add(1, Ordering::SeqCst);
                    refresh_any_armed();
                    return true;
                }
                return false;
            }
            Err(observed) => cur = observed,
        }
    }
}

/// Times `point` has fired since process start.
pub fn fired(point: CrashPoint) -> u64 {
    FIRED[point.index()].load(Ordering::SeqCst)
}

/// The error an instrumented path returns when its point fires.
pub fn error(point: CrashPoint) -> DbError {
    DbError::CrashPoint(point.name())
}

/// RAII guard for crash-point tests: disarms everything on construction
/// (clearing any leakage from a previously panicked test) and again on
/// drop, so one test's arming can never bleed into the next.
#[derive(Debug)]
pub struct CrashGuard(());

impl CrashGuard {
    /// Take the harness for this test, starting from a disarmed state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        disarm_all();
        CrashGuard(())
    }
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness is process-global; these tests run under the same lock
    // discipline as the storage crash tests (serialized via CrashGuard and
    // cargo's per-test threads touching disjoint points would still race
    // ANY_ARMED), so each takes the guard first.
    use std::sync::Mutex;
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_points_never_fire() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        for p in CrashPoint::ALL {
            assert!(!hit(p), "{} fired while disarmed", p.name());
        }
    }

    #[test]
    fn armed_point_fires_exactly_once() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let before = fired(CrashPoint::MidAppend);
        arm(CrashPoint::MidAppend);
        assert!(!hit(CrashPoint::PostSyncPreAck), "wrong point fired");
        assert!(hit(CrashPoint::MidAppend));
        assert!(!hit(CrashPoint::MidAppend), "one-shot arming fired twice");
        assert_eq!(fired(CrashPoint::MidAppend), before + 1);
    }

    #[test]
    fn arm_after_skips_visits() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        arm_after(CrashPoint::MidRotation, 2);
        assert!(!hit(CrashPoint::MidRotation));
        assert!(!hit(CrashPoint::MidRotation));
        assert!(hit(CrashPoint::MidRotation));
        assert!(!hit(CrashPoint::MidRotation));
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _guard = CrashGuard::new();
            arm(CrashPoint::PostAppendPreSync);
        }
        assert!(!hit(CrashPoint::PostAppendPreSync));
    }

    #[test]
    fn error_names_the_point() {
        let err = error(CrashPoint::PostSyncPreAck);
        assert_eq!(err.kind(), "crash_point");
        assert!(err.to_string().contains("seglog.post-sync-pre-ack"));
        assert!(!err.is_retryable());
    }
}
