//! Strongly-typed identifiers.
//!
//! Every subsystem of the paper's architecture names entities: persistent
//! objects (OIDs, which display objects keep lists of — § 3.1 of the paper),
//! pages, transactions, clients, and displays (windows). Newtypes keep these
//! from being confused with one another at compile time and give the wire
//! codec a single place to agree on widths.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Construct from the raw integer representation.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw integer representation.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a persistent database object.
    ///
    /// OIDs are allocated by the server and never reused. Display objects
    /// keep a list of the OIDs they were derived from (paper § 3.1,
    /// footnote 1), and the display-lock tables on both the DLM and the DLC
    /// are keyed by OID.
    Oid, u64, "oid:"
);
id_type!(
    /// Identifier of a class in the database (or display) schema.
    ClassId, u32, "class:"
);
id_type!(
    /// Identifier of a transaction. Allocation order doubles as age for
    /// deadlock victim selection (youngest aborts).
    TxnId, u64, "txn:"
);
id_type!(
    /// Identifier of a connected client application.
    ClientId, u64, "client:"
);
id_type!(
    /// Identifier of one display (window) within a client. The paper's DLC
    /// (§ 4.2.1) multiplexes many displays behind a single client.
    DisplayId, u64, "display:"
);
id_type!(
    /// Identifier of a fixed-size page in the storage engine.
    PageId, u64, "page:"
);
id_type!(
    /// Log sequence number in the write-ahead log.
    Lsn, u64, "lsn:"
);

/// Slot index within a slotted page.
pub type SlotId = u16;

/// Physical address of a record: a page and a slot within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RecordId {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: SlotId,
}

impl RecordId {
    /// Construct a record id.
    pub const fn new(page: PageId, slot: SlotId) -> Self {
        Self { page, slot }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{}.{}", self.page.raw(), self.slot)
    }
}

/// A monotonically increasing id allocator, safe to share across threads.
///
/// Used by the server for OIDs and transaction ids, and by clients for
/// request sequence numbers.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Create a generator whose first issued value is `first`.
    pub const fn starting_at(first: u64) -> Self {
        Self {
            next: AtomicU64::new(first),
        }
    }

    /// Issue the next id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Ensure all future ids are `>= floor`. Used after recovery so that
    /// newly allocated OIDs do not collide with recovered ones.
    pub fn bump_to(&self, floor: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur < floor {
            match self
                .next
                .compare_exchange(cur, floor, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Peek at the next value without consuming it.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn id_display_and_roundtrip() {
        let oid = Oid::new(42);
        assert_eq!(oid.raw(), 42);
        assert_eq!(format!("{oid}"), "oid:42");
        assert_eq!(format!("{oid:?}"), "oid:42");
        assert_eq!(Oid::from(42u64), oid);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; just sanity check values.
        let rid = RecordId::new(PageId::new(3), 7);
        assert_eq!(format!("{rid}"), "rid:3.7");
        assert_eq!(rid.page, PageId::new(3));
        assert_eq!(rid.slot, 7);
    }

    #[test]
    fn idgen_monotonic() {
        let g = IdGen::starting_at(10);
        assert_eq!(g.next(), 10);
        assert_eq!(g.next(), 11);
        assert_eq!(g.peek(), 12);
        g.bump_to(100);
        assert_eq!(g.next(), 100);
        g.bump_to(50); // no-op: already past
        assert_eq!(g.next(), 101);
    }

    #[test]
    fn idgen_concurrent_unique() {
        let g = Arc::new(IdGen::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn record_id_ordering() {
        let a = RecordId::new(PageId::new(1), 5);
        let b = RecordId::new(PageId::new(2), 0);
        assert!(a < b);
    }
}
