//! Reconnection policy: exponential backoff with deterministic jitter.
//!
//! Interactive displays hold display locks for minutes or hours, so the
//! client stack must survive transient channel death without operator
//! intervention. [`ReconnectPolicy`] describes *how hard to try*: how many
//! attempts, how the delay grows, where it caps, and an optional overall
//! deadline after which the supervisor gives up and the session is declared
//! failed.
//!
//! Jitter is derived from a caller-supplied seed via a splitmix-style hash
//! rather than a random number generator, so tests that pin the seed are
//! fully deterministic while distinct connections still decorrelate their
//! retry storms.

use std::time::Duration;

/// How a supervised connection retries after channel death.
#[derive(Clone, Debug, PartialEq)]
pub struct ReconnectPolicy {
    /// Maximum reconnect attempts before the supervisor gives up.
    /// `0` disables reconnection entirely (fail fast on first death).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single delay.
    pub max_backoff: Duration,
    /// Growth factor applied per attempt (values `< 1.0` are clamped to 1).
    pub multiplier: f64,
    /// Fraction of the computed delay added/subtracted as jitter, in
    /// `[0.0, 1.0]`. `0.25` means the actual delay is uniform in
    /// `[0.75 d, 1.25 d]`.
    pub jitter: f64,
    /// Optional wall-clock budget for the whole reconnect effort, measured
    /// from the moment the channel died. `None` means attempts alone bound
    /// the effort.
    pub deadline: Option<Duration>,
    /// Use *full* jitter: the delay is uniform in `[0, d]` instead of the
    /// symmetric `[(1-j) d, (1+j) d]`. Symmetric jitter keeps a mass
    /// disconnect synchronized — 10k clients all sleep ≈ d and retry in
    /// the same window, attempt after attempt. Full jitter spreads the
    /// herd across the whole interval, which is what a reconnect storm
    /// needs (the admission gate sheds whatever still clumps). Off by
    /// default so single-client latency stays predictable.
    pub full_jitter: bool,
    /// Optional hard ceiling applied to the final (post-jitter) delay,
    /// independent of `max_backoff` (which also shapes the exponential
    /// growth). Lets a storm policy spread attempts with full jitter while
    /// guaranteeing no client ever waits longer than this to retry.
    pub hard_cap: Option<Duration>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.25,
            deadline: None,
            full_jitter: false,
            hard_cap: None,
        }
    }
}

impl ReconnectPolicy {
    /// A policy that never reconnects — first disconnect is final. This is
    /// the behaviour of an unsupervised connection, made explicit.
    pub fn none() -> Self {
        Self {
            max_attempts: 0,
            ..Self::default()
        }
    }

    /// An aggressive policy suitable for in-process tests: many fast
    /// attempts, tiny delays, no deadline.
    pub fn fast_test() -> Self {
        Self {
            max_attempts: 50,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            multiplier: 1.5,
            jitter: 0.2,
            deadline: Some(Duration::from_secs(10)),
            ..Self::default()
        }
    }

    /// A policy tuned for mass-reconnect storms: full jitter spreads the
    /// herd uniformly, the hard cap bounds any single wait, and a deadline
    /// bounds the whole effort. Used by the R4 experiment and recommended
    /// for fleets of supervised viewers.
    pub fn storm() -> Self {
        Self {
            max_attempts: 32,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 1.0,
            deadline: Some(Duration::from_secs(30)),
            full_jitter: true,
            hard_cap: Some(Duration::from_secs(2)),
        }
    }

    /// The delay to sleep before reconnect attempt `attempt` (1-based).
    /// `seed` perturbs the jitter deterministically; pass something unique
    /// per connection (e.g. a client id) so concurrent clients decorrelate.
    pub fn delay_for(&self, attempt: u32, seed: u64) -> Duration {
        if attempt <= 1 {
            return self.jittered(self.initial_backoff, attempt, seed);
        }
        let mult = self.multiplier.max(1.0);
        let exp = mult.powi((attempt - 1).min(63) as i32);
        let raw = self.initial_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        self.jittered(Duration::from_secs_f64(capped), attempt, seed)
    }

    fn jittered(&self, base: Duration, attempt: u32, seed: u64) -> Duration {
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 && !self.full_jitter {
            return self.hard_capped(base.min(self.max_backoff));
        }
        // splitmix64-style hash of (seed, attempt) -> uniform in [0, 1).
        let mut z = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let factor = if self.full_jitter {
            // Full (AWS-style) jitter: uniform in [0, 1].
            unit
        } else {
            // Symmetric jitter: uniform in [1 - j, 1 + j].
            1.0 - j + 2.0 * j * unit
        };
        let secs = (base.as_secs_f64() * factor).max(0.0);
        self.hard_capped(Duration::from_secs_f64(secs).min(self.max_backoff))
    }

    fn hard_capped(&self, d: Duration) -> Duration {
        match self.hard_cap {
            Some(cap) => d.min(cap),
            None => d,
        }
    }

    /// Whether attempt `attempt` (1-based) is still within policy given
    /// `elapsed` time since the disconnect.
    pub fn allows(&self, attempt: u32, elapsed: Duration) -> bool {
        if attempt > self.max_attempts {
            return false;
        }
        match self.deadline {
            Some(d) => elapsed <= d,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = ReconnectPolicy {
            jitter: 0.0,
            ..ReconnectPolicy::default()
        };
        let d1 = p.delay_for(1, 7);
        let d2 = p.delay_for(2, 7);
        let d3 = p.delay_for(3, 7);
        assert_eq!(d1, Duration::from_millis(50));
        assert_eq!(d2, Duration::from_millis(100));
        assert_eq!(d3, Duration::from_millis(200));
        // Far-out attempts hit the cap.
        assert_eq!(p.delay_for(30, 7), p.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = ReconnectPolicy::default();
        let a = p.delay_for(4, 42);
        let b = p.delay_for(4, 42);
        assert_eq!(a, b, "same seed + attempt must give same delay");
        let c = p.delay_for(4, 43);
        assert_ne!(a, c, "different seeds should decorrelate");
        let base = Duration::from_millis(400); // 50ms * 2^3
        let lo = base.mul_f64(1.0 - p.jitter);
        let hi = base.mul_f64(1.0 + p.jitter);
        assert!(a >= lo && a <= hi, "{a:?} outside [{lo:?}, {hi:?}]");
    }

    #[test]
    fn allows_respects_attempts_and_deadline() {
        let p = ReconnectPolicy {
            max_attempts: 3,
            deadline: Some(Duration::from_secs(1)),
            ..ReconnectPolicy::default()
        };
        assert!(p.allows(1, Duration::ZERO));
        assert!(p.allows(3, Duration::from_millis(900)));
        assert!(!p.allows(4, Duration::ZERO));
        assert!(!p.allows(2, Duration::from_secs(2)));
    }

    #[test]
    fn none_policy_disables_reconnect() {
        let p = ReconnectPolicy::none();
        assert!(!p.allows(1, Duration::ZERO));
    }

    #[test]
    fn full_jitter_spreads_from_zero() {
        let p = ReconnectPolicy {
            full_jitter: true,
            ..ReconnectPolicy::default()
        };
        let base = Duration::from_millis(400); // 50ms * 2^3 at attempt 4
        for seed in 0..64u64 {
            let d = p.delay_for(4, seed);
            assert!(d <= base, "full jitter exceeded base: {d:?}");
        }
        // Spread: with 64 seeds, some land in the lower half of [0, d].
        let low = (0..64u64).filter(|&s| p.delay_for(4, s) < base / 2).count();
        assert!(low > 8, "full jitter barely spreads ({low} of 64 low)");
        // Deterministic per seed.
        assert_eq!(p.delay_for(4, 9), p.delay_for(4, 9));
    }

    #[test]
    fn hard_cap_bounds_every_delay() {
        let cap = Duration::from_millis(80);
        let p = ReconnectPolicy {
            hard_cap: Some(cap),
            ..ReconnectPolicy::default()
        };
        for attempt in 1..12 {
            for seed in 0..16u64 {
                assert!(p.delay_for(attempt, seed) <= cap);
            }
        }
        let storm = ReconnectPolicy::storm();
        assert!(storm.full_jitter);
        let hard = storm.hard_cap.expect("storm policy sets a hard cap");
        for attempt in 1..storm.max_attempts {
            assert!(storm.delay_for(attempt, 0xbeef) <= hard);
        }
    }

    #[test]
    fn zero_jitter_never_exceeds_cap() {
        let p = ReconnectPolicy {
            initial_backoff: Duration::from_secs(10),
            max_backoff: Duration::from_secs(2),
            jitter: 0.0,
            ..ReconnectPolicy::default()
        };
        assert_eq!(p.delay_for(1, 0), Duration::from_secs(2));
    }
}
