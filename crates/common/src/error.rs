//! The workspace-wide error type.
//!
//! A single error enum keeps the crate boundaries simple: storage, locking,
//! protocol and schema failures all flow to callers as [`DbError`].
//!
//! # Error taxonomy
//!
//! Every variant falls into one of three contract classes that callers can
//! rely on:
//!
//! * **Retryable** — the operation failed due to a transient condition and
//!   may succeed if simply retried (in a new transaction where applicable):
//!   [`DbError::LockTimeout`], [`DbError::Deadlock`], [`DbError::Timeout`],
//!   [`DbError::Overloaded`], and — now that the client stack has
//!   supervised reconnection — [`DbError::Disconnected`]. A disconnected
//!   channel is repaired in the background by the connection supervisor, so
//!   retrying after a short backoff is the correct reaction. `Overloaded`
//!   is the server's admission-control shed: the request was never
//!   admitted, so retrying after backoff is always safe (no partial
//!   effects). [`DbError::is_retryable`] returns `true` exactly for this
//!   class.
//!
//! * **Fatal** — the request itself can never succeed as issued and must
//!   not be retried verbatim: [`DbError::ObjectNotFound`],
//!   [`DbError::ClassNotFound`], [`DbError::SchemaViolation`],
//!   [`DbError::InvalidArgument`], [`DbError::TxnNotActive`],
//!   [`DbError::Protocol`], [`DbError::Corrupt`], [`DbError::Rejected`],
//!   plus the resource-exhaustion pair [`DbError::PageFull`] and
//!   [`DbError::BufferExhausted`] and raw [`DbError::Io`] failures.
//!   [`DbError::CrashPoint`] also lands here: it is a *simulated* crash
//!   injected by the test harness ([`crate::crashpoint`]), and the only
//!   correct reaction is to tear down and reopen, never to retry.
//!
//! * **Degraded** — not an error variant but a *mode*: while the supervisor
//!   is between a disconnect and a successful resume, display-layer reads
//!   keep serving pinned display objects marked stale rather than failing.
//!   Callers see `Disconnected` only on paths that require the live server
//!   (RPCs, commits); cache-resident reads continue to succeed.

use crate::ids::{Oid, TxnId};
use std::fmt;
use std::io;

/// Result alias used throughout the workspace.
pub type DbResult<T> = Result<T, DbError>;

/// All error conditions surfaced by displaydb components.
#[derive(Debug)]
pub enum DbError {
    /// An underlying I/O failure (disk or network).
    Io(io::Error),
    /// On-disk or on-wire data failed validation.
    Corrupt(String),
    /// A requested object does not exist (or was deleted).
    ObjectNotFound(Oid),
    /// A requested class is unknown to the catalog.
    ClassNotFound(String),
    /// A record insert did not fit in any page.
    PageFull,
    /// The buffer pool had no evictable frame.
    BufferExhausted,
    /// A lock request timed out.
    LockTimeout { oid: Oid },
    /// The transaction was chosen as a deadlock victim.
    Deadlock { victim: TxnId },
    /// Operation attempted on a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// A value did not match the attribute type declared by the schema.
    SchemaViolation(String),
    /// A malformed or unexpected protocol message.
    Protocol(String),
    /// The peer disconnected or the channel is closed.
    Disconnected,
    /// A blocking call exceeded its deadline.
    Timeout(String),
    /// The server shed the request before admitting it (per-client
    /// in-flight cap reached). Safe to retry after backoff.
    Overloaded,
    /// The server rejected the request.
    Rejected(String),
    /// An invalid argument was supplied by the caller.
    InvalidArgument(String),
    /// A deterministic crash point armed by the test harness fired
    /// (`crate::crashpoint`). The instrumented path already performed the
    /// partial on-disk effect a real crash would leave; the process under
    /// test must treat this as fatal and recover by reopening.
    CrashPoint(&'static str),
}

impl DbError {
    /// Short machine-readable category tag, used in wire encoding and
    /// metrics labels.
    pub fn kind(&self) -> &'static str {
        match self {
            DbError::Io(_) => "io",
            DbError::Corrupt(_) => "corrupt",
            DbError::ObjectNotFound(_) => "object_not_found",
            DbError::ClassNotFound(_) => "class_not_found",
            DbError::PageFull => "page_full",
            DbError::BufferExhausted => "buffer_exhausted",
            DbError::LockTimeout { .. } => "lock_timeout",
            DbError::Deadlock { .. } => "deadlock",
            DbError::TxnNotActive(_) => "txn_not_active",
            DbError::SchemaViolation(_) => "schema_violation",
            DbError::Protocol(_) => "protocol",
            DbError::Disconnected => "disconnected",
            DbError::Timeout(_) => "timeout",
            DbError::Overloaded => "overloaded",
            DbError::Rejected(_) => "rejected",
            DbError::InvalidArgument(_) => "invalid_argument",
            DbError::CrashPoint(_) => "crash_point",
        }
    }

    /// Whether the operation may succeed if simply retried in a new
    /// transaction (lock timeouts, deadlocks, RPC timeouts, and — because
    /// the connection layer reconnects in the background — disconnects).
    ///
    /// See the module-level *Error taxonomy* section for the full
    /// retryable / fatal / degraded contract.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::LockTimeout { .. }
                | DbError::Deadlock { .. }
                | DbError::Timeout(_)
                | DbError::Disconnected
                | DbError::Overloaded
        )
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "i/o error: {e}"),
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::ObjectNotFound(oid) => write!(f, "object not found: {oid}"),
            DbError::ClassNotFound(name) => write!(f, "class not found: {name}"),
            DbError::PageFull => write!(f, "record does not fit in a page"),
            DbError::BufferExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            DbError::LockTimeout { oid } => write!(f, "lock request timed out on {oid}"),
            DbError::Deadlock { victim } => write!(f, "deadlock detected; victim {victim}"),
            DbError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            DbError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            DbError::Protocol(m) => write!(f, "protocol error: {m}"),
            DbError::Disconnected => write!(f, "peer disconnected"),
            DbError::Timeout(m) => write!(f, "timed out: {m}"),
            DbError::Overloaded => write!(f, "server overloaded; retry after backoff"),
            DbError::Rejected(m) => write!(f, "rejected: {m}"),
            DbError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DbError::CrashPoint(name) => write!(f, "simulated crash at '{name}'"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DbError::ObjectNotFound(Oid::new(9));
        assert_eq!(e.to_string(), "object not found: oid:9");
        assert_eq!(e.kind(), "object_not_found");
        assert!(!e.is_retryable());
    }

    #[test]
    fn retryable_classification() {
        assert!(DbError::Deadlock {
            victim: TxnId::new(1)
        }
        .is_retryable());
        assert!(DbError::LockTimeout { oid: Oid::new(1) }.is_retryable());
        // Disconnected is retryable: the supervisor reconnects in the
        // background, so a retry after backoff can succeed.
        assert!(DbError::Disconnected.is_retryable());
        // Overloaded is retryable: admission control shed the request
        // before it was admitted, so a backed-off retry has no partial
        // effects to worry about.
        assert!(DbError::Overloaded.is_retryable());
        assert_eq!(DbError::Overloaded.kind(), "overloaded");
        assert!(!DbError::PageFull.is_retryable());
        assert!(!DbError::Protocol("bad".into()).is_retryable());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: DbError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert_eq!(e.kind(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }
}
