//! Lightweight metrics: counters and latency recorders.
//!
//! The paper's evaluation (§ 4.3) is phrased in terms of *message counts*
//! (three messages on the post-commit refresh path, one with eager
//! shipping), *overheads* (server lock handling, client refresh cost) and
//! *latency* (1–2 s update propagation). These primitives let every
//! subsystem expose exactly those quantities to the experiment harness
//! without heavyweight dependencies.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A shareable depth gauge: current value plus high-water mark.
///
/// Used for queue depths on the notification path, where the question is
/// both "how deep is it now" and "how deep did it ever get" (the latter
/// is what bounds memory claims in the overload experiments).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cur: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one to the current depth, updating the high-water mark.
    pub fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::Relaxed) + 1;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtract one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .cur
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Set the current depth outright, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.cur.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current depth.
    pub fn get(&self) -> u64 {
        self.cur.load(Ordering::Relaxed)
    }

    /// Highest depth ever observed.
    pub fn high_water(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Restart the high-water mark from the current depth.
    ///
    /// Multi-phase experiments call this at phase boundaries so a
    /// warm-up phase's depth is not attributed to the measured phase.
    pub fn reset_high_water(&self) {
        self.max
            .store(self.cur.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Default reservoir capacity: enough for stable tail percentiles at
/// the harness's sample rates, small enough that a recorder never costs
/// more than ~64 KiB however long the run.
pub const RESERVOIR_CAP: usize = 8192;

/// Fixed default seed for the reservoir's PRNG. Deterministic on
/// purpose: two runs feeding identical sample streams retain identical
/// reservoirs, which keeps experiment output reproducible and lets
/// tests pin percentile results.
const RESERVOIR_SEED: u64 = 0x1996_0526; // the paper's conference year

/// Bounded sample store: Vitter's Algorithm R over a seeded inline
/// PRNG (splitmix64 — the workspace carries no runtime `rand`).
#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total samples ever offered (`samples` keeps at most `cap`).
    seen: u64,
    cap: usize,
    rng: u64,
}

impl Reservoir {
    fn new(cap: usize, seed: u64) -> Self {
        Self {
            samples: Vec::new(),
            seen: 0,
            cap: cap.max(1),
            rng: seed,
        }
    }

    /// splitmix64 step: small, fast, and plenty uniform for sampling.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn offer(&mut self, sample: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(sample);
            return;
        }
        // Algorithm R: replace a random slot with probability cap/seen,
        // so every sample seen so far is retained equiprobably.
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.cap {
            self.samples[j as usize] = sample;
        }
    }
}

/// Records latency samples and reports percentiles.
///
/// Samples are nanoseconds held in a **capped deterministic reservoir**
/// ([`RESERVOIR_CAP`] by default): recording is `O(1)` behind a mutex
/// and memory stays bounded however long the run, so a recorder can sit
/// on a hot path for hours without leaking. Replacement uses a seeded
/// inline PRNG — identical input streams always retain identical
/// samples. Reporting sorts a snapshot of the retained reservoir;
/// [`LatencySummary::count`] still reports the *total* recorded count.
#[derive(Clone, Debug)]
pub struct LatencyRecorder {
    inner: Arc<Mutex<Reservoir>>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Create an empty recorder with the default cap and seed.
    pub fn new() -> Self {
        Self::with_capacity(RESERVOIR_CAP)
    }

    /// Create an empty recorder retaining at most `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_seed(cap, RESERVOIR_SEED)
    }

    /// Create an empty recorder with an explicit reservoir seed (tests
    /// pinning determinism).
    pub fn with_capacity_and_seed(cap: usize, seed: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Reservoir::new(cap, seed))),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.inner.lock().offer(d.as_nanos() as u64);
    }

    /// Time a closure and record its duration, returning its output.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Total number of samples ever recorded (not capped).
    pub fn len(&self) -> usize {
        self.inner.lock().seen as usize
    }

    /// Number of samples currently retained (≤ the reservoir cap).
    pub fn retained(&self) -> usize {
        self.inner.lock().samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all samples and restart the total count (the PRNG state
    /// is deliberately left as-is; determinism is per recorder
    /// instance, not per clear).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.samples.clear();
        inner.seen = 0;
    }

    /// Copy of the retained samples in nanoseconds.
    pub fn samples(&self) -> Vec<u64> {
        self.inner.lock().samples.clone()
    }

    /// Absorb `other`'s retained samples (used to aggregate per-user
    /// reports). Merged samples pass through this recorder's reservoir,
    /// so the cap holds and the result is deterministic for a given
    /// merge order.
    pub fn merge_from(&self, other: &LatencyRecorder) {
        let incoming = other.samples();
        let mut inner = self.inner.lock();
        for s in incoming {
            inner.offer(s);
        }
    }

    /// Summarize the recorded samples. Returns `None` if empty.
    ///
    /// Percentiles use the **nearest-rank** definition: the p-th
    /// percentile of `n` sorted samples is the `ceil(p · n)`-th one, so
    /// p95 of 10 samples is the 10th (largest), never the 9th.
    pub fn summary(&self) -> Option<LatencySummary> {
        let (mut v, seen) = {
            let inner = self.inner.lock();
            (inner.samples.clone(), inner.seen)
        };
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        let pick = |p: f64| -> Duration {
            let rank = (p * v.len() as f64).ceil() as usize;
            Duration::from_nanos(v[rank.clamp(1, v.len()) - 1])
        };
        let sum: u64 = v.iter().sum();
        Some(LatencySummary {
            count: seen as usize,
            min: Duration::from_nanos(v[0]),
            max: Duration::from_nanos(*v.last().unwrap()),
            mean: Duration::from_nanos(sum / v.len() as u64),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

/// Percentile summary produced by [`LatencyRecorder::summary`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl LatencySummary {
    /// Render as `p50/p95/p99` in milliseconds with two decimals.
    pub fn fmt_ms(&self) -> String {
        format!(
            "{:.2}/{:.2}/{:.2}",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3
        )
    }
}

/// Counters for the connection-supervision / session-recovery path.
///
/// Shared (via `Clone`) between the connection supervisor, the resume
/// handshake, the DLC resync pass, and the display degradation logic, so
/// the experiment harness can report recovery behaviour alongside the
/// paper's message counts.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Reconnect attempts started (successful or not).
    pub reconnect_attempts: Counter,
    /// Reconnects that produced a live channel again.
    pub reconnects_ok: Counter,
    /// Sessions resumed with their prior identity (server accepted the
    /// resume token).
    pub sessions_resumed: Counter,
    /// Objects refreshed by post-reconnect resync (stale-list invalidation
    /// plus display-lock replay).
    pub resync_objects: Counter,
    /// Display objects marked stale while degraded.
    pub stale_marks: Counter,
    /// Reconnects that converged by replaying the update-log suffix past
    /// the client's cursor instead of a full resync.
    pub replay_catchups: Counter,
    /// Reconnects that fell back to full resync because the cursor had
    /// been truncated out of the DLM update log.
    pub replay_truncations: Counter,
    /// Resume attempts shed by the server's reconnect admission gate
    /// (retryable `Overloaded`; does not consume reconnect attempts).
    pub overload_sheds: Counter,
    /// Replay catch-ups that crossed a server/agent **restart**: the
    /// in-memory session died with the old process, but the durable
    /// update log (DESIGN.md § 14) still covered the client's cursor
    /// under the same log incarnation. Subset of `replay_catchups`.
    pub cross_restart_replays: Counter,
}

impl RecoveryStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("reconnect_attempts", self.reconnect_attempts.get()),
            ("reconnects_ok", self.reconnects_ok.get()),
            ("sessions_resumed", self.sessions_resumed.get()),
            ("resync_objects", self.resync_objects.get()),
            ("stale_marks", self.stale_marks.get()),
            ("replay_catchups", self.replay_catchups.get()),
            ("replay_truncations", self.replay_truncations.get()),
            ("overload_sheds", self.overload_sheds.get()),
            ("cross_restart_replays", self.cross_restart_replays.get()),
        ]
    }
}

/// Counters for the DLM's bounded replayable update log (DESIGN.md § 13).
///
/// Shared (via `Clone`) between the log ring, the replay-serving path,
/// and the outboxes that are restored from replay.
#[derive(Clone, Debug, Default)]
pub struct UpdateLogStats {
    /// Entries appended (one per committed notification batch).
    pub appended: Counter,
    /// Entries evicted by the count or byte cap.
    pub evicted: Counter,
    /// Replay requests served from the log (cursor still retained).
    pub replays_served: Counter,
    /// Individual events streamed to clients by replay (post interest
    /// filtering, so a replayed entry a client never watched counts 0).
    pub replayed_events: Counter,
    /// Replay requests that could not be served because the cursor was
    /// truncated out of the log (each produces one `ResyncRequired`).
    pub truncated_replays: Counter,
    /// Current retained entries / high-water.
    pub log_entries: Gauge,
    /// Current retained estimated bytes / high-water.
    pub log_bytes: Gauge,
}

impl UpdateLogStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("appended", self.appended.get()),
            ("evicted", self.evicted.get()),
            ("replays_served", self.replays_served.get()),
            ("replayed_events", self.replayed_events.get()),
            ("truncated_replays", self.truncated_replays.get()),
            ("log_entries", self.log_entries.get()),
            ("log_entries_high_water", self.log_entries.high_water()),
            ("log_bytes", self.log_bytes.get()),
            ("log_bytes_high_water", self.log_bytes.high_water()),
        ]
    }
}

/// Counters for the durable spill of the update log (DESIGN.md § 14).
///
/// Shared (via `Clone`) between the segment log, the update-log ring
/// that spills into it, and the server's startup recovery scan.
#[derive(Clone, Debug, Default)]
pub struct SegLogStats {
    /// Batch records appended to the durable log.
    pub records_appended: Counter,
    /// Cursor-frontier records appended to the durable log.
    pub frontiers_appended: Counter,
    /// Explicit fsyncs of the active segment (every `sync_every`
    /// appends, plus rotation and shutdown).
    pub syncs: Counter,
    /// Segment files rotated (sealed and replaced by a fresh one).
    pub rotations: Counter,
    /// Whole segments deleted by the total-bytes retention budget.
    pub segments_retired: Counter,
    /// Batch records recovered by the startup scan.
    pub recovered_records: Counter,
    /// Cursor frontiers recovered by the startup scan.
    pub recovered_frontiers: Counter,
    /// Torn or corrupt tails truncated during recovery (a clean
    /// shutdown recovers with zero of these).
    pub torn_tails_truncated: Counter,
    /// Current durable bytes across all retained segments / high-water.
    pub durable_bytes: Gauge,
    /// Current retained segment files / high-water.
    pub segments: Gauge,
}

impl SegLogStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("records_appended", self.records_appended.get()),
            ("frontiers_appended", self.frontiers_appended.get()),
            ("syncs", self.syncs.get()),
            ("rotations", self.rotations.get()),
            ("segments_retired", self.segments_retired.get()),
            ("recovered_records", self.recovered_records.get()),
            ("recovered_frontiers", self.recovered_frontiers.get()),
            ("torn_tails_truncated", self.torn_tails_truncated.get()),
            ("durable_bytes", self.durable_bytes.get()),
            ("durable_bytes_high_water", self.durable_bytes.high_water()),
            ("segments", self.segments.get()),
            ("segments_high_water", self.segments.high_water()),
        ]
    }
}

/// Counters for the overload-protection layer (DESIGN.md § 9).
///
/// Shared (via `Clone`) between the per-client outboxes, the server
/// session layer's admission control, and the DLC, so the experiment
/// harness can report backpressure behaviour under storm load.
#[derive(Clone, Debug, Default)]
pub struct OverloadStats {
    /// Events accepted into an outbox queue.
    pub enqueued: Counter,
    /// `Updated` events replaced in place by a newer one for the same
    /// OID (latest-state-wins coalescing).
    pub coalesced: Counter,
    /// `Marked`/`Resolved` pairs for the same (OID, txn) that cancelled
    /// out while still queued.
    pub cancelled_pairs: Counter,
    /// High-water sweeps: queue replaced by one `ResyncRequired`.
    pub overflows: Counter,
    /// `ResyncRequired` markers actually enqueued (≤ overflows, since
    /// resync-only mode folds repeats into the pending marker).
    pub resyncs_sent: Counter,
    /// Clients demoted to resync-only (lagging) mode.
    pub lagging_transitions: Counter,
    /// Requests shed by admission control with `Overloaded`.
    pub sheds: Counter,
    /// Resume handshakes shed by the reconnect admission gate (bounds a
    /// mass-reconnect storm; clients back off with jitter and retry).
    pub resume_sheds: Counter,
    /// Retries performed by clients after an `Overloaded` shed.
    pub overload_retries: Counter,
    /// Multi-event `Batch` frames sent by outbox writers (each replaces
    /// what would otherwise be several wire frames).
    pub batches_sent: Counter,
    /// Encoded bytes of notification traffic pushed toward clients
    /// (counted at the transport sink, after coalescing and batching).
    pub notify_bytes: Counter,
    /// Depth of the deepest outbox / subscriber queue (current and
    /// high-water): the memory-bound evidence.
    pub queue_depth: Gauge,
}

impl OverloadStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("enqueued", self.enqueued.get()),
            ("coalesced", self.coalesced.get()),
            ("cancelled_pairs", self.cancelled_pairs.get()),
            ("overflows", self.overflows.get()),
            ("resyncs_sent", self.resyncs_sent.get()),
            ("lagging_transitions", self.lagging_transitions.get()),
            ("sheds", self.sheds.get()),
            ("resume_sheds", self.resume_sheds.get()),
            ("overload_retries", self.overload_retries.get()),
            ("batches_sent", self.batches_sent.get()),
            ("notify_bytes", self.notify_bytes.get()),
            ("queue_depth", self.queue_depth.get()),
            ("queue_depth_high_water", self.queue_depth.high_water()),
        ]
    }
}

/// A named bundle of counters shared by a subsystem.
///
/// Keys are static strings so lookups are cheap and typo-resistant at the
/// call site (each subsystem declares constants for its metric names).
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    inner: Arc<Mutex<Vec<(&'static str, Counter)>>>,
}

impl MetricSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the counter registered under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some((_, c)) = inner.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.push((name, c.clone()));
        c
    }

    /// Snapshot of all counters as `(name, value)` pairs, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for (_, c) in self.inner.lock().iter() {
            c.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_shared_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 3);
        g.set(10);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 10);
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn overload_stats_snapshot() {
        let s = OverloadStats::new();
        s.enqueued.add(5);
        s.overflows.inc();
        s.queue_depth.set(7);
        let snap = s.snapshot();
        assert!(snap.contains(&("enqueued", 5)));
        assert!(snap.contains(&("overflows", 1)));
        assert!(snap.contains(&("queue_depth_high_water", 7)));
    }

    #[test]
    fn latency_summary_percentiles() {
        let r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        let s = r.summary().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(100));
        // Nearest rank: p50 of 100 samples is the ceil(0.5*100)=50th.
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
    }

    #[test]
    fn nearest_rank_small_sample_counts() {
        // The old `((n-1)*p).round()` picker returned the 9th of 10
        // samples for p95; nearest rank must return the 10th.
        let r = LatencyRecorder::new();
        for ms in 1..=10u64 {
            r.record(Duration::from_millis(ms));
        }
        let s = r.summary().unwrap();
        assert_eq!(s.p50, Duration::from_millis(5));
        assert_eq!(s.p95, Duration::from_millis(10));
        assert_eq!(s.p99, Duration::from_millis(10));
        // A single sample is every percentile.
        let one = LatencyRecorder::new();
        one.record(Duration::from_millis(7));
        let s = one.summary().unwrap();
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p95, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
    }

    #[test]
    fn reservoir_bounds_memory() {
        // Regression for the unbounded-Vec leak: a multi-hour run's
        // worth of samples must not grow the recorder past its cap.
        let r = LatencyRecorder::with_capacity(64);
        for i in 0..10_000u64 {
            r.record(Duration::from_nanos(i));
        }
        assert_eq!(r.len(), 10_000);
        assert_eq!(r.retained(), 64);
        assert_eq!(r.samples().len(), 64);
        let s = r.summary().unwrap();
        assert_eq!(s.count, 10_000);
        assert!(s.max <= Duration::from_nanos(9_999));
    }

    #[test]
    fn reservoir_is_deterministic_under_pinned_seed() {
        let a = LatencyRecorder::with_capacity_and_seed(32, 42);
        let b = LatencyRecorder::with_capacity_and_seed(32, 42);
        for i in 0..5_000u64 {
            a.record(Duration::from_nanos(i * 3));
            b.record(Duration::from_nanos(i * 3));
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.summary(), b.summary());
        // A different seed retains a different subset.
        let c = LatencyRecorder::with_capacity_and_seed(32, 43);
        for i in 0..5_000u64 {
            c.record(Duration::from_nanos(i * 3));
        }
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn merge_respects_cap_and_stays_deterministic() {
        let make_half = |seed: u64, base: u64| {
            let r = LatencyRecorder::with_capacity_and_seed(16, seed);
            for i in 0..1_000u64 {
                r.record(Duration::from_nanos(base + i));
            }
            r
        };
        let merge = || {
            let total = LatencyRecorder::with_capacity_and_seed(16, 7);
            total.merge_from(&make_half(1, 0));
            total.merge_from(&make_half(2, 1_000_000));
            total
        };
        let x = merge();
        let y = merge();
        assert_eq!(x.retained(), 16);
        assert_eq!(x.len(), 32); // 16 retained samples absorbed from each half
        assert_eq!(x.samples(), y.samples());
    }

    #[test]
    fn gauge_reset_high_water() {
        let g = Gauge::new();
        g.set(9); // warm-up depth
        g.set(2);
        assert_eq!(g.high_water(), 9);
        g.reset_high_water(); // phase boundary
        assert_eq!(g.high_water(), 2); // restarts from the current depth
        g.set(5);
        assert_eq!(g.high_water(), 5);
    }

    #[test]
    fn latency_empty_is_none() {
        let r = LatencyRecorder::new();
        assert!(r.summary().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn latency_time_closure() {
        let r = LatencyRecorder::new();
        let v = r.time(|| 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn metric_set_dedup_and_snapshot() {
        let m = MetricSet::new();
        m.counter("msgs").inc();
        m.counter("msgs").inc();
        m.counter("acks").add(3);
        let snap = m.snapshot();
        assert_eq!(snap, vec![("msgs", 2), ("acks", 3)]);
        m.reset();
        assert_eq!(m.counter("msgs").get(), 0);
    }

    #[test]
    fn summary_format() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        let s = r.summary().unwrap();
        assert_eq!(s.fmt_ms(), "10.00/10.00/10.00");
    }
}
