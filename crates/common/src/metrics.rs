//! Lightweight metrics: counters and latency recorders.
//!
//! The paper's evaluation (§ 4.3) is phrased in terms of *message counts*
//! (three messages on the post-commit refresh path, one with eager
//! shipping), *overheads* (server lock handling, client refresh cost) and
//! *latency* (1–2 s update propagation). These primitives let every
//! subsystem expose exactly those quantities to the experiment harness
//! without heavyweight dependencies.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A shareable depth gauge: current value plus high-water mark.
///
/// Used for queue depths on the notification path, where the question is
/// both "how deep is it now" and "how deep did it ever get" (the latter
/// is what bounds memory claims in the overload experiments).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cur: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one to the current depth, updating the high-water mark.
    pub fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::Relaxed) + 1;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtract one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .cur
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Set the current depth outright, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.cur.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current depth.
    pub fn get(&self) -> u64 {
        self.cur.load(Ordering::Relaxed)
    }

    /// Highest depth ever observed.
    pub fn high_water(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Records latency samples and reports percentiles.
///
/// Samples are stored as nanoseconds. Recording is `O(1)` amortized behind
/// a mutex; reporting sorts a snapshot. Suitable for the harness's tens of
/// thousands of samples per run.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Arc<Mutex<Vec<u64>>>,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.samples.lock().push(d.as_nanos() as u64);
    }

    /// Time a closure and record its duration, returning its output.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all samples.
    pub fn clear(&self) {
        self.samples.lock().clear();
    }

    /// Copy of the raw samples in nanoseconds.
    pub fn samples(&self) -> Vec<u64> {
        self.samples.lock().clone()
    }

    /// Absorb every sample of `other` (used to aggregate per-user
    /// reports).
    pub fn merge_from(&self, other: &LatencyRecorder) {
        let incoming = other.samples();
        self.samples.lock().extend(incoming);
    }

    /// Summarize the recorded samples. Returns `None` if empty.
    pub fn summary(&self) -> Option<LatencySummary> {
        let mut v = self.samples.lock().clone();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        let pick = |p: f64| -> Duration {
            let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_nanos(v[idx])
        };
        let sum: u64 = v.iter().sum();
        Some(LatencySummary {
            count: v.len(),
            min: Duration::from_nanos(v[0]),
            max: Duration::from_nanos(*v.last().unwrap()),
            mean: Duration::from_nanos(sum / v.len() as u64),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

/// Percentile summary produced by [`LatencyRecorder::summary`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl LatencySummary {
    /// Render as `p50/p95/p99` in milliseconds with two decimals.
    pub fn fmt_ms(&self) -> String {
        format!(
            "{:.2}/{:.2}/{:.2}",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3
        )
    }
}

/// Counters for the connection-supervision / session-recovery path.
///
/// Shared (via `Clone`) between the connection supervisor, the resume
/// handshake, the DLC resync pass, and the display degradation logic, so
/// the experiment harness can report recovery behaviour alongside the
/// paper's message counts.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Reconnect attempts started (successful or not).
    pub reconnect_attempts: Counter,
    /// Reconnects that produced a live channel again.
    pub reconnects_ok: Counter,
    /// Sessions resumed with their prior identity (server accepted the
    /// resume token).
    pub sessions_resumed: Counter,
    /// Objects refreshed by post-reconnect resync (stale-list invalidation
    /// plus display-lock replay).
    pub resync_objects: Counter,
    /// Display objects marked stale while degraded.
    pub stale_marks: Counter,
}

impl RecoveryStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("reconnect_attempts", self.reconnect_attempts.get()),
            ("reconnects_ok", self.reconnects_ok.get()),
            ("sessions_resumed", self.sessions_resumed.get()),
            ("resync_objects", self.resync_objects.get()),
            ("stale_marks", self.stale_marks.get()),
        ]
    }
}

/// Counters for the overload-protection layer (DESIGN.md § 9).
///
/// Shared (via `Clone`) between the per-client outboxes, the server
/// session layer's admission control, and the DLC, so the experiment
/// harness can report backpressure behaviour under storm load.
#[derive(Clone, Debug, Default)]
pub struct OverloadStats {
    /// Events accepted into an outbox queue.
    pub enqueued: Counter,
    /// `Updated` events replaced in place by a newer one for the same
    /// OID (latest-state-wins coalescing).
    pub coalesced: Counter,
    /// `Marked`/`Resolved` pairs for the same (OID, txn) that cancelled
    /// out while still queued.
    pub cancelled_pairs: Counter,
    /// High-water sweeps: queue replaced by one `ResyncRequired`.
    pub overflows: Counter,
    /// `ResyncRequired` markers actually enqueued (≤ overflows, since
    /// resync-only mode folds repeats into the pending marker).
    pub resyncs_sent: Counter,
    /// Clients demoted to resync-only (lagging) mode.
    pub lagging_transitions: Counter,
    /// Requests shed by admission control with `Overloaded`.
    pub sheds: Counter,
    /// Retries performed by clients after an `Overloaded` shed.
    pub overload_retries: Counter,
    /// Multi-event `Batch` frames sent by outbox writers (each replaces
    /// what would otherwise be several wire frames).
    pub batches_sent: Counter,
    /// Encoded bytes of notification traffic pushed toward clients
    /// (counted at the transport sink, after coalescing and batching).
    pub notify_bytes: Counter,
    /// Depth of the deepest outbox / subscriber queue (current and
    /// high-water): the memory-bound evidence.
    pub queue_depth: Gauge,
}

impl OverloadStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as `(name, value)` pairs for reports.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("enqueued", self.enqueued.get()),
            ("coalesced", self.coalesced.get()),
            ("cancelled_pairs", self.cancelled_pairs.get()),
            ("overflows", self.overflows.get()),
            ("resyncs_sent", self.resyncs_sent.get()),
            ("lagging_transitions", self.lagging_transitions.get()),
            ("sheds", self.sheds.get()),
            ("overload_retries", self.overload_retries.get()),
            ("batches_sent", self.batches_sent.get()),
            ("notify_bytes", self.notify_bytes.get()),
            ("queue_depth", self.queue_depth.get()),
            ("queue_depth_high_water", self.queue_depth.high_water()),
        ]
    }
}

/// A named bundle of counters shared by a subsystem.
///
/// Keys are static strings so lookups are cheap and typo-resistant at the
/// call site (each subsystem declares constants for its metric names).
#[derive(Clone, Debug, Default)]
pub struct MetricSet {
    inner: Arc<Mutex<Vec<(&'static str, Counter)>>>,
}

impl MetricSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the counter registered under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some((_, c)) = inner.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.push((name, c.clone()));
        c
    }

    /// Snapshot of all counters as `(name, value)` pairs, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for (_, c) in self.inner.lock().iter() {
            c.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_shared_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 3);
        g.set(10);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 10);
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn overload_stats_snapshot() {
        let s = OverloadStats::new();
        s.enqueued.add(5);
        s.overflows.inc();
        s.queue_depth.set(7);
        let snap = s.snapshot();
        assert!(snap.contains(&("enqueued", 5)));
        assert!(snap.contains(&("overflows", 1)));
        assert!(snap.contains(&("queue_depth_high_water", 7)));
    }

    #[test]
    fn latency_summary_percentiles() {
        let r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        let s = r.summary().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(100));
        // p50 of 1..=100 with rounding: index round(99*0.5)=50 => 51ms
        assert_eq!(s.p50, Duration::from_millis(51));
        assert_eq!(s.p99, Duration::from_millis(99));
    }

    #[test]
    fn latency_empty_is_none() {
        let r = LatencyRecorder::new();
        assert!(r.summary().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn latency_time_closure() {
        let r = LatencyRecorder::new();
        let v = r.time(|| 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn metric_set_dedup_and_snapshot() {
        let m = MetricSet::new();
        m.counter("msgs").inc();
        m.counter("msgs").inc();
        m.counter("acks").add(3);
        let snap = m.snapshot();
        assert_eq!(snap, vec![("msgs", 2), ("acks", 3)]);
        m.reset();
        assert_eq!(m.counter("msgs").get(), 0);
    }

    #[test]
    fn summary_format() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        let s = r.summary().unwrap();
        assert_eq!(s.fmt_ms(), "10.00/10.00/10.00");
    }
}
