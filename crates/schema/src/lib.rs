//! Object-oriented schema layer.
//!
//! The paper's central design argument (§ 2.1) is that the **database
//! schema must stay orthogonal to user-interface concerns**: persistent
//! classes model the real world (a `Link` has `Utilization`), while GUI
//! attributes (screen coordinates, colors, widths) live in external
//! *display classes* (built by the `displaydb-display` crate **on top of**
//! this one, never inside it).
//!
//! This crate provides the persistent side:
//!
//! * [`types`] — the [`types::Value`] algebra and attribute types,
//! * [`class`] — class definitions with single inheritance,
//! * [`catalog`] — the schema catalog (name/id resolution, attribute
//!   layout, subclass tests),
//! * [`object`] — typed objects ([`object::DbObject`]) with validation and
//!   a compact wire/disk codec,
//! * [`projection`] — per-display attribute interest descriptors
//!   ([`projection::Projection`]) driving delta notifications.

pub mod catalog;
pub mod class;
pub mod object;
pub mod projection;
pub mod types;

pub use catalog::Catalog;
pub use class::{AttrDef, ClassDef};
pub use object::DbObject;
pub use projection::{diff_objects, Projection};
pub use types::{AttrType, Value};
