//! Attribute projections: which attributes of a class a display consumes.
//!
//! The paper's display classes (§ 2.1) project a handful of GUI-relevant
//! attributes out of much larger database objects. A [`Projection`]
//! records that interest in schema terms — a class plus the layout
//! indices of the projected attributes — so the notification path can
//! ship attribute-level deltas instead of whole objects and suppress
//! notifications entirely when no projected attribute changed.
//!
//! The `version` field guards delta application on the client: a delta
//! carries the projection version it was computed against, and a client
//! whose registration has moved on (displays opened or closed since)
//! falls back to a full resync instead of patching against a stale
//! attribute set.

use crate::catalog::Catalog;
use crate::object::DbObject;
use crate::types::Value;
use displaydb_common::{ClassId, DbResult};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// The projected attribute set of one class, as layout indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Projection {
    /// The class whose layout the indices refer to.
    pub class: ClassId,
    /// Projected attribute indices into the class layout, sorted and
    /// deduplicated. Empty means "no attribute is interesting" (every
    /// update is suppressed); full interest is expressed by *not*
    /// registering a projection at all.
    pub attrs: Vec<u16>,
    /// Registration version; deltas computed against an older version
    /// than the client's current registration force a resync.
    pub version: u32,
}

impl Projection {
    /// Build a projection from raw layout indices (sorted + deduped).
    pub fn new(class: ClassId, mut attrs: Vec<u16>, version: u32) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Self {
            class,
            attrs,
            version,
        }
    }

    /// Resolve attribute names against the catalog layout of `class`.
    pub fn from_names<'a>(
        catalog: &Catalog,
        class: ClassId,
        names: impl IntoIterator<Item = &'a str>,
        version: u32,
    ) -> DbResult<Self> {
        let mut attrs = Vec::new();
        for name in names {
            attrs.push(catalog.attr_index(class, name)? as u16);
        }
        Ok(Self::new(class, attrs, version))
    }

    /// Whether the projection covers layout index `attr`.
    pub fn covers(&self, attr: u16) -> bool {
        self.attrs.binary_search(&attr).is_ok()
    }

    /// Whether any of `changed` intersects the projected set.
    pub fn intersects(&self, changed: &[u16]) -> bool {
        changed.iter().any(|a| self.covers(*a))
    }

    /// Union another projection's attribute set into this one (same
    /// object watched by several displays with different projections).
    pub fn union_with(&mut self, other: &Projection) {
        self.attrs.extend_from_slice(&other.attrs);
        self.attrs.sort_unstable();
        self.attrs.dedup();
    }
}

impl Encode for Projection {
    fn encode(&self, w: &mut WireWriter) {
        self.class.encode(w);
        w.put_varint(self.version as u64);
        w.put_varint(self.attrs.len() as u64);
        for a in &self.attrs {
            w.put_varint(*a as u64);
        }
    }
}

impl Decode for Projection {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let class = ClassId::decode(r)?;
        let version = r.get_varint()? as u32;
        let n = r.get_varint()? as usize;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            attrs.push(r.get_varint()? as u16);
        }
        Ok(Self::new(class, attrs, version))
    }
}

/// Attribute-level diff between two states of the same object: the
/// layout indices whose values differ, with the new value. The server
/// computes this between the pre- and post-commit images to decide which
/// projected holders need a delta (and which need nothing at all).
pub fn diff_objects(old: &DbObject, new: &DbObject) -> Vec<(u16, Value)> {
    old.values
        .iter()
        .zip(new.values.iter())
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (_, b))| (i as u16, b.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;
    use crate::types::AttrType;

    fn catalog() -> (Catalog, ClassId) {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Link")
                .attr("Name", AttrType::Str)
                .attr("Utilization", AttrType::Float)
                .attr("Vendor", AttrType::Str),
        )
        .unwrap();
        let id = c.id_of("Link").unwrap();
        (c, id)
    }

    #[test]
    fn from_names_resolves_layout_indices() {
        let (c, link) = catalog();
        let p = Projection::from_names(&c, link, ["Utilization"], 1).unwrap();
        assert_eq!(p.attrs, vec![1]);
        assert!(p.covers(1));
        assert!(!p.covers(0));
        assert!(p.intersects(&[0, 1]));
        assert!(!p.intersects(&[0, 2]));
        assert!(Projection::from_names(&c, link, ["Nope"], 1).is_err());
    }

    #[test]
    fn new_sorts_and_dedups() {
        let p = Projection::new(ClassId::new(1), vec![3, 1, 3, 2], 0);
        assert_eq!(p.attrs, vec![1, 2, 3]);
    }

    #[test]
    fn union_merges_attr_sets() {
        let mut a = Projection::new(ClassId::new(1), vec![0, 2], 1);
        let b = Projection::new(ClassId::new(1), vec![1, 2], 2);
        a.union_with(&b);
        assert_eq!(a.attrs, vec![0, 1, 2]);
    }

    #[test]
    fn codec_roundtrip() {
        let p = Projection::new(ClassId::new(7), vec![0, 4, 9], 3);
        let back = Projection::decode_from_bytes(&p.encode_to_bytes()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn diff_reports_changed_indices_only() {
        let (c, _) = catalog();
        let old = DbObject::new_named(&c, "Link").unwrap();
        let mut new = old.clone();
        new.set(&c, "Utilization", 0.9).unwrap();
        new.set(&c, "Vendor", "acme").unwrap();
        let d = diff_objects(&old, &new);
        assert_eq!(
            d,
            vec![(1, Value::Float(0.9)), (2, Value::Str("acme".into()))]
        );
        assert!(diff_objects(&old, &old).is_empty());
    }
}
