//! Attribute types and runtime values.

use displaydb_common::{DbError, DbResult, Oid};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// Declared type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Raw bytes.
    Bytes,
    /// Reference to another object.
    Ref,
    /// Ordered list of object references (e.g. the links of a `Path`,
    /// paper § 3.1).
    RefList,
}

impl AttrType {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Bool => "bool",
            AttrType::Str => "str",
            AttrType::Bytes => "bytes",
            AttrType::Ref => "ref",
            AttrType::RefList => "reflist",
        }
    }

    /// A reasonable zero/empty default for the type.
    pub fn default_value(self) -> Value {
        match self {
            AttrType::Int => Value::Int(0),
            AttrType::Float => Value::Float(0.0),
            AttrType::Bool => Value::Bool(false),
            AttrType::Str => Value::Str(String::new()),
            AttrType::Bytes => Value::Bytes(Vec::new()),
            AttrType::Ref => Value::Ref(Oid::new(0)),
            AttrType::RefList => Value::RefList(Vec::new()),
        }
    }
}

/// A runtime attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Reference to another object (OID 0 = null reference).
    Ref(Oid),
    /// Ordered list of references.
    RefList(Vec<Oid>),
}

impl Value {
    /// The value's runtime type.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Bool(_) => AttrType::Bool,
            Value::Str(_) => AttrType::Str,
            Value::Bytes(_) => AttrType::Bytes,
            Value::Ref(_) => AttrType::Ref,
            Value::RefList(_) => AttrType::RefList,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(type_err("int", other)),
        }
    }

    /// Float accessor (also accepts Int, widening).
    pub fn as_float(&self) -> DbResult<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(type_err("float", other)),
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(type_err("bool", other)),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(type_err("str", other)),
        }
    }

    /// Bytes accessor.
    pub fn as_bytes(&self) -> DbResult<&[u8]> {
        match self {
            Value::Bytes(v) => Ok(v),
            other => Err(type_err("bytes", other)),
        }
    }

    /// Reference accessor.
    pub fn as_ref_oid(&self) -> DbResult<Oid> {
        match self {
            Value::Ref(v) => Ok(*v),
            other => Err(type_err("ref", other)),
        }
    }

    /// Reference-list accessor.
    pub fn as_ref_list(&self) -> DbResult<&[Oid]> {
        match self {
            Value::RefList(v) => Ok(v),
            other => Err(type_err("reflist", other)),
        }
    }

    /// Approximate in-memory footprint in bytes. Used by the cache-size
    /// experiments (paper § 4.3: display cache 3–5× smaller than the
    /// database cache).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) | Value::Ref(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 24 + s.len(),
            Value::Bytes(b) => 24 + b.len(),
            Value::RefList(l) => 24 + 8 * l.len(),
        }
    }
}

fn type_err(wanted: &str, got: &Value) -> DbError {
    DbError::SchemaViolation(format!(
        "expected {wanted}, found {}",
        got.attr_type().name()
    ))
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}
impl From<Vec<Oid>> for Value {
    fn from(v: Vec<Oid>) -> Self {
        Value::RefList(v)
    }
}

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_REF: u8 = 6;
const TAG_REFLIST: u8 = 7;

impl Encode for AttrType {
    fn encode(&self, w: &mut WireWriter) {
        let tag = match self {
            AttrType::Int => TAG_INT,
            AttrType::Float => TAG_FLOAT,
            AttrType::Bool => TAG_BOOL,
            AttrType::Str => TAG_STR,
            AttrType::Bytes => TAG_BYTES,
            AttrType::Ref => TAG_REF,
            AttrType::RefList => TAG_REFLIST,
        };
        w.put_u8(tag);
    }
}

impl Decode for AttrType {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            TAG_INT => AttrType::Int,
            TAG_FLOAT => AttrType::Float,
            TAG_BOOL => AttrType::Bool,
            TAG_STR => AttrType::Str,
            TAG_BYTES => AttrType::Bytes,
            TAG_REF => AttrType::Ref,
            TAG_REFLIST => AttrType::RefList,
            t => return Err(DbError::Corrupt(format!("unknown attr type tag {t}"))),
        })
    }
}

impl Encode for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::Int(v) => {
                w.put_u8(TAG_INT);
                w.put_varint_signed(*v);
            }
            Value::Float(v) => {
                w.put_u8(TAG_FLOAT);
                w.put_f64(*v);
            }
            Value::Bool(v) => {
                w.put_u8(TAG_BOOL);
                w.put_u8(u8::from(*v));
            }
            Value::Str(v) => {
                w.put_u8(TAG_STR);
                w.put_str(v);
            }
            Value::Bytes(v) => {
                w.put_u8(TAG_BYTES);
                w.put_bytes(v);
            }
            Value::Ref(v) => {
                w.put_u8(TAG_REF);
                v.encode(w);
            }
            Value::RefList(v) => {
                w.put_u8(TAG_REFLIST);
                v.encode(w);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            TAG_INT => Value::Int(r.get_varint_signed()?),
            TAG_FLOAT => Value::Float(r.get_f64()?),
            TAG_BOOL => Value::Bool(match r.get_u8()? {
                0 => false,
                1 => true,
                b => return Err(DbError::Corrupt(format!("invalid bool {b}"))),
            }),
            TAG_STR => Value::Str(r.get_str()?.to_string()),
            TAG_BYTES => Value::Bytes(r.get_bytes()?.to_vec()),
            TAG_REF => Value::Ref(Oid::decode(r)?),
            TAG_REFLIST => Value::RefList(Vec::<Oid>::decode(r)?),
            t => return Err(DbError::Corrupt(format!("unknown value tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accessors_enforce_types() {
        let v = Value::Int(5);
        assert_eq!(v.as_int().unwrap(), 5);
        assert_eq!(v.as_float().unwrap(), 5.0); // widening allowed
        assert!(v.as_str().is_err());
        assert!(v.as_bool().is_err());
        let s = Value::Str("x".into());
        assert_eq!(s.as_str().unwrap(), "x");
        assert!(s.as_int().is_err());
    }

    #[test]
    fn default_values_match_types() {
        for t in [
            AttrType::Int,
            AttrType::Float,
            AttrType::Bool,
            AttrType::Str,
            AttrType::Bytes,
            AttrType::Ref,
            AttrType::RefList,
        ] {
            assert_eq!(t.default_value().attr_type(), t);
        }
    }

    #[test]
    fn size_accounting_is_plausible() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert!(Value::Str("hello".into()).size_bytes() > 5);
        assert_eq!(
            Value::RefList(vec![Oid::new(1), Oid::new(2)]).size_bytes(),
            24 + 16
        );
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            any::<f64>()
                .prop_filter("NaN breaks PartialEq", |f| !f.is_nan())
                .prop_map(Value::Float),
            any::<bool>().prop_map(Value::Bool),
            ".{0,60}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..80).prop_map(Value::Bytes),
            any::<u64>().prop_map(|o| Value::Ref(Oid::new(o))),
            proptest::collection::vec(any::<u64>(), 0..20)
                .prop_map(|v| Value::RefList(v.into_iter().map(Oid::new).collect())),
        ]
    }

    proptest! {
        #[test]
        fn prop_value_roundtrip(v in arb_value()) {
            let bytes = v.encode_to_bytes();
            let back = Value::decode_from_bytes(&bytes).unwrap();
            prop_assert_eq!(v, back);
        }

        #[test]
        fn prop_decode_junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Value::decode_from_bytes(&bytes);
            let _ = AttrType::decode_from_bytes(&bytes);
        }
    }

    #[test]
    fn attr_type_roundtrip() {
        for t in [
            AttrType::Int,
            AttrType::Float,
            AttrType::Bool,
            AttrType::Str,
            AttrType::Bytes,
            AttrType::Ref,
            AttrType::RefList,
        ] {
            let bytes = t.encode_to_bytes();
            assert_eq!(AttrType::decode_from_bytes(&bytes).unwrap(), t);
        }
    }
}
