//! The schema catalog: class registration and layout resolution.
//!
//! A catalog is built once when a database is created, then shared
//! immutably (the paper argues the persistent schema should never need to
//! change to accommodate new user interfaces — § 2.1 "orthogonal design").
//! Clients receive the encoded catalog during their handshake so object
//! encodings can be interpreted locally.

use crate::class::{AttrDef, ClassBuilder, ClassDef};
use crate::types::Value;
use displaydb_common::{ClassId, DbError, DbResult};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};
use std::collections::HashMap;

/// All class definitions of one database.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    /// Per class: full attribute layout (inherited attributes first, in
    /// root-to-leaf declaration order).
    layouts: Vec<Vec<AttrDef>>,
    /// Per class: attribute name -> index into the layout.
    attr_index: Vec<HashMap<String, usize>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalog has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Define a class from a builder, validating names, parentage and
    /// defaults. Returns the new class id.
    pub fn define(&mut self, builder: ClassBuilder) -> DbResult<ClassId> {
        if builder.name.is_empty() {
            return Err(DbError::SchemaViolation(
                "class name must not be empty".into(),
            ));
        }
        if self.by_name.contains_key(&builder.name) {
            return Err(DbError::SchemaViolation(format!(
                "class {} already defined",
                builder.name
            )));
        }
        let parent = match &builder.parent {
            Some(p) => Some(
                self.id_of(p)
                    .ok_or_else(|| DbError::ClassNotFound(p.clone()))?,
            ),
            None => None,
        };
        // Layout = parent layout + own attrs; names must stay unique.
        let mut layout: Vec<AttrDef> = parent
            .map(|p| self.layouts[p.raw() as usize].clone())
            .unwrap_or_default();
        for attr in &builder.attrs {
            if attr.default.attr_type() != attr.ty {
                return Err(DbError::SchemaViolation(format!(
                    "attribute {}.{}: default type {} does not match declared {}",
                    builder.name,
                    attr.name,
                    attr.default.attr_type().name(),
                    attr.ty.name()
                )));
            }
            if layout.iter().any(|a| a.name == attr.name) {
                return Err(DbError::SchemaViolation(format!(
                    "attribute {} duplicated in class {} (possibly inherited)",
                    attr.name, builder.name
                )));
            }
            layout.push(attr.clone());
        }
        let id = ClassId::new(self.classes.len() as u32);
        let index = layout
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        self.by_name.insert(builder.name.clone(), id);
        self.classes.push(ClassDef {
            id,
            name: builder.name,
            parent,
            attrs: builder.attrs,
        });
        self.layouts.push(layout);
        self.attr_index.push(index);
        Ok(id)
    }

    /// Class definition by id.
    pub fn get(&self, id: ClassId) -> DbResult<&ClassDef> {
        self.classes
            .get(id.raw() as usize)
            .ok_or_else(|| DbError::ClassNotFound(format!("{id}")))
    }

    /// Class id by name.
    pub fn id_of(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Class definition by name.
    pub fn by_name(&self, name: &str) -> DbResult<&ClassDef> {
        let id = self
            .id_of(name)
            .ok_or_else(|| DbError::ClassNotFound(name.to_string()))?;
        self.get(id)
    }

    /// Full attribute layout (inherited first).
    pub fn layout(&self, id: ClassId) -> DbResult<&[AttrDef]> {
        self.layouts
            .get(id.raw() as usize)
            .map(|v| v.as_slice())
            .ok_or_else(|| DbError::ClassNotFound(format!("{id}")))
    }

    /// Index of `attr` within the class layout.
    pub fn attr_index(&self, id: ClassId, attr: &str) -> DbResult<usize> {
        self.attr_index
            .get(id.raw() as usize)
            .and_then(|m| m.get(attr).copied())
            .ok_or_else(|| DbError::SchemaViolation(format!("class {id} has no attribute {attr}")))
    }

    /// Default values for a new instance of the class.
    pub fn defaults(&self, id: ClassId) -> DbResult<Vec<Value>> {
        Ok(self.layout(id)?.iter().map(|a| a.default.clone()).collect())
    }

    /// Whether `sub` equals or transitively inherits from `base`.
    pub fn is_subclass_of(&self, sub: ClassId, base: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == base {
                return true;
            }
            cur = self
                .classes
                .get(c.raw() as usize)
                .and_then(|def| def.parent);
        }
        false
    }

    /// All classes that are `base` or inherit from it.
    pub fn family_of(&self, base: ClassId) -> Vec<ClassId> {
        self.classes
            .iter()
            .map(|c| c.id)
            .filter(|&c| self.is_subclass_of(c, base))
            .collect()
    }

    /// Iterate all class definitions.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }
}

impl Encode for Catalog {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.classes.len() as u64);
        for c in &self.classes {
            c.encode(w);
        }
    }
}

impl Decode for Catalog {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let n = r.get_varint()? as usize;
        let mut catalog = Catalog::new();
        for _ in 0..n {
            let def = ClassDef::decode(r)?;
            // Re-register through define() to rebuild layouts and validate.
            let builder = ClassBuilder {
                name: def.name.clone(),
                parent: match def.parent {
                    Some(p) => Some(catalog.get(p)?.name.clone()),
                    None => None,
                },
                attrs: def.attrs.clone(),
            };
            let id = catalog.define(builder)?;
            if id != def.id {
                return Err(DbError::Corrupt(format!(
                    "catalog class order corrupted: expected {}, got {id}",
                    def.id
                )));
            }
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrType;

    fn network_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("NetObject")
                .attr("Name", AttrType::Str)
                .attr_default("Status", AttrType::Str, "up"),
        )
        .unwrap();
        c.define(
            ClassBuilder::new("Link")
                .extends("NetObject")
                .attr("Utilization", AttrType::Float)
                .attr("Endpoints", AttrType::RefList),
        )
        .unwrap();
        c.define(
            ClassBuilder::new("TrunkLink")
                .extends("Link")
                .attr("Capacity", AttrType::Int),
        )
        .unwrap();
        c
    }

    #[test]
    fn define_and_lookup() {
        let c = network_catalog();
        assert_eq!(c.len(), 3);
        let link = c.by_name("Link").unwrap();
        assert_eq!(link.name, "Link");
        assert_eq!(c.id_of("Link"), Some(link.id));
        assert!(c.by_name("Nope").is_err());
    }

    #[test]
    fn layout_includes_inherited_in_order() {
        let c = network_catalog();
        let trunk = c.id_of("TrunkLink").unwrap();
        let names: Vec<&str> = c
            .layout(trunk)
            .unwrap()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["Name", "Status", "Utilization", "Endpoints", "Capacity"]
        );
        assert_eq!(c.attr_index(trunk, "Utilization").unwrap(), 2);
        assert!(c.attr_index(trunk, "Missing").is_err());
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut c = network_catalog();
        assert!(c.define(ClassBuilder::new("Link")).is_err());
    }

    #[test]
    fn duplicate_attr_rejected_across_inheritance() {
        let mut c = network_catalog();
        let r = c.define(
            ClassBuilder::new("BadLink")
                .extends("Link")
                .attr("Status", AttrType::Int),
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut c = Catalog::new();
        assert!(c
            .define(ClassBuilder::new("Orphan").extends("Ghost"))
            .is_err());
    }

    #[test]
    fn mismatched_default_rejected() {
        let mut c = Catalog::new();
        let r = c.define(ClassBuilder::new("Bad").attr_default("X", AttrType::Int, "string"));
        assert!(r.is_err());
    }

    #[test]
    fn subclass_relation() {
        let c = network_catalog();
        let base = c.id_of("NetObject").unwrap();
        let link = c.id_of("Link").unwrap();
        let trunk = c.id_of("TrunkLink").unwrap();
        assert!(c.is_subclass_of(trunk, base));
        assert!(c.is_subclass_of(trunk, link));
        assert!(c.is_subclass_of(link, link));
        assert!(!c.is_subclass_of(base, link));
        let fam = c.family_of(link);
        assert_eq!(fam.len(), 2);
    }

    #[test]
    fn defaults_follow_layout() {
        let c = network_catalog();
        let link = c.id_of("Link").unwrap();
        let d = c.defaults(link).unwrap();
        assert_eq!(d[1], Value::Str("up".into()));
        assert_eq!(d[2], Value::Float(0.0));
    }

    #[test]
    fn catalog_codec_roundtrip() {
        let c = network_catalog();
        let bytes = c.encode_to_bytes();
        let back = Catalog::decode_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        let trunk = back.id_of("TrunkLink").unwrap();
        assert_eq!(back.layout(trunk).unwrap().len(), 5);
        assert!(back.is_subclass_of(trunk, back.id_of("NetObject").unwrap()));
    }
}
