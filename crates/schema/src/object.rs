//! Typed persistent objects.
//!
//! A [`DbObject`] is one instance of a catalog class: an OID, a class id,
//! and one [`Value`] per attribute of the class layout. Its encoding
//! (`class id + values`) is what travels on the wire, sits in heap-file
//! records, and is measured by the cache-footprint experiments.

use crate::catalog::Catalog;
use crate::types::Value;
use displaydb_common::{ClassId, DbError, DbResult, Oid};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// One persistent object.
#[derive(Clone, Debug, PartialEq)]
pub struct DbObject {
    /// The object's identity (0 until assigned by the server).
    pub oid: Oid,
    /// The class whose layout `values` follows.
    pub class: ClassId,
    /// One value per attribute in the class layout order.
    pub values: Vec<Value>,
}

impl DbObject {
    /// Create an instance of `class` with all defaults.
    pub fn new(catalog: &Catalog, class: ClassId) -> DbResult<Self> {
        Ok(Self {
            oid: Oid::new(0),
            class,
            values: catalog.defaults(class)?,
        })
    }

    /// Create an instance of the class named `class_name` with defaults.
    pub fn new_named(catalog: &Catalog, class_name: &str) -> DbResult<Self> {
        let id = catalog
            .id_of(class_name)
            .ok_or_else(|| DbError::ClassNotFound(class_name.to_string()))?;
        Self::new(catalog, id)
    }

    /// Read an attribute by name.
    pub fn get(&self, catalog: &Catalog, attr: &str) -> DbResult<&Value> {
        let idx = catalog.attr_index(self.class, attr)?;
        self.values
            .get(idx)
            .ok_or_else(|| DbError::Corrupt(format!("object {} missing value {idx}", self.oid)))
    }

    /// Write an attribute by name, enforcing the declared type.
    pub fn set(&mut self, catalog: &Catalog, attr: &str, value: impl Into<Value>) -> DbResult<()> {
        let value = value.into();
        let idx = catalog.attr_index(self.class, attr)?;
        let expected = catalog.layout(self.class)?[idx].ty;
        if value.attr_type() != expected {
            return Err(DbError::SchemaViolation(format!(
                "attribute {attr}: expected {}, got {}",
                expected.name(),
                value.attr_type().name()
            )));
        }
        self.values[idx] = value;
        Ok(())
    }

    /// Builder-style [`DbObject::set`] for construction chains.
    pub fn with(
        mut self,
        catalog: &Catalog,
        attr: &str,
        value: impl Into<Value>,
    ) -> DbResult<Self> {
        self.set(catalog, attr, value)?;
        Ok(self)
    }

    /// Validate that the value vector matches the class layout exactly.
    pub fn validate(&self, catalog: &Catalog) -> DbResult<()> {
        let layout = catalog.layout(self.class)?;
        if layout.len() != self.values.len() {
            return Err(DbError::SchemaViolation(format!(
                "object {}: {} values for {} attributes",
                self.oid,
                self.values.len(),
                layout.len()
            )));
        }
        for (attr, value) in layout.iter().zip(&self.values) {
            if value.attr_type() != attr.ty {
                return Err(DbError::SchemaViolation(format!(
                    "object {}: attribute {} expects {}, holds {}",
                    self.oid,
                    attr.name,
                    attr.ty.name(),
                    value.attr_type().name()
                )));
            }
        }
        Ok(())
    }

    /// Approximate in-memory footprint: per-value sizes plus fixed
    /// object overhead. This is the quantity the § 4.3 size comparison
    /// (database cache vs display cache) reports.
    pub fn size_bytes(&self) -> usize {
        48 + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }
}

impl Encode for DbObject {
    fn encode(&self, w: &mut WireWriter) {
        self.oid.encode(w);
        self.class.encode(w);
        w.put_varint(self.values.len() as u64);
        for v in &self.values {
            v.encode(w);
        }
    }
}

impl Decode for DbObject {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let oid = Oid::decode(r)?;
        let class = ClassId::decode(r)?;
        let n = r.get_varint()? as usize;
        let mut values = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            values.push(Value::decode(r)?);
        }
        Ok(Self { oid, class, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;
    use crate::types::AttrType;
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Link")
                .attr("Name", AttrType::Str)
                .attr("Utilization", AttrType::Float)
                .attr("Endpoints", AttrType::RefList),
        )
        .unwrap();
        c
    }

    #[test]
    fn new_object_has_defaults() {
        let c = catalog();
        let o = DbObject::new_named(&c, "Link").unwrap();
        assert_eq!(o.get(&c, "Utilization").unwrap(), &Value::Float(0.0));
        o.validate(&c).unwrap();
    }

    #[test]
    fn set_enforces_types() {
        let c = catalog();
        let mut o = DbObject::new_named(&c, "Link").unwrap();
        o.set(&c, "Utilization", 0.75).unwrap();
        assert_eq!(o.get(&c, "Utilization").unwrap(), &Value::Float(0.75));
        assert!(o.set(&c, "Utilization", "high").is_err());
        assert!(o.set(&c, "Missing", 1.0).is_err());
    }

    #[test]
    fn builder_chain() {
        let c = catalog();
        let o = DbObject::new_named(&c, "Link")
            .unwrap()
            .with(&c, "Name", "link-1")
            .unwrap()
            .with(&c, "Utilization", 0.5)
            .unwrap();
        assert_eq!(o.get(&c, "Name").unwrap(), &Value::Str("link-1".into()));
    }

    #[test]
    fn validate_catches_corruption() {
        let c = catalog();
        let mut o = DbObject::new_named(&c, "Link").unwrap();
        o.values.pop();
        assert!(o.validate(&c).is_err());
        let mut o2 = DbObject::new_named(&c, "Link").unwrap();
        o2.values[1] = Value::Str("wrong".into());
        assert!(o2.validate(&c).is_err());
    }

    #[test]
    fn codec_roundtrip() {
        let c = catalog();
        let mut o = DbObject::new_named(&c, "Link").unwrap();
        o.oid = Oid::new(42);
        o.set(&c, "Name", "backbone").unwrap();
        o.set(&c, "Endpoints", vec![Oid::new(1), Oid::new(2)])
            .unwrap();
        let bytes = o.encode_to_bytes();
        let back = DbObject::decode_from_bytes(&bytes).unwrap();
        assert_eq!(back, o);
        back.validate(&c).unwrap();
    }

    #[test]
    fn size_grows_with_payload() {
        let c = catalog();
        let small = DbObject::new_named(&c, "Link").unwrap();
        let big = small
            .clone()
            .with(&c, "Name", "x".repeat(1000).as_str())
            .unwrap();
        assert!(big.size_bytes() > small.size_bytes() + 900);
    }

    proptest! {
        #[test]
        fn prop_object_roundtrip(name in ".{0,40}", util in any::<f64>().prop_filter("nan", |f| !f.is_nan()),
                                 eps in proptest::collection::vec(any::<u64>(), 0..10)) {
            let c = catalog();
            let mut o = DbObject::new_named(&c, "Link").unwrap();
            o.oid = Oid::new(7);
            o.set(&c, "Name", name.as_str()).unwrap();
            o.set(&c, "Utilization", util).unwrap();
            o.set(&c, "Endpoints", eps.into_iter().map(Oid::new).collect::<Vec<_>>()).unwrap();
            let back = DbObject::decode_from_bytes(&o.encode_to_bytes()).unwrap();
            prop_assert_eq!(back, o);
        }
    }
}
