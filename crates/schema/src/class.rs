//! Class and attribute definitions.

use crate::types::{AttrType, Value};
use displaydb_common::{ClassId, DbError, DbResult};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// One attribute of a class.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrDef {
    /// Attribute name, unique within the class (including inherited
    /// attributes).
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
    /// Value used when an object is created without this attribute.
    pub default: Value,
}

impl AttrDef {
    /// An attribute with the type's zero default.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self {
            name: name.into(),
            ty,
            default: ty.default_value(),
        }
    }

    /// An attribute with an explicit default.
    pub fn with_default(name: impl Into<String>, ty: AttrType, default: Value) -> DbResult<Self> {
        if default.attr_type() != ty {
            return Err(DbError::SchemaViolation(format!(
                "default of type {} does not match attribute type {}",
                default.attr_type().name(),
                ty.name()
            )));
        }
        Ok(Self {
            name: name.into(),
            ty,
            default,
        })
    }
}

/// A class in the database schema. Classes form a single-inheritance
/// hierarchy; an object of a subclass carries all inherited attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDef {
    /// Catalog-assigned identifier.
    pub id: ClassId,
    /// Unique class name.
    pub name: String,
    /// Parent class, if any.
    pub parent: Option<ClassId>,
    /// Attributes declared *by this class* (not inherited).
    pub attrs: Vec<AttrDef>,
}

impl ClassDef {
    /// Look up a declared (non-inherited) attribute by name.
    pub fn own_attr(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }
}

/// Builder used with [`crate::catalog::Catalog::define`].
#[derive(Clone, Debug, Default)]
pub struct ClassBuilder {
    pub(crate) name: String,
    pub(crate) parent: Option<String>,
    pub(crate) attrs: Vec<AttrDef>,
}

impl ClassBuilder {
    /// Start a class named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parent: None,
            attrs: Vec::new(),
        }
    }

    /// Inherit from `parent` (must already be defined in the catalog).
    pub fn extends(mut self, parent: impl Into<String>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Add an attribute with the type's default.
    pub fn attr(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attrs.push(AttrDef::new(name, ty));
        self
    }

    /// Add an attribute with an explicit default value.
    pub fn attr_default(
        mut self,
        name: impl Into<String>,
        ty: AttrType,
        default: impl Into<Value>,
    ) -> Self {
        // Type mismatch is caught at define() time.
        self.attrs.push(AttrDef {
            name: name.into(),
            ty,
            default: default.into(),
        });
        self
    }
}

impl Encode for AttrDef {
    fn encode(&self, w: &mut WireWriter) {
        self.name.encode(w);
        self.ty.encode(w);
        self.default.encode(w);
    }
}

impl Decode for AttrDef {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(Self {
            name: String::decode(r)?,
            ty: AttrType::decode(r)?,
            default: Value::decode(r)?,
        })
    }
}

impl Encode for ClassDef {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.name.encode(w);
        self.parent.encode(w);
        w.put_varint(self.attrs.len() as u64);
        for a in &self.attrs {
            a.encode(w);
        }
    }
}

impl Decode for ClassDef {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let id = ClassId::decode(r)?;
        let name = String::decode(r)?;
        let parent = Option::<ClassId>::decode(r)?;
        let n = r.get_varint()? as usize;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            attrs.push(AttrDef::decode(r)?);
        }
        Ok(Self {
            id,
            name,
            parent,
            attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_default_type_checked() {
        assert!(AttrDef::with_default("x", AttrType::Int, Value::Int(3)).is_ok());
        assert!(AttrDef::with_default("x", AttrType::Int, Value::Str("no".into())).is_err());
    }

    #[test]
    fn builder_accumulates() {
        let b = ClassBuilder::new("Link")
            .attr("Utilization", AttrType::Float)
            .attr_default("Status", AttrType::Str, "up");
        assert_eq!(b.name, "Link");
        assert_eq!(b.attrs.len(), 2);
        assert_eq!(b.attrs[1].default, Value::Str("up".into()));
    }

    #[test]
    fn classdef_codec_roundtrip() {
        let def = ClassDef {
            id: ClassId::new(3),
            name: "Link".into(),
            parent: Some(ClassId::new(1)),
            attrs: vec![
                AttrDef::new("Utilization", AttrType::Float),
                AttrDef::new("Endpoints", AttrType::RefList),
            ],
        };
        let bytes = def.encode_to_bytes();
        assert_eq!(ClassDef::decode_from_bytes(&bytes).unwrap(), def);
    }
}
