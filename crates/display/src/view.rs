//! A display (window): display objects over database objects, kept live
//! by display-lock notifications.
//!
//! Lifecycle (the paper's *display transaction*, § 2.3/4.2.2):
//!
//! 1. **Open** — the display registers with the client's DLC and gets an
//!    event queue.
//! 2. **Build** — [`Display::add_object`] reads the associated database
//!    objects, runs the display class derivation, pins the resulting
//!    display object in the display cache, and acquires display locks
//!    (deduplicated by the DLC).
//! 3. **Live** — [`Display::process_pending`] consumes notifications:
//!    `Updated` re-derives affected display objects (reading eagerly
//!    shipped state or re-fetching from the server), `Marked`/`Resolved`
//!    toggle the early-notify "being updated" flag.
//! 4. **Close** — dropping the display releases every display lock and
//!    unpins its display objects.
//!
//! ## Degraded mode
//!
//! When the client's supervisor reports the connection down
//! ([`DlcEvent::Degraded`]), the display keeps serving its pinned
//! display objects — the GUI does not go blank — but marks each one
//! [`stale`](DisplayObject::is_stale) so the draw function can render
//! the uncertainty. After a successful reconnect the supervisor resyncs
//! objects the server reported changed (ordinary `Updated` refreshes,
//! which clear their stale marks), then broadcasts
//! [`DlcEvent::Restored`], which clears the remaining marks: those
//! objects were proved current by the session-resume handshake.

use crate::cache::DisplayCache;
use crate::object::{DisplayObject, DoId};
use crate::schema::DisplayClassDef;
use displaydb_client::{DbClient, DlcEvent};
use displaydb_common::metrics::{Counter, LatencyRecorder};
use displaydb_common::{DbError, DbResult, DisplayId, Oid};
use displaydb_dlm::DlmEvent;
use displaydb_schema::DbObject;
use displaydb_viz::{Rect, Scene, Shape};
use displaydb_wire::Decode;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DISPLAY_IDS: AtomicU64 = AtomicU64::new(1);

/// Counters and latency for one display.
#[derive(Clone, Debug, Default)]
pub struct DisplayStats {
    /// Notifications processed.
    pub events: Counter,
    /// Display-object re-derivations performed.
    pub refreshes: Counter,
    /// Early-notify marks applied.
    pub marks: Counter,
    /// Refreshes driven by attribute-level deltas (cache patched in
    /// place, no server read).
    pub delta_refreshes: Counter,
    /// Display objects dropped because their sources were deleted.
    pub removed_by_deletion: Counter,
    /// Display objects marked stale on connection degradation.
    pub stale_marks: Counter,
    /// Time from picking an `Updated` event off the queue to the display
    /// object being re-derived and redrawn.
    pub refresh_latency: LatencyRecorder,
}

type DrawFn = Arc<dyn Fn(&DisplayObject) -> Option<Shape> + Send + Sync>;

/// One window over the database.
pub struct Display {
    id: DisplayId,
    name: String,
    client: Arc<DbClient>,
    cache: Arc<DisplayCache>,
    scene: Mutex<Scene>,
    events: crossbeam::channel::Receiver<DlcEvent>,
    /// Display classes by name (needed to re-derive on refresh).
    classes: Mutex<HashMap<String, Arc<DisplayClassDef>>>,
    /// This display's objects.
    mine: Mutex<HashSet<DoId>>,
    /// Per-OID reference counts within this display (several DOs may
    /// share a source object).
    refs: Mutex<HashMap<Oid, usize>>,
    draw: Mutex<Option<DrawFn>>,
    stats: DisplayStats,
    closed: std::sync::atomic::AtomicBool,
}

impl Display {
    /// Open a display on `client`, sharing the client-wide display
    /// `cache`.
    pub fn open(
        client: Arc<DbClient>,
        cache: Arc<DisplayCache>,
        name: impl Into<String>,
    ) -> Arc<Self> {
        let id = DisplayId::new(DISPLAY_IDS.fetch_add(1, Ordering::Relaxed));
        let events = client.dlc().register_display(id);
        Arc::new(Self {
            id,
            name: name.into(),
            client,
            cache,
            scene: Mutex::new(Scene::new()),
            events,
            classes: Mutex::new(HashMap::new()),
            mine: Mutex::new(HashSet::new()),
            refs: Mutex::new(HashMap::new()),
            draw: Mutex::new(None),
            stats: DisplayStats::default(),
            closed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The display id (DLC address).
    pub fn id(&self) -> DisplayId {
        self.id
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Statistics.
    pub fn stats(&self) -> &DisplayStats {
        &self.stats
    }

    /// The shared display cache.
    pub fn cache(&self) -> &Arc<DisplayCache> {
        &self.cache
    }

    /// Set the draw function mapping display objects to shapes.
    pub fn set_draw(&self, f: impl Fn(&DisplayObject) -> Option<Shape> + Send + Sync + 'static) {
        *self.draw.lock() = Some(Arc::new(f));
    }

    /// Number of display objects owned by this display.
    pub fn object_count(&self) -> usize {
        self.mine.lock().len()
    }

    /// Build a display object of `class` over the database objects
    /// `assoc` (in order), acquire display locks, and draw it.
    pub fn add_object(&self, class: &Arc<DisplayClassDef>, assoc: Vec<Oid>) -> DbResult<DoId> {
        if assoc.is_empty() {
            return Err(DbError::InvalidArgument(
                "display object needs at least one source".into(),
            ));
        }
        let sources = self.read_sources(&assoc)?;
        let attrs = class.derive(self.client.catalog(), &sources)?;
        let id = self.cache.allocate_id();
        let mut obj = DisplayObject::new(id, class.name(), assoc.clone());
        obj.attrs = attrs;
        self.cache.insert(obj);
        self.classes
            .lock()
            .entry(class.name().to_string())
            .or_insert_with(|| Arc::clone(class));
        self.mine.lock().insert(id);
        {
            let mut refs = self.refs.lock();
            for &oid in &assoc {
                *refs.entry(oid).or_insert(0) += 1;
            }
        }
        // Display locks via the DLC (deduplicated client-wide). When the
        // display class fully declares which source attributes it reads
        // and all sources share a class layout, register a projected
        // lock so the server can suppress irrelevant updates and ship
        // attribute-level deltas; otherwise fall back to full interest.
        match self.projected_indices(class, &sources) {
            Some(attrs) => self
                .client
                .dlc()
                .acquire_projected(self.id, &assoc, &attrs)?,
            None => self.client.dlc().acquire(self.id, &assoc)?,
        }
        self.redraw_object(id);
        Ok(id)
    }

    /// Resolve the class's declared source attributes to layout indices,
    /// or `None` when projection is not applicable (undeclared compute
    /// reads, heterogeneous source classes, or unresolvable names).
    fn projected_indices(&self, class: &DisplayClassDef, sources: &[DbObject]) -> Option<Vec<u16>> {
        let names = class.source_attrs()?;
        let class_id = sources.first()?.class;
        if sources.iter().any(|s| s.class != class_id) {
            return None;
        }
        let catalog = self.client.catalog();
        names
            .iter()
            .map(|name| catalog.attr_index(class_id, name).ok().map(|i| i as u16))
            .collect()
    }

    fn read_sources(&self, assoc: &[Oid]) -> DbResult<Vec<DbObject>> {
        let maybe = self.client.read_many(assoc)?;
        maybe
            .into_iter()
            .zip(assoc)
            .map(|(o, &oid)| o.ok_or(DbError::ObjectNotFound(oid)))
            .collect()
    }

    /// Assign screen geometry to a display object (layout output).
    pub fn set_geometry(&self, id: DoId, rect: Rect) {
        self.cache.with_mut(id, |d| {
            d.geometry = Some(rect);
            d.dirty = true;
        });
        self.redraw_object(id);
    }

    /// Read a display object (clone).
    pub fn object(&self, id: DoId) -> Option<DisplayObject> {
        self.cache.get(id)
    }

    /// Remove one display object: unpin it and release display locks no
    /// other object of this display needs.
    pub fn remove_object(&self, id: DoId) -> DbResult<()> {
        if !self.mine.lock().remove(&id) {
            return Ok(());
        }
        let Some(obj) = self.cache.remove(id) else {
            return Ok(());
        };
        if let Some(node) = obj.scene_node {
            self.scene.lock().remove(node);
        }
        let mut freed = Vec::new();
        {
            let mut refs = self.refs.lock();
            for oid in &obj.assoc {
                if let Some(count) = refs.get_mut(oid) {
                    *count -= 1;
                    if *count == 0 {
                        refs.remove(oid);
                        freed.push(*oid);
                    }
                }
            }
        }
        if !freed.is_empty() {
            self.client.dlc().release(self.id, &freed)?;
        }
        Ok(())
    }

    /// Process all queued notifications without blocking. Returns the
    /// number of events handled.
    pub fn process_pending(&self) -> DbResult<usize> {
        let mut n = 0;
        while let Ok(event) = self.events.try_recv() {
            self.handle_event(event)?;
            n += 1;
        }
        Ok(n)
    }

    /// Block up to `timeout` for at least one notification, then drain
    /// the queue. Returns the number of events handled (0 on timeout).
    pub fn wait_and_process(&self, timeout: Duration) -> DbResult<usize> {
        match self.events.recv_timeout(timeout) {
            Ok(event) => {
                self.handle_event(event)?;
                Ok(1 + self.process_pending()?)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(0),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(DbError::Disconnected),
        }
    }

    fn handle_event(&self, event: DlcEvent) -> DbResult<()> {
        self.stats.events.inc();
        match event {
            DlcEvent::Dlm(event) => self.handle_dlm_event(event),
            DlcEvent::Degraded => {
                self.mark_all_stale();
                Ok(())
            }
            DlcEvent::Restored => {
                self.clear_stale_marks();
                Ok(())
            }
            DlcEvent::Lagging => {
                // The server collapsed this client's notification stream
                // into resync sweeps; until the forced re-reads land,
                // anything on screen may be behind. Same visual treatment
                // as a connection outage.
                self.mark_all_stale();
                Ok(())
            }
        }
    }

    fn handle_dlm_event(&self, event: DlmEvent) -> DbResult<()> {
        match event {
            DlmEvent::Updated(info) => {
                let start = Instant::now();
                if info.deleted {
                    // The source object is gone: erase dependent DOs.
                    for id in self.my_dependents(info.oid) {
                        self.remove_object(id)?;
                        self.stats.removed_by_deletion.inc();
                    }
                    return Ok(());
                }
                if let Some(payload) = &info.payload {
                    // Eager shipping: the new state rides the
                    // notification — prime the database cache, no server
                    // read needed.
                    let obj = DbObject::decode_from_bytes(payload)?;
                    self.client.cache().insert(obj);
                } else {
                    // Lazy protocols: make sure the next read refetches
                    // (the server's commit-time callback may still be in
                    // flight on another channel in the agent deployment).
                    self.client.cache().invalidate(&[info.oid]);
                }
                for id in self.my_dependents(info.oid) {
                    self.refresh_object(id)?;
                }
                self.stats.refresh_latency.record(start.elapsed());
            }
            DlmEvent::Delta { oid, .. } => {
                // The DLC already checked the projection version and
                // patched the client's database cache in place (a delta
                // that could not be applied becomes a resync and never
                // reaches a display) — only re-derivation remains.
                let start = Instant::now();
                for id in self.my_dependents(oid) {
                    self.refresh_object(id)?;
                    self.stats.delta_refreshes.inc();
                }
                self.stats.refresh_latency.record(start.elapsed());
            }
            DlmEvent::Marked { oid, txn } => {
                self.stats.marks.inc();
                for id in self.my_dependents(oid) {
                    self.cache.with_mut(id, |d| {
                        d.marked_by = Some(txn);
                        d.dirty = true;
                    });
                    self.redraw_object(id);
                }
            }
            DlmEvent::Resolved { oid, txn, .. } => {
                for id in self.my_dependents(oid) {
                    self.cache.with_mut(id, |d| {
                        if d.marked_by == Some(txn) {
                            d.marked_by = None;
                            d.dirty = true;
                        }
                    });
                    self.redraw_object(id);
                }
            }
            // Connection plumbing; filtered out before dispatch.
            DlmEvent::Ready { .. } => {}
            // Overload plumbing: the DLC answers a resync sweep with
            // forced `Updated` re-reads and turns `Lagging` into the
            // broadcast handled above, so neither reaches a display.
            // Batches are flattened by the DLC before fan-out, and the
            // cursor-protocol control events (acks, replay markers) are
            // consumed by the DLC's cursor bookkeeping.
            DlmEvent::ResyncRequired { .. }
            | DlmEvent::Lagging
            | DlmEvent::Batch(_)
            | DlmEvent::CursorAck { .. }
            | DlmEvent::ReplayNeeded { .. }
            | DlmEvent::ShardCursorAck { .. }
            | DlmEvent::ShardReplayNeeded { .. } => {}
        }
        Ok(())
    }

    /// Degraded connection: keep serving every pinned DO, marked stale.
    fn mark_all_stale(&self) {
        let ids: Vec<DoId> = self.mine.lock().iter().copied().collect();
        let now = Instant::now();
        for id in ids {
            let mut marked = false;
            self.cache.with_mut(id, |d| {
                if d.stale_since.is_none() {
                    d.stale_since = Some(now);
                    d.dirty = true;
                    marked = true;
                }
            });
            if marked {
                self.stats.stale_marks.inc();
                self.client.conn_stats().recovery.stale_marks.inc();
                self.redraw_object(id);
            }
        }
    }

    /// Connection restored: any DO still stale was proved current by the
    /// resume handshake (changed ones were refreshed by resync events
    /// queued ahead of `Restored`).
    fn clear_stale_marks(&self) {
        let ids: Vec<DoId> = self.mine.lock().iter().copied().collect();
        for id in ids {
            let mut cleared = false;
            self.cache.with_mut(id, |d| {
                if d.stale_since.take().is_some() {
                    d.dirty = true;
                    cleared = true;
                }
            });
            if cleared {
                self.redraw_object(id);
            }
        }
    }

    /// Number of this display's objects currently marked stale.
    pub fn stale_count(&self) -> usize {
        let mine = self.mine.lock();
        mine.iter()
            .filter(|&&id| self.cache.get(id).is_some_and(|d| d.is_stale()))
            .count()
    }

    fn my_dependents(&self, oid: Oid) -> Vec<DoId> {
        let mine = self.mine.lock();
        self.cache
            .dependents(oid)
            .into_iter()
            .filter(|id| mine.contains(id))
            .collect()
    }

    /// Re-derive one display object from current database state and
    /// redraw it.
    pub fn refresh_object(&self, id: DoId) -> DbResult<()> {
        let Some(obj) = self.cache.get(id) else {
            return Ok(());
        };
        let class = self
            .classes
            .lock()
            .get(&obj.class)
            .cloned()
            .ok_or_else(|| {
                DbError::InvalidArgument(format!("unknown display class {}", obj.class))
            })?;
        match self.read_sources(&obj.assoc) {
            Ok(sources) => {
                let attrs = class.derive(self.client.catalog(), &sources)?;
                self.cache.with_mut(id, |d| {
                    d.attrs = attrs;
                    d.dirty = true;
                    // A fresh derivation from current database state is
                    // by definition not stale anymore; nor can it still
                    // be "being updated" — if the intention's Resolved
                    // was swept into the resync that caused this refresh,
                    // this is the only place the mark comes off.
                    d.stale_since = None;
                    d.marked_by = None;
                });
                self.stats.refreshes.inc();
                self.redraw_object(id);
                Ok(())
            }
            Err(DbError::ObjectNotFound(_)) => {
                // A source vanished under us: drop the DO.
                self.remove_object(id)?;
                self.stats.removed_by_deletion.inc();
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn redraw_object(&self, id: DoId) {
        let draw = self.draw.lock().clone();
        let Some(draw) = draw else {
            return;
        };
        let Some(obj) = self.cache.get(id) else {
            return;
        };
        let Some(shape) = draw(&obj) else {
            return;
        };
        let mut scene = self.scene.lock();
        match obj.scene_node {
            Some(node) => {
                scene.update(node, shape);
            }
            None => {
                let node = scene.add(shape, 0);
                drop(scene);
                self.cache.with_mut(id, |d| d.scene_node = Some(node));
            }
        }
        self.cache.with_mut(id, |d| d.dirty = false);
    }

    /// Run `f` with the display's scene (rendering, hit tests).
    pub fn with_scene<T>(&self, f: impl FnOnce(&Scene) -> T) -> T {
        f(&self.scene.lock())
    }

    /// Close the display: remove every display object and release all
    /// display locks (destructor semantics, § 4.2.2).
    pub fn close(&self) -> DbResult<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let ids: Vec<DoId> = self.mine.lock().iter().copied().collect();
        for id in ids {
            self.remove_object(id)?;
        }
        self.client.dlc().release_display(self.id)?;
        Ok(())
    }
}

impl Drop for Display {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

impl std::fmt::Debug for Display {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Display")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("objects", &self.object_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{color_coded_link, width_coded_link, DisplayClassBuilder};
    use displaydb_client::ClientConfig;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::{AttrType, Catalog, Value};
    use displaydb_server::{Server, ServerConfig};
    use displaydb_viz::Color;
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;

    fn catalog() -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Link")
                .attr("Name", AttrType::Str)
                .attr("Utilization", AttrType::Float)
                .attr("Vendor", AttrType::Str)
                .attr("CircuitId", AttrType::Str)
                .attr("Notes", AttrType::Str),
        )
        .unwrap();
        Arc::new(c)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-display-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    struct Fixture {
        _server: Server,
        hub: LocalHub,
        cat: Arc<Catalog>,
    }

    fn setup(name: &str, configure: impl FnOnce(&mut ServerConfig)) -> Fixture {
        let cat = catalog();
        let hub = LocalHub::new();
        let mut config = ServerConfig::new(tmp(name));
        configure(&mut config);
        let server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
        Fixture {
            _server: server,
            hub,
            cat,
        }
    }

    fn client(fx: &Fixture, name: &str) -> Arc<DbClient> {
        DbClient::connect(
            Box::new(fx.hub.connect().unwrap()),
            ClientConfig::named(name),
        )
        .unwrap()
    }

    fn make_link(fx: &Fixture, c: &Arc<DbClient>, util: f64) -> Oid {
        let mut txn = c.begin().unwrap();
        let obj = txn
            .create(
                c.new_object("Link")
                    .unwrap()
                    .with(&fx.cat, "Utilization", util)
                    .unwrap()
                    .with(&fx.cat, "Vendor", "acme telecommunications equipment co.")
                    .unwrap()
                    .with(&fx.cat, "CircuitId", "CKT-2026-000417-ATL-DCA-OC48")
                    .unwrap()
                    // Real NMS link records carry plenty of operational
                    // detail the GUI never shows (the paper's § 2.2
                    // premise).
                    .with(
                        &fx.cat,
                        "Notes",
                        "installed 1995-07; maintenance window sundays; \
                         contact noc@example.net; last audited by field team 7; \
                         fiber pair 12/13 through conduit B; SLA tier gold",
                    )
                    .unwrap(),
            )
            .unwrap();
        txn.commit().unwrap();
        obj.oid
    }

    fn set_util(fx: &Fixture, c: &Arc<DbClient>, oid: Oid, util: f64) {
        let mut txn = c.begin().unwrap();
        txn.update(oid, |o| o.set(&fx.cat, "Utilization", util))
            .unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn add_object_derives_and_locks() {
        let fx = setup("add", |_| {});
        let viewer = client(&fx, "viewer");
        let oid = make_link(&fx, &viewer, 0.9);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();
        let obj = display.object(id).unwrap();
        assert_eq!(
            obj.attr("Color"),
            Some(&Value::Int(i64::from(Color::RED.to_u32())))
        );
        assert_eq!(viewer.dlc().locked_objects(), 1);
    }

    #[test]
    fn update_propagates_to_display() {
        let fx = setup("propagate", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.1);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();
        assert_eq!(
            display.object(id).unwrap().attr("Color"),
            Some(&Value::Int(i64::from(Color::WHITE.to_u32())))
        );

        set_util(&fx, &updater, oid, 0.95);
        let handled = display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert!(handled >= 1, "no notification arrived");
        assert_eq!(
            display.object(id).unwrap().attr("Color"),
            Some(&Value::Int(i64::from(Color::RED.to_u32()))),
            "display did not refresh to red"
        );
        assert!(display.stats().refreshes.get() >= 1);
        assert!(!display.stats().refresh_latency.is_empty());
    }

    #[test]
    fn updates_to_unwatched_objects_do_not_arrive() {
        let fx = setup("unwatched", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let watched = make_link(&fx, &updater, 0.1);
        let unwatched = make_link(&fx, &updater, 0.1);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        display
            .add_object(&color_coded_link("Utilization"), vec![watched])
            .unwrap();

        set_util(&fx, &updater, unwatched, 0.99);
        assert_eq!(
            display
                .wait_and_process(Duration::from_millis(300))
                .unwrap(),
            0
        );
    }

    #[test]
    fn unprojected_attribute_write_is_suppressed() {
        let fx = setup("suppress", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.1);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        // ColorCodedLink declares its full read set (Utilization), so
        // add_object registers a projected display lock.
        display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();

        // A write to an attribute outside the projection must produce
        // zero client events — the server suppresses the notification.
        let mut txn = updater.begin().unwrap();
        txn.update(oid, |o| o.set(&fx.cat, "Notes", "rerouted via conduit C"))
            .unwrap();
        txn.commit().unwrap();
        assert_eq!(
            display
                .wait_and_process(Duration::from_millis(300))
                .unwrap(),
            0,
            "suppressed write still reached the display"
        );
        assert_eq!(viewer.dlc().stats().deltas_in.get(), 0);
    }

    #[test]
    fn projected_attribute_write_arrives_as_delta() {
        let fx = setup("delta", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.1);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();

        set_util(&fx, &updater, oid, 0.95);
        let handled = display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert!(handled >= 1, "no notification arrived");
        assert_eq!(
            display.object(id).unwrap().attr("Color"),
            Some(&Value::Int(i64::from(Color::RED.to_u32()))),
            "display did not refresh to red"
        );
        assert!(
            viewer.dlc().stats().deltas_in.get() >= 1,
            "update did not arrive as an attribute-level delta"
        );
        assert_eq!(viewer.dlc().stats().delta_fallbacks.get(), 0);
        assert!(display.stats().delta_refreshes.get() >= 1);
    }

    #[test]
    fn multi_source_path_refreshes_on_any_member() {
        let fx = setup("path", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let l1 = make_link(&fx, &updater, 0.2);
        let l2 = make_link(&fx, &updater, 0.3);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "paths");
        let path_class = DisplayClassBuilder::new("PathLine")
            .compute("MaxUtil", |ctx| {
                Ok(Value::Float(ctx.max_float("Utilization")?))
            })
            .build();
        let id = display.add_object(&path_class, vec![l1, l2]).unwrap();
        assert_eq!(
            display.object(id).unwrap().attr("MaxUtil"),
            Some(&Value::Float(0.3))
        );
        set_util(&fx, &updater, l2, 0.7);
        display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert_eq!(
            display.object(id).unwrap().attr("MaxUtil"),
            Some(&Value::Float(0.7))
        );
    }

    #[test]
    fn early_notify_marks_and_clears() {
        let fx = setup("early", |c| {
            c.dlm.protocol = displaydb_dlm::NotifyProtocol::EarlyNotify;
        });
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.5);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&width_coded_link("Utilization"), vec![oid])
            .unwrap();

        // The updater X-locks: the DO must become marked.
        let mut txn = updater.begin().unwrap();
        txn.lock_exclusive(oid).unwrap();
        display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert!(
            display.object(id).unwrap().marked_by.is_some(),
            "not marked"
        );
        assert!(display.stats().marks.get() >= 1);

        // Abort: the mark clears, no refresh necessary.
        txn.abort().unwrap();
        display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert!(
            display.object(id).unwrap().marked_by.is_none(),
            "mark not cleared"
        );
    }

    #[test]
    fn deletion_removes_display_object() {
        let fx = setup("deletion", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.5);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();

        let mut txn = updater.begin().unwrap();
        txn.delete(oid).unwrap();
        txn.commit().unwrap();
        display.wait_and_process(Duration::from_secs(5)).unwrap();
        assert!(display.object(id).is_none(), "DO should be gone");
        assert_eq!(display.object_count(), 0);
        assert_eq!(display.stats().removed_by_deletion.get(), 1);
    }

    #[test]
    fn close_releases_display_locks() {
        let fx = setup("close", |_| {});
        let viewer = client(&fx, "viewer");
        let oid = make_link(&fx, &viewer, 0.5);
        let cache = Arc::new(DisplayCache::new());
        {
            let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "map");
            display
                .add_object(&color_coded_link("Utilization"), vec![oid])
                .unwrap();
            assert_eq!(viewer.dlc().locked_objects(), 1);
            assert_eq!(cache.len(), 1);
            display.close().unwrap();
        }
        assert_eq!(viewer.dlc().locked_objects(), 0);
        assert_eq!(cache.len(), 0, "display cache must unpin on close");
    }

    #[test]
    fn shared_oid_between_two_displays_one_lock() {
        let fx = setup("shared", |_| {});
        let viewer = client(&fx, "viewer");
        let oid = make_link(&fx, &viewer, 0.5);
        let cache = Arc::new(DisplayCache::new());
        let d1 = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "map");
        let d2 = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "table");
        d1.add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();
        d2.add_object(&width_coded_link("Utilization"), vec![oid])
            .unwrap();
        // One DLM lock despite two displays (DLC dedup, § 4.2.1).
        assert_eq!(viewer.dlc().stats().dlm_lock_messages.get(), 1);
        assert_eq!(viewer.dlc().locked_objects(), 1);
        d1.close().unwrap();
        // Still locked: d2 depends on it.
        assert_eq!(viewer.dlc().locked_objects(), 1);
        d2.close().unwrap();
        assert_eq!(viewer.dlc().locked_objects(), 0);
    }

    #[test]
    fn scene_redraws_on_refresh() {
        let fx = setup("scene", |_| {});
        let viewer = client(&fx, "viewer");
        let updater = client(&fx, "updater");
        let oid = make_link(&fx, &updater, 0.1);
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        display.set_draw(|obj| {
            let color = match obj.attr("Color") {
                Some(Value::Int(rgb)) => Color::new(
                    ((rgb >> 16) & 0xff) as u8,
                    ((rgb >> 8) & 0xff) as u8,
                    (rgb & 0xff) as u8,
                ),
                _ => Color::GRAY,
            };
            Some(Shape::Rect {
                rect: obj.geometry.unwrap_or(Rect::new(0.0, 0.0, 10.0, 10.0)),
                fill: color,
                border: None,
            })
        });
        let id = display
            .add_object(&color_coded_link("Utilization"), vec![oid])
            .unwrap();
        display.set_geometry(id, Rect::new(5.0, 5.0, 20.0, 20.0));
        let v1 = display.with_scene(|s| {
            assert_eq!(s.len(), 1);
            s.version()
        });
        set_util(&fx, &updater, oid, 0.95);
        display.wait_and_process(Duration::from_secs(5)).unwrap();
        display.with_scene(|s| {
            assert!(s.version() > v1, "scene did not change");
            let node = s.draw_order()[0];
            match &node.shape {
                Shape::Rect { fill, .. } => assert_eq!(*fill, Color::RED),
                other => panic!("{other:?}"),
            }
        });
    }

    #[test]
    fn display_cache_smaller_than_database_cache() {
        // The § 4.3 observation in miniature: DOs project 2 of 5 link
        // attributes, so the display cache is several times smaller.
        let fx = setup("sizes", |_| {});
        let viewer = client(&fx, "viewer");
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "map");
        let class = color_coded_link("Utilization");
        for _ in 0..50 {
            let oid = make_link(&fx, &viewer, 0.5);
            display.add_object(&class, vec![oid]).unwrap();
        }
        let db_bytes = viewer.cache().used_bytes();
        let display_bytes = cache.used_bytes();
        assert!(
            db_bytes >= 2 * display_bytes,
            "expected display cache several times smaller: db={db_bytes} display={display_bytes}"
        );
    }
}
