//! The display cache: the new topmost level of the memory hierarchy
//! (§ 3.2, figure 2).
//!
//! Its two defining properties, in deliberate contrast to the client
//! database cache one level below:
//!
//! * **Application-managed pinning** — once a display object is created
//!   it stays resident until its display explicitly removes it. No LRU,
//!   no server callbacks, no interference from database workload or
//!   buffer policies. This is what makes zoom/pan latency predictable
//!   (§ 2.2's complaint about "unexpectedly delayed" interactions).
//! * **Filtered content** — it holds display objects (projections +
//!   derived GUI attributes), not whole database objects, so it is
//!   typically several times smaller (§ 4.3 measured 3–5×).

use crate::object::{DisplayObject, DoId};
use displaydb_common::ids::IdGen;
use displaydb_common::Oid;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Cache occupancy statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DisplayCacheStats {
    /// Resident display objects.
    pub objects: usize,
    /// Total bytes of resident display objects.
    pub bytes: usize,
    /// Lifetime inserts.
    pub inserts: u64,
    /// Lifetime removals.
    pub removals: u64,
}

#[derive(Default)]
struct CacheState {
    objects: HashMap<DoId, DisplayObject>,
    by_oid: HashMap<Oid, HashSet<DoId>>,
    bytes: usize,
    inserts: u64,
    removals: u64,
}

/// The per-client display cache (shared by all of the client's displays,
/// like the paper's per-client DLC).
#[derive(Default)]
pub struct DisplayCache {
    state: Mutex<CacheState>,
    ids: IdGen,
}

impl DisplayCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a display-object id.
    pub fn allocate_id(&self) -> DoId {
        DoId(self.ids.next())
    }

    /// Pin a display object. Its id must come from
    /// [`DisplayCache::allocate_id`].
    pub fn insert(&self, obj: DisplayObject) {
        let mut state = self.state.lock();
        state.bytes += obj.size_bytes();
        state.inserts += 1;
        for &oid in &obj.assoc {
            state.by_oid.entry(oid).or_default().insert(obj.id);
        }
        if let Some(old) = state.objects.insert(obj.id, obj) {
            state.bytes -= old.size_bytes();
            state.inserts -= 1; // replacement, not a new insert
        }
    }

    /// Read a display object.
    pub fn get(&self, id: DoId) -> Option<DisplayObject> {
        self.state.lock().objects.get(&id).cloned()
    }

    /// Mutate a display object in place, keeping byte accounting and the
    /// OID index correct. Returns `None` if absent.
    pub fn with_mut<T>(&self, id: DoId, f: impl FnOnce(&mut DisplayObject) -> T) -> Option<T> {
        let mut state = self.state.lock();
        // Take the object out to sidestep aliasing on the index.
        let mut obj = state.objects.remove(&id)?;
        let old_bytes = obj.size_bytes();
        let old_assoc = obj.assoc.clone();
        let out = f(&mut obj);
        state.bytes = state.bytes - old_bytes + obj.size_bytes();
        if old_assoc != obj.assoc {
            for oid in &old_assoc {
                if let Some(set) = state.by_oid.get_mut(oid) {
                    set.remove(&id);
                    if set.is_empty() {
                        state.by_oid.remove(oid);
                    }
                }
            }
            for &oid in &obj.assoc {
                state.by_oid.entry(oid).or_default().insert(id);
            }
        }
        state.objects.insert(id, obj);
        Some(out)
    }

    /// Unpin and remove a display object.
    pub fn remove(&self, id: DoId) -> Option<DisplayObject> {
        let mut state = self.state.lock();
        let obj = state.objects.remove(&id)?;
        state.bytes -= obj.size_bytes();
        state.removals += 1;
        for oid in &obj.assoc {
            if let Some(set) = state.by_oid.get_mut(oid) {
                set.remove(&id);
                if set.is_empty() {
                    state.by_oid.remove(oid);
                }
            }
        }
        Some(obj)
    }

    /// Display objects derived from `oid` — the refresh fan-out set.
    pub fn dependents(&self, oid: Oid) -> Vec<DoId> {
        self.state
            .lock()
            .by_oid
            .get(&oid)
            .map(|s| {
                let mut v: Vec<DoId> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> DisplayCacheStats {
        let state = self.state.lock();
        DisplayCacheStats {
            objects: state.objects.len(),
            bytes: state.bytes,
            inserts: state.inserts,
            removals: state.removals,
        }
    }

    /// Resident object count.
    pub fn len(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident bytes.
    pub fn used_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

impl std::fmt::Debug for DisplayCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("DisplayCache")
            .field("objects", &s.objects)
            .field("bytes", &s.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::Value;

    fn obj(cache: &DisplayCache, oids: &[u64]) -> DoId {
        let id = cache.allocate_id();
        let mut d = DisplayObject::new(id, "T", oids.iter().map(|&o| Oid::new(o)).collect());
        d.attrs.push(("U".into(), Value::Float(0.0)));
        cache.insert(d);
        id
    }

    #[test]
    fn insert_get_remove_accounting() {
        let cache = DisplayCache::new();
        let id = obj(&cache, &[1, 2]);
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > 0);
        let d = cache.get(id).unwrap();
        assert_eq!(d.assoc.len(), 2);
        let removed = cache.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.get(id).is_none());
        let s = cache.stats();
        assert_eq!((s.inserts, s.removals), (1, 1));
    }

    #[test]
    fn dependents_index() {
        let cache = DisplayCache::new();
        let a = obj(&cache, &[1, 2]);
        let b = obj(&cache, &[2, 3]);
        assert_eq!(cache.dependents(Oid::new(1)), vec![a]);
        assert_eq!(cache.dependents(Oid::new(2)), vec![a, b]);
        assert_eq!(cache.dependents(Oid::new(3)), vec![b]);
        assert!(cache.dependents(Oid::new(9)).is_empty());
        cache.remove(a);
        assert!(cache.dependents(Oid::new(1)).is_empty());
        assert_eq!(cache.dependents(Oid::new(2)), vec![b]);
    }

    #[test]
    fn with_mut_updates_bytes_and_index() {
        let cache = DisplayCache::new();
        let id = obj(&cache, &[1]);
        let before = cache.used_bytes();
        cache.with_mut(id, |d| {
            d.attrs.push(("Long".into(), Value::Str("x".repeat(500))));
            d.assoc = vec![Oid::new(5)];
        });
        assert!(cache.used_bytes() > before + 400);
        assert!(cache.dependents(Oid::new(1)).is_empty());
        assert_eq!(cache.dependents(Oid::new(5)), vec![id]);
        assert!(cache.with_mut(DoId(999), |_| ()).is_none());
    }

    #[test]
    fn objects_are_pinned_no_eviction() {
        // Unlike the LRU database cache, inserting many objects never
        // evicts: the application is in control.
        let cache = DisplayCache::new();
        let ids: Vec<DoId> = (0..10_000).map(|i| obj(&cache, &[i])).collect();
        assert_eq!(cache.len(), 10_000);
        for id in ids {
            assert!(cache.get(id).is_some());
        }
    }

    #[test]
    fn replacement_insert_keeps_accounting() {
        let cache = DisplayCache::new();
        let id = obj(&cache, &[1]);
        let mut replacement = cache.get(id).unwrap();
        replacement.attrs.push(("Extra".into(), Value::Int(1)));
        cache.insert(replacement);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().inserts, 1);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use displaydb_schema::Value;
    use std::sync::Arc;

    /// Concurrent inserts/mutations/removals across threads must leave
    /// accounting exact: byte total equals the sum over residents, and
    /// the OID index contains exactly the resident objects.
    #[test]
    fn concurrent_ops_keep_accounting_exact() {
        let cache = Arc::new(DisplayCache::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..200u64 {
                    let id = cache.allocate_id();
                    let mut d = DisplayObject::new(id, "T", vec![Oid::new(t * 1000 + i % 50)]);
                    d.attrs.push(("U".into(), Value::Float(0.0)));
                    cache.insert(d);
                    mine.push(id);
                    if i % 3 == 0 {
                        cache.with_mut(id, |d| {
                            d.attrs.push(("Extra".into(), Value::Int(i as i64)));
                        });
                    }
                    if i % 5 == 0 {
                        let victim = mine.remove(0);
                        cache.remove(victim);
                    }
                }
                mine
            }));
        }
        let survivors: Vec<DoId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let stats = cache.stats();
        assert_eq!(stats.objects, survivors.len());
        // Byte accounting must equal the sum of resident footprints.
        let sum: usize = survivors
            .iter()
            .map(|&id| cache.get(id).unwrap().size_bytes())
            .sum();
        assert_eq!(stats.bytes, sum);
        // Index agrees: every survivor is its OID's dependent.
        for &id in &survivors {
            let obj = cache.get(id).unwrap();
            assert!(cache.dependents(obj.assoc[0]).contains(&id));
        }
    }
}
