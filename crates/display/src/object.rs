//! Display objects: instances of display classes.

use displaydb_common::{Oid, TxnId};
use displaydb_schema::Value;
use displaydb_viz::{NodeId, Rect};

/// Identifier of a display object within a display cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DoId(pub u64);

impl std::fmt::Display for DoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "do:{}", self.0)
    }
}

/// One display object: the GUI-side materialization of one or more
/// database objects (paper § 3.1).
#[derive(Clone, Debug)]
pub struct DisplayObject {
    /// Identity within the display cache.
    pub id: DoId,
    /// The display class that derived it.
    pub class: String,
    /// The OID list of associated database objects (footnote 1 of the
    /// paper): the set whose updates must refresh this DO.
    pub assoc: Vec<Oid>,
    /// Derived attributes (projections + computed), in class order.
    pub attrs: Vec<(String, Value)>,
    /// Screen geometry assigned by the layout (a GUI-only attribute that
    /// must not live in the database schema, § 2.1).
    pub geometry: Option<Rect>,
    /// Scene node currently drawing this DO.
    pub scene_node: Option<NodeId>,
    /// Needs re-derivation/redraw.
    pub dirty: bool,
    /// Set while an early-notify mark is outstanding: some transaction
    /// holds an exclusive lock on an associated object (§ 3.3 suggests
    /// displays "turn red" such objects to deter conflicting edits).
    pub marked_by: Option<TxnId>,
    /// Set while the connection is degraded: the DO keeps serving its
    /// last-known derivation, but the view may have drifted from the
    /// database. Cleared by the post-reconnect refresh (or wholesale at
    /// `Restored` for objects the resume protocol proved current).
    pub stale_since: Option<std::time::Instant>,
}

impl DisplayObject {
    /// Construct a fresh (dirty) display object.
    pub fn new(id: DoId, class: impl Into<String>, assoc: Vec<Oid>) -> Self {
        Self {
            id,
            class: class.into(),
            assoc,
            attrs: Vec::new(),
            geometry: None,
            scene_node: None,
            dirty: true,
            marked_by: None,
            stale_since: None,
        }
    }

    /// Whether this DO is serving a potentially drifted view (degraded
    /// connection, not yet resynced).
    pub fn is_stale(&self) -> bool {
        self.stale_since.is_some()
    }

    /// Look up a derived attribute.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Whether this DO derives from `oid`.
    pub fn depends_on(&self, oid: Oid) -> bool {
        self.assoc.contains(&oid)
    }

    /// Approximate in-memory footprint in bytes: attributes + OID list +
    /// fixed overhead. This is the display-cache side of the paper's
    /// "3 to 5 times smaller" measurement (§ 4.3).
    pub fn size_bytes(&self) -> usize {
        64 + 8 * self.assoc.len()
            + self
                .attrs
                .iter()
                .map(|(n, v)| n.len() + v.size_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let mut d = DisplayObject::new(DoId(1), "ColorCodedLink", vec![Oid::new(7)]);
        assert!(d.dirty);
        assert!(d.depends_on(Oid::new(7)));
        assert!(!d.depends_on(Oid::new(8)));
        d.attrs.push(("Color".into(), Value::Int(0xFF0000)));
        assert_eq!(d.attr("Color"), Some(&Value::Int(0xFF0000)));
        assert_eq!(d.attr("Missing"), None);
    }

    #[test]
    fn size_scales_with_content() {
        let small = DisplayObject::new(DoId(1), "X", vec![Oid::new(1)]);
        let mut big = small.clone();
        big.assoc = (0..100).map(Oid::new).collect();
        big.attrs = (0..10)
            .map(|i| (format!("attr{i}"), Value::Float(0.0)))
            .collect();
        assert!(big.size_bytes() > small.size_bytes() + 800);
    }

    #[test]
    fn display_format() {
        assert_eq!(DoId(9).to_string(), "do:9");
    }
}
