//! Display schemas, display objects, the display cache, and the
//! notification-driven refresh engine — the paper's primary contribution
//! (§ 3).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`schema`] — *display classes* (§ 3.1): external class definitions
//!   over the database schema, holding only the attributes a GUI needs —
//!   projections of database attributes plus GUI-specific derived ones
//!   (color, width, screen coordinates). Figure 1's `ColorCodedLink` /
//!   `WidthCodedLink` are constructed in the tests and the NMS crate.
//! * [`object`] — *display objects* (DOs): instances of display classes,
//!   each keeping the OID list of the database objects it was derived
//!   from (footnote 1) plus geometry and dirty/marked state.
//! * [`cache`] — the *display cache* (§ 3.2): the new topmost level of
//!   the client-server memory hierarchy. Application-managed: display
//!   objects are **pinned** for the lifetime of their display — no LRU,
//!   no server-driven invalidation, no interference from database
//!   workload.
//! * [`view`] — a [`view::Display`] (one window): builds DOs over
//!   database objects, acquires display locks through the client's DLC,
//!   consumes update notifications, re-derives affected DOs and redraws
//!   them into a scene.
//!
//! A display is the paper's *display transaction*: opening it acquires
//! display locks on every associated object; closing it (or dropping it)
//! releases them — constructor/destructor semantics exactly as § 4.2.2
//! prescribes.

pub mod cache;
pub mod object;
pub mod schema;
pub mod view;

pub use cache::{DisplayCache, DisplayCacheStats};
pub use object::{DisplayObject, DoId};
pub use schema::{DeriveCtx, DisplayClassBuilder, DisplayClassDef};
pub use view::{Display, DisplayStats};
