//! Display classes: external schemas over database classes (§ 3.1).
//!
//! A display class declares how a display object's attributes derive
//! from one or more database objects:
//!
//! * **projections** copy a database attribute verbatim (the `Link`
//!   example keeps only `Utilization` out of a large persistent class);
//! * **computed attributes** run a closure over all associated source
//!   objects — color coding, width coding, multi-object aggregation
//!   ("the path line's utilization may be the maximum or average over
//!   all its links", § 3.1).
//!
//! The database schema is never touched: this is what keeps GUI design
//! orthogonal to database design (§ 2.1).

use displaydb_common::{DbError, DbResult};
use displaydb_schema::{Catalog, DbObject, Value};
use std::sync::Arc;

/// Context handed to derivation closures.
pub struct DeriveCtx<'a> {
    /// The database catalog (attribute lookup).
    pub catalog: &'a Catalog,
    /// The associated database objects, in association order.
    pub sources: &'a [DbObject],
}

impl<'a> DeriveCtx<'a> {
    /// Attribute of the primary (first) source.
    pub fn primary(&self, attr: &str) -> DbResult<&Value> {
        self.sources
            .first()
            .ok_or_else(|| DbError::InvalidArgument("display object has no sources".into()))?
            .get(self.catalog, attr)
    }

    /// The named attribute across all sources, as floats (aggregation
    /// helper).
    pub fn floats(&self, attr: &str) -> DbResult<Vec<f64>> {
        self.sources
            .iter()
            .map(|s| s.get(self.catalog, attr)?.as_float())
            .collect()
    }

    /// Maximum of the attribute across sources.
    pub fn max_float(&self, attr: &str) -> DbResult<f64> {
        Ok(self
            .floats(attr)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Mean of the attribute across sources.
    pub fn avg_float(&self, attr: &str) -> DbResult<f64> {
        let v = self.floats(attr)?;
        if v.is_empty() {
            return Err(DbError::InvalidArgument("no sources to average".into()));
        }
        Ok(v.iter().sum::<f64>() / v.len() as f64)
    }
}

type ComputeFn = Arc<dyn Fn(&DeriveCtx<'_>) -> DbResult<Value> + Send + Sync>;

enum Step {
    /// Copy these attributes from the primary source.
    Project(Vec<String>),
    /// Compute one attribute from all sources. `deps` optionally declares
    /// which source attributes the closure reads; a class whose computes
    /// all declare their reads can be watched with a projected display
    /// lock instead of full-object interest.
    Compute {
        name: String,
        deps: Option<Vec<String>>,
        f: ComputeFn,
    },
}

/// A display class definition.
pub struct DisplayClassDef {
    name: String,
    steps: Vec<Step>,
}

impl DisplayClassDef {
    /// The class name (e.g. `"ColorCodedLink"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of all attributes this class derives, in order.
    pub fn attr_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for step in &self.steps {
            match step {
                Step::Project(attrs) => out.extend(attrs.iter().map(String::as_str)),
                Step::Compute { name, .. } => out.push(name.as_str()),
            }
        }
        out
    }

    /// The source attributes this class reads, if they are fully known:
    /// projected attributes plus every compute step's declared
    /// dependencies. Returns `None` when any compute step left its reads
    /// undeclared — the caller must then fall back to full-object
    /// interest, because the closure may touch anything.
    pub fn source_attrs(&self) -> Option<Vec<&str>> {
        let mut out: Vec<&str> = Vec::new();
        for step in &self.steps {
            match step {
                Step::Project(attrs) => out.extend(attrs.iter().map(String::as_str)),
                Step::Compute { deps: Some(d), .. } => {
                    out.extend(d.iter().map(String::as_str));
                }
                Step::Compute { deps: None, .. } => return None,
            }
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Run the derivation over `sources`, producing the display
    /// attribute list.
    pub fn derive(
        &self,
        catalog: &Catalog,
        sources: &[DbObject],
    ) -> DbResult<Vec<(String, Value)>> {
        let ctx = DeriveCtx { catalog, sources };
        let mut out = Vec::new();
        for step in &self.steps {
            match step {
                Step::Project(attrs) => {
                    for attr in attrs {
                        out.push((attr.clone(), ctx.primary(attr)?.clone()));
                    }
                }
                Step::Compute { name, f, .. } => {
                    out.push((name.clone(), f(&ctx)?));
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for DisplayClassDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisplayClassDef")
            .field("name", &self.name)
            .field("attrs", &self.attr_names())
            .finish()
    }
}

/// Builder for display classes.
pub struct DisplayClassBuilder {
    name: String,
    steps: Vec<Step>,
}

impl DisplayClassBuilder {
    /// Start a display class named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Copy attributes from the primary database object.
    pub fn project(mut self, attrs: &[&str]) -> Self {
        self.steps
            .push(Step::Project(attrs.iter().map(|s| s.to_string()).collect()));
        self
    }

    /// Add a computed attribute with undeclared reads (the class falls
    /// back to full-object display locks).
    pub fn compute(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&DeriveCtx<'_>) -> DbResult<Value> + Send + Sync + 'static,
    ) -> Self {
        self.steps.push(Step::Compute {
            name: name.into(),
            deps: None,
            f: Arc::new(f),
        });
        self
    }

    /// Add a computed attribute that declares which source attributes it
    /// reads, keeping the class eligible for projected display locks.
    pub fn compute_over(
        mut self,
        name: impl Into<String>,
        deps: &[&str],
        f: impl Fn(&DeriveCtx<'_>) -> DbResult<Value> + Send + Sync + 'static,
    ) -> Self {
        self.steps.push(Step::Compute {
            name: name.into(),
            deps: Some(deps.iter().map(|s| s.to_string()).collect()),
            f: Arc::new(f),
        });
        self
    }

    /// Finish.
    pub fn build(self) -> Arc<DisplayClassDef> {
        Arc::new(DisplayClassDef {
            name: self.name,
            steps: self.steps,
        })
    }
}

/// Figure 1's `ColorCodedLink`: projects `Utilization` and color-codes it
/// with the paper's red/pink/white bands. The color is stored as a packed
/// RGB integer.
pub fn color_coded_link(utilization_attr: &str) -> Arc<DisplayClassDef> {
    let attr = utilization_attr.to_string();
    DisplayClassBuilder::new("ColorCodedLink")
        .project(&[utilization_attr])
        .compute_over("Color", &[utilization_attr], move |ctx| {
            let u = ctx.max_float(&attr)?;
            Ok(Value::Int(i64::from(
                displaydb_viz::utilization_color(u).to_u32(),
            )))
        })
        .build()
}

/// Figure 1's `WidthCodedLink`: projects `Utilization` and width-codes it
/// (line width proportional to utilization).
pub fn width_coded_link(utilization_attr: &str) -> Arc<DisplayClassDef> {
    let attr = utilization_attr.to_string();
    DisplayClassBuilder::new("WidthCodedLink")
        .project(&[utilization_attr])
        .compute_over("Width", &[utilization_attr], move |ctx| {
            let u = ctx.max_float(&attr)?;
            Ok(Value::Float(f64::from(displaydb_viz::utilization_width(
                u, 1.0, 9.0,
            ))))
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::Oid;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Link")
                .attr("Name", AttrType::Str)
                .attr("Utilization", AttrType::Float)
                .attr("Vendor", AttrType::Str)
                .attr("Notes", AttrType::Str),
        )
        .unwrap();
        c
    }

    fn link(cat: &Catalog, oid: u64, util: f64) -> DbObject {
        let mut o = DbObject::new_named(cat, "Link").unwrap();
        o.oid = Oid::new(oid);
        o.set(cat, "Utilization", util).unwrap();
        o.set(cat, "Name", format!("link-{oid}")).unwrap();
        o.set(cat, "Vendor", "acme networks inc").unwrap();
        o.set(cat, "Notes", "long irrelevant operational notes")
            .unwrap();
        o
    }

    #[test]
    fn projection_copies_only_named_attrs() {
        let cat = catalog();
        let dc = DisplayClassBuilder::new("Minimal")
            .project(&["Name", "Utilization"])
            .build();
        let attrs = dc.derive(&cat, &[link(&cat, 1, 0.5)]).unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].0, "Name");
        assert_eq!(attrs[1].1, Value::Float(0.5));
        // Vendor/Notes were filtered out — the paper's core size
        // argument.
    }

    #[test]
    fn color_coded_link_matches_paper_bands() {
        let cat = catalog();
        let dc = color_coded_link("Utilization");
        let color_of = |u: f64| -> u32 {
            let attrs = dc.derive(&cat, &[link(&cat, 1, u)]).unwrap();
            match attrs.iter().find(|(n, _)| n == "Color").unwrap().1 {
                Value::Int(v) => v as u32,
                ref other => panic!("{other:?}"),
            }
        };
        assert_eq!(color_of(0.1), displaydb_viz::Color::WHITE.to_u32());
        assert_eq!(color_of(0.5), displaydb_viz::Color::PINK.to_u32());
        assert_eq!(color_of(0.95), displaydb_viz::Color::RED.to_u32());
    }

    #[test]
    fn width_coded_link_proportional() {
        let cat = catalog();
        let dc = width_coded_link("Utilization");
        let width_of = |u: f64| -> f64 {
            let attrs = dc.derive(&cat, &[link(&cat, 1, u)]).unwrap();
            attrs
                .iter()
                .find(|(n, _)| n == "Width")
                .unwrap()
                .1
                .as_float()
                .unwrap()
        };
        assert!(width_of(0.0) < width_of(0.5));
        assert!(width_of(0.5) < width_of(1.0));
        assert!((width_of(1.0) - 9.0).abs() < 1e-5);
    }

    #[test]
    fn multi_source_aggregation_path_example() {
        // § 3.1: a path represented by one line whose utilization is the
        // max/avg over all its links.
        let cat = catalog();
        let dc = DisplayClassBuilder::new("PathLine")
            .compute("MaxUtil", |ctx| {
                Ok(Value::Float(ctx.max_float("Utilization")?))
            })
            .compute("AvgUtil", |ctx| {
                Ok(Value::Float(ctx.avg_float("Utilization")?))
            })
            .build();
        let sources = vec![link(&cat, 1, 0.2), link(&cat, 2, 0.8), link(&cat, 3, 0.5)];
        let attrs = dc.derive(&cat, &sources).unwrap();
        assert_eq!(attrs[0].1, Value::Float(0.8));
        assert_eq!(attrs[1].1, Value::Float(0.5));
    }

    #[test]
    fn derive_with_no_sources_fails_cleanly() {
        let cat = catalog();
        let dc = DisplayClassBuilder::new("X").project(&["Name"]).build();
        assert!(dc.derive(&cat, &[]).is_err());
    }

    #[test]
    fn unknown_attr_fails() {
        let cat = catalog();
        let dc = DisplayClassBuilder::new("X").project(&["Nope"]).build();
        assert!(dc.derive(&cat, &[link(&cat, 1, 0.1)]).is_err());
    }

    #[test]
    fn source_attrs_union_of_projections_and_declared_deps() {
        let dc = DisplayClassBuilder::new("X")
            .project(&["Name", "Utilization"])
            .compute_over("Color", &["Utilization"], |_| Ok(Value::Int(0)))
            .build();
        // Deduplicated union, sorted: eligible for a projected lock.
        assert_eq!(dc.source_attrs(), Some(vec!["Name", "Utilization"]));
    }

    #[test]
    fn undeclared_compute_forfeits_projection() {
        let dc = DisplayClassBuilder::new("X")
            .project(&["Name"])
            .compute("C", |_| Ok(Value::Int(0)))
            .build();
        assert_eq!(dc.source_attrs(), None);
    }

    #[test]
    fn builtin_link_classes_are_projectable() {
        assert_eq!(
            color_coded_link("Utilization").source_attrs(),
            Some(vec!["Utilization"])
        );
        assert_eq!(
            width_coded_link("Utilization").source_attrs(),
            Some(vec!["Utilization"])
        );
    }

    #[test]
    fn attr_names_in_declaration_order() {
        let dc = DisplayClassBuilder::new("X")
            .project(&["A", "B"])
            .compute("C", |_| Ok(Value::Int(0)))
            .build();
        assert_eq!(dc.attr_names(), vec!["A", "B", "C"]);
        assert_eq!(dc.name(), "X");
    }
}
